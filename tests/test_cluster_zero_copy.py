"""Zero-copy invariant guard: no operand array ever rides in a message.

Two layers of enforcement are tested: the static one (pickling any
request/reply shape yields descriptor-sized blobs with zero ndarray
payload) and the dynamic one (the dispatcher's ``operand_bytes_pickled``
counter, charged on every enqueue, stays at zero over a real multi-
process workload).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterDispatcher,
    PlanHandle,
    ShardReply,
    ShardRequest,
    SharedArena,
    WarmRequest,
    WorkerSpec,
    ndarray_payload_bytes,
)
from repro.collection import banded, generate_collection
from repro.formats.csr import CSRMatrix
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import build_matrix_pool, fingerprint
from repro.tuner import SMAT
from repro.types import Precision


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.02, size_scale=0.4, seed=77),
        backend=backend,
    )


def _request_for(arena: SharedArena, matrix) -> ShardRequest:
    handle = PlanHandle(
        fingerprint=fingerprint(matrix),
        ptr=arena.place(matrix.ptr),
        indices=arena.place(matrix.indices),
        data=arena.place(matrix.data),
        shape=(int(matrix.n_rows), int(matrix.n_cols)),
    )
    return ShardRequest(
        msg_id=1,
        plan=handle,
        x=arena.place(np.ones(matrix.n_cols)),
        y=arena.alloc((matrix.n_rows,), matrix.dtype),
    )


class TestMessageShapes:
    def test_request_carries_no_ndarray_payload(self) -> None:
        matrix = banded.banded_matrix(5000, 7, seed=3)  # ~280 KiB operand
        with SharedArena(8 * 1024 * 1024) as arena:
            request = _request_for(arena, matrix)
            assert ndarray_payload_bytes(request) == 0
            # The wire form stays descriptor-sized no matter the matrix.
            wire = pickle.dumps(request)
            assert len(wire) < 4096
            assert ndarray_payload_bytes(pickle.loads(wire)) == 0

    def test_warm_request_scales_with_structures_not_bytes(self) -> None:
        matrix = banded.banded_matrix(5000, 7, seed=3)
        with SharedArena(8 * 1024 * 1024) as arena:
            request = _request_for(arena, matrix)
            warm = WarmRequest(handles=(request.plan,))
            assert ndarray_payload_bytes(warm) == 0
            assert len(pickle.dumps(warm)) < 4096

    def test_walker_detects_smuggled_arrays(self) -> None:
        # The guard must actually see an array that sneaks into a message
        # (e.g. a future regression putting y into the reply meta).
        smuggled = ShardReply(
            msg_id=1,
            shard_id=0,
            generation=1,
            ok=True,
            meta={"y": np.ones(100)},
        )
        assert ndarray_payload_bytes(smuggled) == 800
        nested = {"deep": [({"arr": np.zeros((4, 4))},)]}
        assert ndarray_payload_bytes(nested) == 128


@pytest.mark.timeout(300)
def test_cluster_workload_pickles_zero_operand_bytes(smat) -> None:
    pool = build_matrix_pool(4, seed=19, size_scale=0.3)
    rng = np.random.default_rng(6)
    operands = [rng.standard_normal(m.n_cols) for m in pool]
    with ClusterDispatcher(
        WorkerSpec(tuner=smat), ClusterConfig(workers=2)
    ) as cluster:
        for matrix, x in zip(pool, operands):  # cold builds
            assert np.allclose(
                cluster.spmv(matrix, x).y, matrix.spmv(x), atol=1e-9
            )
        for matrix, x in zip(pool, operands):  # cache hits
            cluster.spmv(matrix, x)
        churned = CSRMatrix(  # tier-2 refresh traffic
            pool[0].ptr, pool[0].indices, pool[0].data * 2.0, pool[0].shape
        )
        cluster.spmv(churned, operands[0])
        counters = cluster.metrics.snapshot()["counters"]
    assert int(counters["operand_bytes_pickled"]) == 0
    assert int(counters["requests_served"]) == 2 * len(pool) + 1
    assert int(counters["plans_published"]) == len(pool) + 1
