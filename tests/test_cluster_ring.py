"""Consistent-hash ring tests: determinism, spread, minimal remap."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing

KEYS = [f"structure-{i}" for i in range(600)]


class TestRouting:
    def test_deterministic_across_instances(self) -> None:
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])  # construction order must not matter
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_every_shard_gets_traffic(self) -> None:
        ring = HashRing([0, 1, 2, 3])
        spread = ring.spread(KEYS)
        assert set(spread) == {0, 1, 2, 3}
        # 64 virtual points per shard keeps the imbalance bounded; the
        # exact split is hash-determined, so assert a loose floor.
        assert min(spread.values()) >= len(KEYS) // 16

    def test_single_shard_takes_everything(self) -> None:
        ring = HashRing([7])
        assert ring.spread(KEYS) == {7: len(KEYS)}

    def test_remove_only_remaps_the_lost_shard(self) -> None:
        ring = HashRing([0, 1, 2, 3])
        before = {k: ring.route(k) for k in KEYS}
        ring.remove_shard(2)
        after = {k: ring.route(k) for k in KEYS}
        for key in KEYS:
            if before[key] != 2:
                assert after[key] == before[key]
            else:
                assert after[key] != 2

    def test_add_shard_back_restores_routing(self) -> None:
        ring = HashRing([0, 1, 2])
        before = {k: ring.route(k) for k in KEYS}
        ring.remove_shard(1)
        ring.add_shard(1)
        assert {k: ring.route(k) for k in KEYS} == before


class TestValidation:
    def test_empty_ring_rejected(self) -> None:
        with pytest.raises(ValueError):
            HashRing([])

    def test_duplicate_shards_rejected(self) -> None:
        with pytest.raises(ValueError):
            HashRing([1, 1])

    def test_add_existing_rejected(self) -> None:
        ring = HashRing([0])
        with pytest.raises(ValueError):
            ring.add_shard(0)

    def test_remove_unknown_rejected(self) -> None:
        ring = HashRing([0])
        with pytest.raises(ValueError):
            ring.remove_shard(5)

    def test_bad_replicas_rejected(self) -> None:
        with pytest.raises(ValueError):
            HashRing([0], replicas=0)
