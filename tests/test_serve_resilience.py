"""Resilience and concurrency-stress tests for the serving engine.

Covers the worker-killing future races (regression tests), single-flight
lock refcounting, end-to-end deadlines, bounded retry, and the
plan-build circuit breaker — all driven through deterministic fault
injection and event-based synchronization (no sleeps as
synchronization).
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError, Future

import numpy as np
import pytest

from repro.collection import generate_collection
from repro.errors import (
    BackpressureError,
    DeadlineExceededError,
    TransientError,
)
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    DegradedPlan,
    FaultPlan,
    FaultRule,
    InjectedFatalFault,
    InjectedFault,
    RetryPolicy,
    ServeConfig,
    ServingEngine,
    fingerprint,
)
from repro.serve.engine import (
    _Request,
    _try_mark_running,
    _try_set_exception,
    _try_set_result,
)
from repro.serve.resilience import BuildTicket
from repro.tuner import SMAT
from repro.types import FormatName, Precision

from tests.conftest import random_csr


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


class CountingTuner:
    """Delegating tuner that counts (and tracks concurrency of) decide()."""

    def __init__(self, inner):
        self.inner = inner
        self.lock = threading.Lock()
        self.calls = 0
        self.active = 0
        self.max_active = 0

    def decide(self, matrix):
        with self.lock:
            self.calls += 1
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        try:
            return self.inner.decide(matrix)
        finally:
            with self.lock:
                self.active -= 1


class GatedTuner:
    """Delegating tuner that blocks decide() until ``gate`` is set and
    announces entry via ``entered`` — event-based worker stalling."""

    def __init__(self, inner):
        self.inner = inner
        self.gate = threading.Event()
        self.entered = threading.Event()

    def decide(self, matrix):
        self.entered.set()
        assert self.gate.wait(timeout=30), "test gate never opened"
        return self.inner.decide(matrix)


class LyingFuture(Future):
    """A future frozen in the exact losing interleaving of the old race:
    ``cancelled()`` still answers False (the pre-set check has passed)
    while the future is in fact already cancelled, so any unguarded
    ``set_result``/``set_exception`` raises InvalidStateError."""

    def cancelled(self):
        return False


# ---------------------------------------------------------------------------
# Satellite bugfix: safe future resolution
# ---------------------------------------------------------------------------
class TestSafeFutureResolution:
    def test_helpers_absorb_cancelled_future(self) -> None:
        future: Future = LyingFuture()
        assert future.cancel()
        # Pre-fix code paths called these raw and died on InvalidStateError.
        assert not _try_set_result(future, object())
        assert not _try_set_exception(future, RuntimeError("x"))
        assert not _try_mark_running(future)

    def test_batch_error_path_does_not_kill_worker(self, smat, rng) -> None:
        """Regression for the worker-killing race: a future cancelled
        between the old ``cancelled()`` check and ``set_exception`` raised
        InvalidStateError inside ``_process_batch`` and took the worker
        thread (and its serving capacity) with it."""
        matrix = random_csr(rng, n_rows=40, n_cols=40)
        key = fingerprint(matrix)
        with ServingEngine(smat, ServeConfig(workers=1)) as engine:
            original = engine._resolve_plan

            def failing(k, m, deadline=None):
                if k == key:
                    raise RuntimeError("forced plan-resolution failure")
                return original(k, m, deadline)

            engine._resolve_plan = failing
            racy: Future = LyingFuture()
            racy.cancel()
            engine._queue.put(_Request(key, matrix, np.ones(40), racy), None)

            # The worker survives and keeps serving other traffic.
            other = random_csr(rng, n_rows=41, n_cols=41)
            result = engine.spmv(other, np.ones(41))
            assert result.y is not None
            assert all(t.is_alive() for t in engine._workers)
            assert engine.metrics.counter("worker_errors").value == 0

    def test_success_path_survives_racily_cancelled_future(
        self, smat, rng
    ) -> None:
        """Same race on the result side: the batch's plan resolves fine
        but one rider future is already cancelled."""
        matrix = random_csr(rng, n_rows=42, n_cols=42)
        key = fingerprint(matrix)
        with ServingEngine(smat, ServeConfig(workers=1)) as engine:
            racy: Future = LyingFuture()
            racy.cancel()
            engine._queue.put(_Request(key, matrix, np.ones(42), racy), None)
            result = engine.spmv(matrix, np.ones(42))
            assert result.y is not None
            assert all(t.is_alive() for t in engine._workers)

    def test_stop_without_drain_tolerates_cancelled_backlog(
        self, smat, rng
    ) -> None:
        """Regression: ``stop(drain=False)`` called ``set_exception`` on
        drained futures with no guard at all — a cancelled backlog future
        raised InvalidStateError out of ``stop()`` itself."""
        tuner = GatedTuner(smat)
        m0 = random_csr(rng, n_rows=30, n_cols=30)
        m1 = random_csr(rng, n_rows=31, n_cols=31)
        engine = ServingEngine(
            tuner, ServeConfig(workers=1, queue_capacity=8, max_batch=1)
        ).start()
        f0 = engine.submit(m0, np.ones(30))
        assert tuner.entered.wait(timeout=30)  # worker is busy with m0
        f1 = engine.submit(m1, np.ones(31))
        assert f1.cancel()  # cancelled while still queued

        stop_errors = []

        def run_stop():
            try:
                engine.stop(drain=False)
            except BaseException as exc:  # pre-fix: InvalidStateError here
                stop_errors.append(exc)

        stopper = threading.Thread(target=run_stop, daemon=True)
        stopper.start()
        tuner.gate.set()  # let the in-flight request finish so stop can join
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        assert stop_errors == []
        assert f1.cancelled()
        assert f0.result(timeout=30).y is not None


# ---------------------------------------------------------------------------
# Satellite bugfix: refcounted single-flight build locks
# ---------------------------------------------------------------------------
class TestSingleFlightRefcount:
    def test_lock_entry_freed_only_by_last_holder(self, smat, rng) -> None:
        engine = ServingEngine(smat)
        key = fingerprint(random_csr(rng))
        first = engine._acquire_build_lock(key)
        second = engine._acquire_build_lock(key)
        assert first is second  # one lock object per fingerprint
        engine._release_build_lock(key)
        # Pre-fix the entry was popped here; a late arriver then minted a
        # fresh lock and built concurrently with the remaining holder.
        assert engine._acquire_build_lock(key) is first
        engine._release_build_lock(key)
        engine._release_build_lock(key)
        assert key not in engine._build_locks
        # A fresh cycle mints a fresh entry without error.
        engine._acquire_build_lock(key)
        engine._release_build_lock(key)

    def test_uncacheable_plans_never_build_concurrently(
        self, smat, rng
    ) -> None:
        """Stress the single-flight path with a cache that admits nothing
        (every plan 'uncacheable'): builds for one fingerprint must
        serialize — max decide() concurrency 1 — under a client storm."""
        tuner = CountingTuner(smat)
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        config = ServeConfig(
            workers=4, max_batch=1, cache_bytes=1, queue_capacity=64
        )
        with ServingEngine(tuner, config) as engine:
            results = engine.spmv_many(
                [(matrix, np.full(50, float(i))) for i in range(16)]
            )
        assert len(results) == 16
        assert tuner.max_active == 1
        assert engine.metrics.counter("plans_uncacheable").value > 0

    def test_cacheable_storm_builds_exactly_once(self, smat, rng) -> None:
        tuner = CountingTuner(smat)
        matrix = random_csr(rng, n_rows=48, n_cols=48)
        config = ServeConfig(workers=4, max_batch=1, queue_capacity=64)
        with ServingEngine(tuner, config) as engine:
            clients = []
            for i in range(4):

                def storm(base=i):
                    for j in range(8):
                        engine.spmv(matrix, np.full(48, float(base * 8 + j)))

                clients.append(threading.Thread(target=storm, daemon=True))
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join(timeout=60)
            assert not any(t.is_alive() for t in clients)
        assert engine.metrics.counter("plans_built").value == 1
        assert tuner.max_active == 1


# ---------------------------------------------------------------------------
# Satellite bugfix: spmv_many must not leak futures on mid-sequence failure
# ---------------------------------------------------------------------------
class TestSpmvManyLeak:
    def test_backpressure_cancels_or_awaits_partial_set(
        self, smat, rng
    ) -> None:
        tuner = GatedTuner(smat)
        matrices = [random_csr(rng, n_rows=30 + i) for i in range(4)]
        config = ServeConfig(workers=1, queue_capacity=1, max_batch=1)
        engine = ServingEngine(tuner, config).start()
        try:
            created = []
            inner_submit = engine.submit

            def recording_submit(*args, **kwargs):
                future = inner_submit(*args, **kwargs)
                created.append(future)
                return future

            engine.submit = recording_submit  # instance shadow
            first = engine.submit(matrices[0], np.ones(matrices[0].n_cols))
            assert tuner.entered.wait(timeout=30)  # worker busy, queue free
            created.clear()
            with pytest.raises(BackpressureError):
                # Second fills the queue; third times out -> the already-
                # submitted second must not be leaked behind the raise.
                engine.spmv_many(
                    [(m, np.ones(m.n_cols)) for m in matrices[1:]],
                    timeout=0.05,
                )
            assert created, "spmv_many never submitted anything"
            for future in created:
                assert future.cancelled() or future.done()
            tuner.gate.set()
            assert first.result(timeout=30).y is not None
        finally:
            tuner.gate.set()
            engine.stop()


# ---------------------------------------------------------------------------
# Tentpole: end-to-end deadlines
# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_object(self) -> None:
        with pytest.raises(ValueError, match="deadline"):
            Deadline.after(0.0)
        assert not Deadline.after(60.0).expired()
        assert Deadline(expires_at=0.0).expired()

    def test_expired_request_fails_fast_at_dequeue(self, smat, rng) -> None:
        """A request whose deadline expired while queued is failed at
        dequeue with DeadlineExceededError — its plan is never built."""
        tuner = CountingTuner(GatedTuner(smat))
        gated = tuner.inner
        m0 = random_csr(rng, n_rows=30, n_cols=30)
        m1 = random_csr(rng, n_rows=31, n_cols=31)
        config = ServeConfig(workers=1, max_batch=1, queue_capacity=8)
        with ServingEngine(tuner, config) as engine:
            f0 = engine.submit(m0, np.ones(30))
            assert gated.entered.wait(timeout=30)  # worker busy with m0
            # Queued behind m0 with a deadline that is long gone by the
            # time the worker dequeues it.
            f1 = engine.submit(m1, np.ones(31), deadline=1e-6)
            gated.gate.set()
            with pytest.raises(DeadlineExceededError):
                f1.result(timeout=30)
            assert f0.result(timeout=30).y is not None
            assert engine.metrics.counter("deadline_exceeded").value == 1
            # Only m0's plan was ever built: the expired request burned
            # no tuning/conversion worker time.
            assert tuner.calls == 1

    def test_default_deadline_from_config(self, smat, rng) -> None:
        tuner = GatedTuner(smat)
        m0 = random_csr(rng, n_rows=30, n_cols=30)
        m1 = random_csr(rng, n_rows=31, n_cols=31)
        config = ServeConfig(
            workers=1, max_batch=1, queue_capacity=8, default_deadline=1e-6
        )
        with ServingEngine(tuner, config) as engine:
            f0 = engine.submit(m0, np.ones(30), deadline=60.0)  # override
            assert tuner.entered.wait(timeout=30)
            f1 = engine.submit(m1, np.ones(31))  # inherits 1e-6
            tuner.gate.set()
            with pytest.raises(DeadlineExceededError):
                f1.result(timeout=30)
            assert f0.result(timeout=30).y is not None

    def test_config_validates_deadline(self) -> None:
        with pytest.raises(ValueError, match="default_deadline"):
            ServeConfig(default_deadline=0.0)


# ---------------------------------------------------------------------------
# Tentpole: bounded retry with exponential backoff
# ---------------------------------------------------------------------------
class TestRetries:
    def test_retry_policy_backoff_curve(self) -> None:
        policy = RetryPolicy(max_retries=5, backoff_base=0.01, backoff_cap=0.05)
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(2) == pytest.approx(0.04)
        assert policy.backoff(3) == pytest.approx(0.05)  # capped
        assert policy.is_retryable(TransientError("x"))
        assert policy.is_retryable(InjectedFault("x"))
        assert not policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(InjectedFatalFault("x"))
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_cap"):
            RetryPolicy(backoff_base=0.1, backoff_cap=0.01)

    def test_transient_execute_failures_retry_to_success(
        self, smat, rng
    ) -> None:
        sleeps = []
        faults = FaultPlan(
            [FaultRule(site="execute", kind="transient", start=0, stop=2)],
            sleep=sleeps.append,  # virtual time: record, don't wait
        )
        matrix = random_csr(rng, n_rows=44, n_cols=44)
        x = rng.standard_normal(44)
        config = ServeConfig(workers=1, max_retries=2, backoff_base=0.01)
        with ServingEngine(smat, config, faults=faults) as engine:
            result = engine.spmv(matrix, x)
            direct, _ = smat.spmv(matrix, x)
        assert np.array_equal(result.y, direct)
        assert result.retries == 2
        assert engine.metrics.counter("retries").value == 2
        assert engine.metrics.counter("requests_failed").value == 0
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_retries_exhausted_fail_the_request(self, smat, rng) -> None:
        faults = FaultPlan(
            [FaultRule(site="execute", kind="transient")],  # forever
            sleep=lambda _: None,
        )
        matrix = random_csr(rng, n_rows=40, n_cols=40)
        config = ServeConfig(workers=1, max_retries=1)
        with ServingEngine(smat, config, faults=faults) as engine:
            with pytest.raises(InjectedFault):
                engine.spmv(matrix, np.ones(40))
            assert engine.metrics.counter("retries").value == 1
            assert engine.metrics.counter("requests_failed").value == 1
            # The engine keeps serving once the fault plan is exhausted...
            # (it isn't here — rule is unbounded — so serve another way:)
            assert all(t.is_alive() for t in engine._workers)

    def test_fatal_faults_are_not_retried(self, smat, rng) -> None:
        faults = FaultPlan(
            [FaultRule(site="execute", kind="fatal", start=0, stop=1)],
            sleep=lambda _: None,
        )
        matrix = random_csr(rng, n_rows=40, n_cols=40)
        config = ServeConfig(workers=1, max_retries=3)
        with ServingEngine(smat, config, faults=faults) as engine:
            with pytest.raises(InjectedFatalFault):
                engine.spmv(matrix, np.ones(40))
            assert engine.metrics.counter("retries").value == 0
            # Fault window closed: the next request succeeds normally.
            assert engine.spmv(matrix, np.ones(40)).y is not None

    def test_config_validates_retry_fields(self) -> None:
        with pytest.raises(ValueError, match="max_retries"):
            ServeConfig(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_base"):
            ServeConfig(backoff_base=-0.1)
        with pytest.raises(ValueError, match="backoff_cap"):
            ServeConfig(backoff_base=0.1, backoff_cap=0.05)


# ---------------------------------------------------------------------------
# Tentpole: circuit breaker + graceful degradation
# ---------------------------------------------------------------------------
class TestCircuitBreakerUnit:
    def test_open_half_open_closed_cycle(self) -> None:
        breaker = CircuitBreaker(threshold=2, probe_interval=3)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.acquire() is BuildTicket.BUILD
        assert not breaker.record_failure()
        assert breaker.record_failure()  # second failure opens
        assert breaker.state is BreakerState.OPEN
        # Two degraded requests, then the third becomes the probe.
        assert breaker.acquire() is BuildTicket.DEGRADE
        assert breaker.acquire() is BuildTicket.DEGRADE
        assert breaker.acquire() is BuildTicket.PROBE
        assert breaker.state is BreakerState.HALF_OPEN
        # Concurrent arrivals during the probe keep degrading.
        assert breaker.acquire() is BuildTicket.DEGRADE
        # Failed probe re-opens (not a fresh "opened" transition).
        assert not breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # Next probe succeeds and closes.
        assert breaker.acquire() is BuildTicket.DEGRADE
        assert breaker.acquire() is BuildTicket.DEGRADE
        assert breaker.acquire() is BuildTicket.PROBE
        assert breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_validation(self) -> None:
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="probe_interval"):
            CircuitBreaker(probe_interval=0)

    def test_degraded_plan_is_reference_csr(self, rng) -> None:
        matrix = random_csr(rng, n_rows=33, n_cols=29)
        x = rng.standard_normal(29)
        plan = DegradedPlan(matrix)
        assert np.array_equal(plan.execute(x), matrix.spmv(x, reference=True))
        with pytest.raises(TypeError, match="CSR"):
            DegradedPlan(object())


class TestDegradationEndToEnd:
    """The acceptance scenario: with plan builds forced to fail, requests
    still complete through the degraded CSR reference plan, every
    transition is metered, and tuned serving resumes after faults clear."""

    def test_build_failures_degrade_then_recover(self, smat, rng) -> None:
        tuner = CountingTuner(smat)
        # The decide seam faults on its first 3 calls, then heals.
        faults = FaultPlan(
            [FaultRule(site="decide", kind="transient", start=0, stop=3)],
            sleep=lambda _: None,
        )
        matrix = random_csr(rng, n_rows=52, n_cols=52)
        x = rng.standard_normal(52)
        config = ServeConfig(
            workers=1,
            max_batch=1,
            breaker_threshold=2,
            breaker_probe_interval=2,
        )
        with ServingEngine(tuner, config, faults=faults) as engine:
            reference = matrix.spmv(x, reference=True)

            # Requests 1-2: build attempts fail (decide calls 0, 1) ->
            # served degraded, breaker opens on the second consecutive
            # failure.
            for _ in range(2):
                result = engine.spmv(matrix, x)
                assert result.degraded
                assert result.format_name is FormatName.CSR
                assert result.kernel_name == DegradedPlan.KERNEL_NAME
                assert np.array_equal(result.y, reference)
            assert engine.metrics.counter("breaker_opened").value == 1
            assert engine.breaker_states()[fingerprint(matrix)] is (
                BreakerState.OPEN
            )

            # Request 3: breaker open -> degraded WITHOUT a build attempt
            # (the decide seam sees no new call: re-tuning is suppressed).
            assert engine.spmv(matrix, x).degraded
            assert faults.counts()["decide"]["calls"] == 2

            # Request 4: probe turn (interval=2); decide call 2 is still
            # inside the fault window -> the probe fails, breaker
            # re-opens, the request is still served degraded.
            assert engine.spmv(matrix, x).degraded
            assert engine.metrics.counter("breaker_probes").value == 1
            assert engine.breaker_states()[fingerprint(matrix)] is (
                BreakerState.OPEN
            )

            # Request 5: degraded (counts toward the next probe).
            # Request 6: probe again; decide call 3 is past the fault
            # window, the build succeeds, the breaker closes, and tuned
            # serving resumes.
            assert engine.spmv(matrix, x).degraded
            recovered = engine.spmv(matrix, x)
            assert not recovered.degraded
            assert np.allclose(recovered.y, reference, atol=1e-9)
            assert engine.metrics.counter("breaker_probes").value == 2
            assert engine.metrics.counter("breaker_recovered").value == 1
            assert engine.breaker_states()[fingerprint(matrix)] is (
                BreakerState.CLOSED
            )
            assert tuner.calls == 1  # only the successful build reached it

            # And the plan is cached: the next request is a pure hit.
            assert engine.spmv(matrix, x).cache_hit

            counters = engine.metrics.snapshot()["counters"]
            assert counters["degraded_requests"] == 5
            assert counters["plan_build_failures"] == 3
            assert counters["requests_failed"] == 0

            # All of it observable on the operator scoreboard.
            scoreboard = engine.scoreboard()
            for name in (
                "degraded_requests",
                "retries",
                "deadline_exceeded",
                "breakers",
                "fault plan",
            ):
                assert name in scoreboard

    def test_degradation_under_concurrent_load(self, smat, rng) -> None:
        """Builds permanently failing: every request of a 4-client storm
        still completes, bitwise equal to the reference CSR product."""
        faults = FaultPlan(
            [FaultRule(site="decide", kind="transient")],
            sleep=lambda _: None,
        )
        pool = [random_csr(rng, n_rows=36 + i, n_cols=36 + i) for i in range(6)]
        operands = [rng.standard_normal(m.n_cols) for m in pool]
        expected = [
            m.spmv(x, reference=True) for m, x in zip(pool, operands)
        ]
        config = ServeConfig(workers=4, breaker_threshold=2)
        failures = []

        with ServingEngine(smat, config, faults=faults) as engine:

            def client(offset: int) -> None:
                for i in range(12):
                    index = (offset + i) % len(pool)
                    try:
                        result = engine.spmv(pool[index], operands[index])
                    except Exception as exc:
                        failures.append(exc)
                        continue
                    if not np.array_equal(result.y, expected[index]):
                        failures.append(
                            AssertionError(f"mismatch on matrix {index}")
                        )

            threads = [
                threading.Thread(target=client, args=(k,), daemon=True)
                for k in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(t.is_alive() for t in threads)
            counters = engine.metrics.snapshot()["counters"]

        assert failures == []
        assert counters["requests_served"] == 48
        assert counters["degraded_requests"] == 48
        assert counters["requests_failed"] == 0


# ---------------------------------------------------------------------------
# Fault plan determinism and parsing
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_windows_are_deterministic(self) -> None:
        def injected_indices(seed: int):
            plan = FaultPlan(
                [FaultRule(site="decide", rate=0.5)],
                seed=seed,
                sleep=lambda _: None,
            )
            hits = []
            for i in range(40):
                try:
                    plan.on_call("decide")
                except InjectedFault:
                    hits.append(i)
            return hits

        assert injected_indices(7) == injected_indices(7)
        assert injected_indices(7) != injected_indices(8)

    def test_latency_rule_sleeps_without_raising(self) -> None:
        sleeps = []
        plan = FaultPlan(
            [FaultRule(site="execute", kind="latency", latency=0.25)],
            sleep=sleeps.append,
        )
        plan.on_call("execute")
        assert sleeps == [0.25]
        counts = plan.counts()
        assert counts["execute"] == {"calls": 1, "injected": 1}

    def test_rule_validation(self) -> None:
        with pytest.raises(ValueError, match="site"):
            FaultRule(site="nope")
        with pytest.raises(ValueError, match="kind"):
            FaultRule(site="decide", kind="nope")
        with pytest.raises(ValueError, match="rate"):
            FaultRule(site="decide", rate=1.5)
        with pytest.raises(ValueError, match="stop"):
            FaultRule(site="decide", start=5, stop=5)
        with pytest.raises(ValueError, match="latency"):
            FaultRule(site="decide", latency=-1.0)

    def test_parse_cli_specs(self) -> None:
        plan = FaultPlan.parse(
            ["decide,rate=0.5,stop=20", "execute,kind=latency,latency=0.002"],
            seed=3,
        )
        assert len(plan.rules) == 2
        assert plan.rules[0].site == "decide"
        assert plan.rules[0].rate == 0.5
        assert plan.rules[0].stop == 20
        assert plan.rules[1].kind == "latency"
        assert plan.rules[1].latency == pytest.approx(0.002)
        with pytest.raises(ValueError, match="key"):
            FaultPlan.parse(["decide,bogus=1"])
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse(["decide,latency"])


# ---------------------------------------------------------------------------
# Everything at once: chaos under deadlines, retries, and degradation
# ---------------------------------------------------------------------------
class TestChaosStress:
    def test_mixed_faults_under_concurrent_clients(self, smat, rng) -> None:
        """Transient decide + execute faults early in the run; the engine
        must serve every request (tuned, retried, or degraded) and end
        with all workers alive and the breaker recovered or closed."""
        faults = FaultPlan(
            [
                FaultRule(site="decide", kind="transient", start=0, stop=3),
                FaultRule(site="execute", kind="transient", start=0, stop=2),
            ],
            sleep=lambda _: None,
        )
        pool = [random_csr(rng, n_rows=40 + i, n_cols=40 + i) for i in range(5)]
        operands = [rng.standard_normal(m.n_cols) for m in pool]
        config = ServeConfig(
            workers=3,
            max_retries=3,
            backoff_base=0.0,
            backoff_cap=0.0,
            breaker_threshold=2,
            breaker_probe_interval=1,
            default_deadline=60.0,
        )
        failures = []
        with ServingEngine(smat, config, faults=faults) as engine:

            def client(offset: int) -> None:
                for i in range(15):
                    index = (offset + i) % len(pool)
                    try:
                        result = engine.spmv(pool[index], operands[index])
                    except Exception as exc:
                        failures.append(exc)
                        continue
                    if not np.allclose(
                        result.y,
                        pool[index].spmv(operands[index]),
                        atol=1e-9,
                    ):
                        failures.append(AssertionError(f"mismatch {index}"))

            threads = [
                threading.Thread(target=client, args=(k,), daemon=True)
                for k in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(t.is_alive() for t in threads)
            assert all(t.is_alive() for t in engine._workers)
            counters = engine.metrics.snapshot()["counters"]
            states = engine.breaker_states().values()

        assert failures == []
        assert counters["requests_served"] == 60
        assert counters["worker_errors"] == 0
        # After the fault window, every breaker must have healed.
        assert all(s is BreakerState.CLOSED for s in states)
