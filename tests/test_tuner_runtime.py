"""Runtime-procedure and SMAT facade tests (Figure 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import banded, generate_collection, graphs
from repro.features import extract_features
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.tuner import SMAT, SmatConfig
from repro.tuner.smat import label_matrix
from repro.types import FormatName, Precision


@pytest.fixture(scope="module")
def backend():
    return SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)


@pytest.fixture(scope="module")
def smat(backend) -> SMAT:
    """A small but real SMAT trained on a reduced collection."""
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


class TestDecisions:
    def test_banded_matrix_goes_dia(self, smat) -> None:
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        assert decision.format_name is FormatName.DIA
        assert decision.matrix is not None
        assert decision.matrix.format_name is FormatName.DIA

    def test_uniform_graph_goes_ell(self, smat) -> None:
        matrix = graphs.uniform_bipartite(4000, 4000, 3, seed=4)
        decision = smat.decide(matrix)
        assert decision.format_name is FormatName.ELL

    def test_power_law_goes_coo(self, smat) -> None:
        matrix = graphs.power_law_graph(6000, exponent=2.1, seed=5)
        decision = smat.decide(matrix)
        assert decision.format_name is FormatName.COO

    def test_decision_matches_exhaustive_best_mostly(self, smat, backend):
        hits = 0
        cases = list(
            generate_collection(scale=0.01, size_scale=0.4, seed=31337)
        )
        for _, matrix in cases:
            decision = smat.decide(matrix)
            actual = label_matrix(
                matrix, extract_features(matrix), smat.kernels, backend
            )
            hits += decision.format_name is actual
        # The paper reports 82-92% end-to-end accuracy.
        assert hits / len(cases) >= 0.75

    def test_lazy_extraction_skips_powerlaw_for_dia(self, smat) -> None:
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        # DIA model hit: only step-one extraction (1.0 unit), no R fit.
        assert decision.extraction_units == pytest.approx(1.0)

    def test_overhead_small_on_model_hit(self, smat) -> None:
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        assert not decision.used_fallback
        assert decision.overhead_units < 6.0

    def test_fallback_overhead_larger_but_bounded(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = forced.decide(matrix)
        assert decision.used_fallback
        assert 2.0 < decision.overhead_units < 60.0

    def test_never_measure_trusts_model(self, smat) -> None:
        config = SmatConfig(never_measure=True)
        trusting = SMAT(smat.model, smat.kernels, smat.backend, config)
        for _, matrix in generate_collection(
            scale=0.005, size_scale=0.4, seed=9
        ):
            assert not trusting.decide(matrix).used_fallback

    def test_fallback_measures_cheap_candidates_only(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        matrix = graphs.power_law_graph(4000, exponent=2.2, seed=6)
        decision = forced.decide(matrix)
        assert set(decision.measurements) <= {
            FormatName.CSR, FormatName.COO, FormatName.DIA, FormatName.ELL,
        }
        assert FormatName.CSR in decision.measurements


class TestDecisionSerialization:
    """ISSUE satellite: decisions are loggable/inspectable records."""

    def test_model_hit_round_trip(self, smat) -> None:
        import json

        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        payload = json.loads(json.dumps(decision.to_dict()))
        restored = type(decision).from_dict(payload)
        assert restored.format_name is decision.format_name
        assert restored.kernel is decision.kernel  # same registry object
        assert restored.confidence == decision.confidence
        assert restored.used_fallback == decision.used_fallback
        assert restored.predicted_format is decision.predicted_format
        assert restored.extraction_units == decision.extraction_units
        assert restored.conversion_units == decision.conversion_units
        # The converted matrix is intentionally not serialized.
        assert restored.matrix is None

    def test_matched_rule_survives(self, smat) -> None:
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        assert decision.matched_rule is not None
        restored = type(decision).from_dict(decision.to_dict())
        assert restored.matched_rule is not None
        assert str(restored.matched_rule) == str(decision.matched_rule)
        assert (
            restored.matched_rule.confidence
            == decision.matched_rule.confidence
        )

    def test_fallback_measurements_survive(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        matrix = graphs.power_law_graph(4000, exponent=2.2, seed=6)
        decision = forced.decide(matrix)
        assert decision.used_fallback and decision.measurements
        restored = type(decision).from_dict(decision.to_dict())
        assert restored.measurements == decision.measurements
        assert restored.measurement_units == decision.measurement_units
        assert restored.matched_rule == decision.matched_rule


class TestSpmvCorrectness:
    def test_spmv_matches_reference(self, smat, rng) -> None:
        for _, matrix in generate_collection(
            scale=0.005, size_scale=0.3, seed=4
        ):
            x = rng.standard_normal(matrix.n_cols)
            y, decision = smat.spmv(matrix, x)
            np.testing.assert_allclose(
                y, matrix.spmv(x), atol=1e-9,
                err_msg=str(decision.format_name),
            )

    def test_prepared_operator_reusable(self, smat, rng) -> None:
        matrix = banded.banded_matrix(1000, 5, seed=8)
        op = smat.prepare(matrix)
        for _ in range(3):
            x = rng.standard_normal(1000)
            np.testing.assert_allclose(op(x), matrix.spmv(x), atol=1e-9)


class TestPersistence:
    def test_save_load_round_trip(self, smat, tmp_path) -> None:
        smat.save(tmp_path / "smat")
        loaded = SMAT.load(tmp_path / "smat", backend=smat.backend)
        for _, matrix in generate_collection(
            scale=0.005, size_scale=0.3, seed=12
        ):
            assert (
                loaded.decide(matrix).format_name
                is smat.decide(matrix).format_name
            )


class TestConfigValidation:
    def test_bad_threshold(self) -> None:
        with pytest.raises(ValueError, match="confidence_threshold"):
            SmatConfig(confidence_threshold=1.5)

    def test_bad_repeats(self) -> None:
        with pytest.raises(ValueError, match="fallback_repeats"):
            SmatConfig(fallback_repeats=0)

    def test_conflicting_modes(self) -> None:
        with pytest.raises(ValueError, match="mutually exclusive"):
            SmatConfig(always_measure=True, never_measure=True)


class TestUnifiedInterface:
    def test_unified_csr_interface(self, smat) -> None:
        from repro.tuner import smat_dcsr_spmv, smat_scsr_spmv

        matrix = banded.banded_matrix(500, 3, seed=2)
        x = np.ones(500)
        y = smat_dcsr_spmv(
            matrix.ptr, matrix.indices, matrix.data, matrix.shape, x,
            smat=smat,
        )
        np.testing.assert_allclose(y, matrix.spmv(x), atol=1e-9)

        y32 = smat_scsr_spmv(
            matrix.ptr, matrix.indices, matrix.data, matrix.shape, x,
            smat=smat,
        )
        assert y32.dtype == np.float32
        np.testing.assert_allclose(y32, matrix.spmv(x), rtol=1e-4)
