"""Runtime-procedure and SMAT facade tests (Figure 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import banded, generate_collection, graphs
from repro.features import extract_features
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.tuner import SMAT, SmatConfig
from repro.tuner.smat import label_matrix
from repro.types import FormatName, Precision


@pytest.fixture(scope="module")
def backend():
    return SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)


@pytest.fixture(scope="module")
def smat(backend) -> SMAT:
    """A small but real SMAT trained on a reduced collection."""
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


class TestDecisions:
    def test_banded_matrix_goes_dia(self, smat) -> None:
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        assert decision.format_name is FormatName.DIA
        assert decision.matrix is not None
        assert decision.matrix.format_name is FormatName.DIA

    def test_uniform_graph_goes_ell(self, smat) -> None:
        matrix = graphs.uniform_bipartite(4000, 4000, 3, seed=4)
        decision = smat.decide(matrix)
        assert decision.format_name is FormatName.ELL

    def test_power_law_goes_coo(self, smat) -> None:
        matrix = graphs.power_law_graph(6000, exponent=2.1, seed=5)
        decision = smat.decide(matrix)
        assert decision.format_name is FormatName.COO

    def test_decision_matches_exhaustive_best_mostly(self, smat, backend):
        hits = 0
        cases = list(
            generate_collection(scale=0.01, size_scale=0.4, seed=31337)
        )
        for _, matrix in cases:
            decision = smat.decide(matrix)
            actual = label_matrix(
                matrix, extract_features(matrix), smat.kernels, backend
            )
            hits += decision.format_name is actual
        # The paper reports 82-92% end-to-end accuracy.
        assert hits / len(cases) >= 0.75

    def test_lazy_extraction_skips_powerlaw_for_dia(self, smat) -> None:
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        # DIA model hit: only step-one extraction (1.0 unit), no R fit.
        assert decision.extraction_units == pytest.approx(1.0)

    def test_overhead_small_on_model_hit(self, smat) -> None:
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        assert not decision.used_fallback
        assert decision.overhead_units < 6.0

    def test_fallback_overhead_larger_but_bounded(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = forced.decide(matrix)
        assert decision.used_fallback
        assert 2.0 < decision.overhead_units < 60.0

    def test_never_measure_trusts_model(self, smat) -> None:
        config = SmatConfig(never_measure=True)
        trusting = SMAT(smat.model, smat.kernels, smat.backend, config)
        for _, matrix in generate_collection(
            scale=0.005, size_scale=0.4, seed=9
        ):
            assert not trusting.decide(matrix).used_fallback

    def test_fallback_measures_cheap_candidates_only(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        matrix = graphs.power_law_graph(4000, exponent=2.2, seed=6)
        decision = forced.decide(matrix)
        assert set(decision.measurements) <= {
            FormatName.CSR, FormatName.COO, FormatName.DIA, FormatName.ELL,
        }
        assert FormatName.CSR in decision.measurements


class _CountingBackend:
    """Delegating backend that records every ``measure`` call's kernel."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.kernels = []

    def measure(self, kernel, matrix, features):
        self.kernels.append(kernel)
        return self.inner.measure(kernel, matrix, features)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestOverheadAccounting:
    """ISSUE satellites: the fallback's CSR reference is measured once and
    charged; a blown-budget model hit is charged and flagged."""

    def test_fallback_measures_csr_exactly_once(self, smat) -> None:
        counting = _CountingBackend(smat.backend)
        forced = SMAT(
            smat.model, smat.kernels, counting,
            SmatConfig(always_measure=True),
        )
        matrix = banded.banded_matrix(1000, 5, seed=3)
        decision = forced.decide(matrix)
        csr_kernel = smat.kernels.kernel_for(FormatName.CSR)
        # One CSR timing total: the reference run doubles as the CSR
        # candidate, so every candidate costs exactly one measurement.
        assert counting.kernels.count(csr_kernel) == 1
        assert len(counting.kernels) == len(decision.measurements)
        assert FormatName.CSR in decision.measurements

    def test_reference_run_charged_in_measurement_units(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        matrix = banded.banded_matrix(1000, 5, seed=3)
        decision = forced.decide(matrix)
        # The CSR reference costs fallback_repeats CSR units by
        # definition (seconds / csr_unit_seconds == 1); every other
        # candidate adds its conversion plus its own repeats on top.
        assert decision.measurement_units >= config.fallback_repeats
        # CSR itself adds nothing beyond the reference: with only the
        # identity candidate the charge is exactly the reference.
        assert decision.measurements[FormatName.CSR] > 0.0

    def test_blown_budget_degrades_to_csr_charged_and_flagged(
        self, smat
    ) -> None:
        from repro.formats.convert import conversion_cost, convert

        matrix = banded.banded_matrix(3000, 7, seed=3)
        assert smat.decide(matrix).format_name is FormatName.DIA
        dia, _ = convert(matrix, FormatName.DIA, fill_budget=None)
        fill_ratio = dia.data.size / matrix.nnz
        config = SmatConfig(
            never_measure=True, fill_budget=fill_ratio * 0.999
        )
        strict = SMAT(smat.model, smat.kernels, smat.backend, config)
        decision = strict.decide(matrix)
        assert decision.degraded_to_csr
        assert decision.format_name is FormatName.CSR
        assert decision.predicted_format is FormatName.DIA
        assert decision.matrix is matrix  # served as-is, no conversion
        # The abandoned DIA attempt is charged, not the free identity.
        assert decision.conversion_units == pytest.approx(
            conversion_cost(FormatName.CSR, FormatName.DIA, matrix)
        )
        assert decision.conversion_units > 0.0

    def test_degraded_flag_round_trips(self, smat) -> None:
        from repro.formats.convert import convert
        from repro.tuner.runtime import Decision

        matrix = banded.banded_matrix(3000, 7, seed=3)
        dia, _ = convert(matrix, FormatName.DIA, fill_budget=None)
        config = SmatConfig(
            never_measure=True,
            fill_budget=(dia.data.size / matrix.nnz) * 0.999,
        )
        strict = SMAT(smat.model, smat.kernels, smat.backend, config)
        decision = strict.decide(matrix)
        assert decision.degraded_to_csr
        restored = Decision.from_dict(decision.to_dict())
        assert restored.degraded_to_csr
        assert restored.conversion_units == decision.conversion_units

    def test_degraded_flag_defaults_false_for_old_records(
        self, smat
    ) -> None:
        from repro.tuner.runtime import Decision

        matrix = banded.banded_matrix(3000, 7, seed=3)
        payload = smat.decide(matrix).to_dict()
        assert payload["degraded_to_csr"] is False
        del payload["degraded_to_csr"]  # a record from before the flag
        assert Decision.from_dict(payload).degraded_to_csr is False

    def test_fallback_decision_carries_feature_snapshot(self, smat) -> None:
        forced = SMAT(
            smat.model, smat.kernels, smat.backend,
            SmatConfig(always_measure=True),
        )
        matrix = banded.banded_matrix(1000, 5, seed=3)
        decision = forced.decide(matrix)
        assert decision.used_fallback
        assert decision.features is not None
        reference = extract_features(matrix)
        assert decision.features.as_dict() == pytest.approx(
            reference.as_dict()
        )

    def test_model_hit_leaves_features_unset(self, smat) -> None:
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        assert not decision.used_fallback
        # A model hit never snapshots (lazy extraction stays lazy).
        assert decision.features is None


class TestDecisionSerialization:
    """ISSUE satellite: decisions are loggable/inspectable records."""

    def test_model_hit_round_trip(self, smat) -> None:
        import json

        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        payload = json.loads(json.dumps(decision.to_dict()))
        restored = type(decision).from_dict(payload)
        assert restored.format_name is decision.format_name
        assert restored.kernel is decision.kernel  # same registry object
        assert restored.confidence == decision.confidence
        assert restored.used_fallback == decision.used_fallback
        assert restored.predicted_format is decision.predicted_format
        assert restored.extraction_units == decision.extraction_units
        assert restored.conversion_units == decision.conversion_units
        # The converted matrix is intentionally not serialized.
        assert restored.matrix is None

    def test_matched_rule_survives(self, smat) -> None:
        matrix = banded.banded_matrix(3000, 7, seed=3)
        decision = smat.decide(matrix)
        assert decision.matched_rule is not None
        restored = type(decision).from_dict(decision.to_dict())
        assert restored.matched_rule is not None
        assert str(restored.matched_rule) == str(decision.matched_rule)
        assert (
            restored.matched_rule.confidence
            == decision.matched_rule.confidence
        )

    def test_fallback_measurements_survive(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        matrix = graphs.power_law_graph(4000, exponent=2.2, seed=6)
        decision = forced.decide(matrix)
        assert decision.used_fallback and decision.measurements
        restored = type(decision).from_dict(decision.to_dict())
        assert restored.measurements == decision.measurements
        assert restored.measurement_units == decision.measurement_units
        assert restored.matched_rule == decision.matched_rule


class TestSpmvCorrectness:
    def test_spmv_matches_reference(self, smat, rng) -> None:
        for _, matrix in generate_collection(
            scale=0.005, size_scale=0.3, seed=4
        ):
            x = rng.standard_normal(matrix.n_cols)
            y, decision = smat.spmv(matrix, x)
            np.testing.assert_allclose(
                y, matrix.spmv(x), atol=1e-9,
                err_msg=str(decision.format_name),
            )

    def test_prepared_operator_reusable(self, smat, rng) -> None:
        matrix = banded.banded_matrix(1000, 5, seed=8)
        op = smat.prepare(matrix)
        for _ in range(3):
            x = rng.standard_normal(1000)
            np.testing.assert_allclose(op(x), matrix.spmv(x), atol=1e-9)


class TestPersistence:
    def test_save_load_round_trip(self, smat, tmp_path) -> None:
        smat.save(tmp_path / "smat")
        loaded = SMAT.load(tmp_path / "smat", backend=smat.backend)
        for _, matrix in generate_collection(
            scale=0.005, size_scale=0.3, seed=12
        ):
            assert (
                loaded.decide(matrix).format_name
                is smat.decide(matrix).format_name
            )


class TestConfigValidation:
    def test_bad_threshold(self) -> None:
        with pytest.raises(ValueError, match="confidence_threshold"):
            SmatConfig(confidence_threshold=1.5)

    def test_bad_repeats(self) -> None:
        with pytest.raises(ValueError, match="fallback_repeats"):
            SmatConfig(fallback_repeats=0)

    def test_conflicting_modes(self) -> None:
        with pytest.raises(ValueError, match="mutually exclusive"):
            SmatConfig(always_measure=True, never_measure=True)


class TestUnifiedInterface:
    def test_unified_csr_interface(self, smat) -> None:
        from repro.tuner import smat_dcsr_spmv, smat_scsr_spmv

        matrix = banded.banded_matrix(500, 3, seed=2)
        x = np.ones(500)
        y = smat_dcsr_spmv(
            matrix.ptr, matrix.indices, matrix.data, matrix.shape, x,
            smat=smat,
        )
        np.testing.assert_allclose(y, matrix.spmv(x), atol=1e-9)

        y32 = smat_scsr_spmv(
            matrix.ptr, matrix.indices, matrix.data, matrix.shape, x,
            smat=smat,
        )
        assert y32.dtype == np.float32
        np.testing.assert_allclose(y32, matrix.spmv(x), rtol=1e-4)
