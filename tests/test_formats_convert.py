"""Conversion tests: correctness, routing, cost accounting, fill guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConversionError
from repro.formats import CSRMatrix, convert
from repro.formats.convert import (
    conversion_cost,
    coo_to_csr,
    csr_to_coo,
    csr_to_dia,
    csr_to_ell,
    dia_to_csr,
    ell_to_csr,
)
from repro.types import BASIC_FORMATS, FormatName
from tests.conftest import random_csr

ALL_TARGETS = list(BASIC_FORMATS) + [FormatName.BCSR, FormatName.HYB]


class TestPairwiseConversions:
    def test_csr_coo_round_trip(self, paper_csr: CSRMatrix) -> None:
        coo, _ = csr_to_coo(paper_csr)
        back, _ = coo_to_csr(coo)
        np.testing.assert_array_equal(back.to_dense(), paper_csr.to_dense())

    def test_csr_dia_round_trip(self, paper_csr: CSRMatrix) -> None:
        dia, _ = csr_to_dia(paper_csr)
        back, _ = dia_to_csr(dia)
        np.testing.assert_array_equal(back.to_dense(), paper_csr.to_dense())

    def test_csr_ell_round_trip(self, paper_csr: CSRMatrix) -> None:
        ell, _ = csr_to_ell(paper_csr)
        back, _ = ell_to_csr(ell)
        np.testing.assert_array_equal(back.to_dense(), paper_csr.to_dense())

    def test_random_matrix_round_trips(self, rng) -> None:
        csr = random_csr(rng, n_rows=30, n_cols=30, density=0.15)
        for target in ALL_TARGETS:
            out, _ = convert(csr, target, fill_budget=None)
            np.testing.assert_allclose(
                out.to_dense(), csr.to_dense(), err_msg=str(target)
            )


class TestGenericConvert:
    def test_identity_conversion_is_free(self, paper_csr: CSRMatrix) -> None:
        out, cost = convert(paper_csr, FormatName.CSR)
        assert out is paper_csr
        assert cost.touched_slots == 0
        assert cost.csr_spmv_units() == 0.0

    def test_any_to_any_via_csr(self, paper_csr: CSRMatrix) -> None:
        dia, _ = convert(paper_csr, FormatName.DIA)
        ell, cost = convert(dia, FormatName.ELL)
        np.testing.assert_array_equal(ell.to_dense(), paper_csr.to_dense())
        # The routed conversion accounts for both hops.
        assert cost.touched_slots > 0
        assert cost.source is FormatName.DIA
        assert cost.target is FormatName.ELL

    def test_spmv_identical_across_formats(self, rng) -> None:
        csr = random_csr(rng, n_rows=25, n_cols=31, density=0.1)
        x = rng.standard_normal(31)
        reference = csr.spmv(x)
        for target in ALL_TARGETS:
            out, _ = convert(csr, target, fill_budget=None)
            np.testing.assert_allclose(
                out.spmv(x), reference, atol=1e-12, err_msg=str(target)
            )


class TestFillBudget:
    def test_dia_blowup_refused(self, rng) -> None:
        # A random matrix touches ~every diagonal: DIA would explode.
        csr = random_csr(rng, n_rows=60, n_cols=60, density=0.05)
        with pytest.raises(ConversionError, match="refusing"):
            csr_to_dia(csr, fill_budget=2.0)

    def test_ell_blowup_refused(self) -> None:
        dense = np.zeros((50, 50))
        dense[0, :] = 1.0  # one full row
        dense[np.arange(1, 50), 0] = 1.0
        csr = CSRMatrix.from_dense(dense)
        with pytest.raises(ConversionError, match="refusing"):
            csr_to_ell(csr, fill_budget=3.0)

    def test_budget_none_disables_guard(self, rng) -> None:
        csr = random_csr(rng, n_rows=40, n_cols=40, density=0.05)
        dia, _ = csr_to_dia(csr, fill_budget=None)
        np.testing.assert_allclose(dia.to_dense(), csr.to_dense())


class TestCostAccounting:
    def test_ell_cost_grows_with_padding(self) -> None:
        balanced = CSRMatrix.from_dense(np.eye(40))
        skewed_dense = np.eye(40)
        skewed_dense[0, :] = 1.0
        skewed = CSRMatrix.from_dense(skewed_dense)
        _, balanced_cost = csr_to_ell(balanced)
        _, skewed_cost = csr_to_ell(skewed, fill_budget=None)
        assert (
            skewed_cost.csr_spmv_units() > 3 * balanced_cost.csr_spmv_units()
        )

    def test_estimate_matches_actual_for_dia(self, paper_csr) -> None:
        estimated = conversion_cost(FormatName.CSR, FormatName.DIA, paper_csr)
        _, actual = csr_to_dia(paper_csr)
        assert estimated == pytest.approx(actual.csr_spmv_units())

    def test_estimate_matches_actual_for_ell(self, paper_csr) -> None:
        estimated = conversion_cost(FormatName.CSR, FormatName.ELL, paper_csr)
        _, actual = csr_to_ell(paper_csr)
        assert estimated == pytest.approx(actual.csr_spmv_units())

    def test_same_format_estimate_is_zero(self, paper_csr) -> None:
        assert conversion_cost(FormatName.CSR, FormatName.CSR, paper_csr) == 0.0
