"""HITS application tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.hits import hits
from repro.collection import graphs
from repro.errors import SolverError
from repro.formats import CSRMatrix


def star_graph() -> CSRMatrix:
    """Node 0 links to 1-3 (pure hub); nodes 1-3 link to 4 (authority)."""
    dense = np.zeros((5, 5))
    dense[0, 1] = dense[0, 2] = dense[0, 3] = 1.0
    dense[1, 4] = dense[2, 4] = dense[3, 4] = 1.0
    return CSRMatrix.from_dense(dense)


class TestHits:
    def test_hub_and_authority_identified(self) -> None:
        result = hits(star_graph())
        assert result.converged
        assert np.argmax(result.hubs) == 0 or result.hubs[0] == pytest.approx(
            result.hubs.max()
        )
        assert np.argmax(result.authorities) == 4

    def test_scores_normalised(self) -> None:
        result = hits(star_graph())
        assert np.linalg.norm(result.hubs) == pytest.approx(1.0)
        assert np.linalg.norm(result.authorities) == pytest.approx(1.0)

    def test_power_law_graph_converges(self) -> None:
        graph = graphs.power_law_graph(1500, exponent=2.3, seed=7)
        result = hits(graph, tol=1e-9, max_iterations=500)
        assert result.converged
        assert np.all(result.hubs >= 0)

    def test_custom_backends_used(self) -> None:
        graph = star_graph()
        from repro.formats.ops import transpose

        a_t = transpose(graph)
        calls = {"a": 0, "at": 0}

        def apply_a(x):
            calls["a"] += 1
            return graph.spmv(x)

        def apply_at(x):
            calls["at"] += 1
            return a_t.spmv(x)

        result = hits(graph, spmv=apply_a, spmv_t=apply_at)
        assert result.converged
        assert calls["a"] == calls["at"] == result.iterations

    def test_square_required(self, rng) -> None:
        from tests.conftest import random_csr

        with pytest.raises(SolverError, match="square"):
            hits(random_csr(rng, 4, 6, 0.5))

    def test_empty_graph_stable(self) -> None:
        empty = CSRMatrix(
            np.zeros(4, np.int64), [], np.zeros(0), (3, 3)
        )
        result = hits(empty, max_iterations=5)
        assert np.all(np.isfinite(result.hubs))
