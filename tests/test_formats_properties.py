"""Property-based tests (hypothesis) on format invariants.

The core invariant of the whole system: *every* format conversion preserves
the logical matrix exactly, and SpMV in every format computes the same
product as the dense reference.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.formats import CSRMatrix, convert
from repro.types import BASIC_FORMATS, FormatName

ALL_TARGETS = list(BASIC_FORMATS) + [FormatName.BCSR, FormatName.HYB]


@st.composite
def sparse_dense_pairs(draw):
    """A random small dense matrix with controlled sparsity."""
    n_rows = draw(st.integers(min_value=1, max_value=12))
    n_cols = draw(st.integers(min_value=1, max_value=12))
    values = draw(
        arrays(
            dtype=np.float64,
            shape=(n_rows, n_cols),
            elements=st.floats(
                min_value=-100, max_value=100, allow_nan=False
            ).map(lambda v: round(v, 3)),
        )
    )
    mask = draw(
        arrays(dtype=np.bool_, shape=(n_rows, n_cols), elements=st.booleans())
    )
    return np.where(mask, values, 0.0)


@given(sparse_dense_pairs())
@settings(max_examples=60, deadline=None)
def test_conversion_preserves_matrix(dense: np.ndarray) -> None:
    csr = CSRMatrix.from_dense(dense)
    for target in ALL_TARGETS:
        out, _ = convert(csr, target, fill_budget=None)
        np.testing.assert_allclose(
            out.to_dense(), dense, atol=1e-12, err_msg=str(target)
        )


@given(sparse_dense_pairs(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_spmv_agrees_with_dense(dense: np.ndarray, seed: int) -> None:
    csr = CSRMatrix.from_dense(dense)
    x = np.random.default_rng(seed).uniform(-10, 10, size=dense.shape[1])
    expected = dense @ x
    for target in ALL_TARGETS:
        out, _ = convert(csr, target, fill_budget=None)
        np.testing.assert_allclose(
            out.spmv(x), expected, atol=1e-9, err_msg=str(target)
        )


@given(sparse_dense_pairs())
@settings(max_examples=60, deadline=None)
def test_nnz_consistent_across_formats(dense: np.ndarray) -> None:
    csr = CSRMatrix.from_dense(dense)
    expected = int(np.count_nonzero(dense))
    assert csr.nnz == expected
    for target in ALL_TARGETS:
        out, _ = convert(csr, target, fill_budget=None)
        assert out.nnz == expected, str(target)


@given(sparse_dense_pairs())
@settings(max_examples=40, deadline=None)
def test_conversion_cost_nonnegative(dense: np.ndarray) -> None:
    csr = CSRMatrix.from_dense(dense)
    for target in ALL_TARGETS:
        _, cost = convert(csr, target, fill_budget=None)
        assert cost.touched_slots >= 0
        assert cost.csr_spmv_units() >= 0.0


@given(sparse_dense_pairs())
@settings(max_examples=40, deadline=None)
def test_memory_bytes_positive_and_padding_aware(dense: np.ndarray) -> None:
    csr = CSRMatrix.from_dense(dense)
    for target in ALL_TARGETS:
        out, _ = convert(csr, target, fill_budget=None)
        assert out.memory_bytes() >= 0
        # Padding can only add storage relative to the logical non-zeros.
        assert out.memory_bytes() >= out.nnz * dense.itemsize
