"""Shared fixtures: small reference matrices used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import CSRMatrix


@pytest.fixture
def paper_dense() -> np.ndarray:
    """The 4x4 example matrix of the paper's Figure 2.

    ::

        [1 5 0 0]
        [0 2 6 0]
        [8 0 3 7]
        [0 9 0 4]
    """
    return np.array(
        [
            [1.0, 5.0, 0.0, 0.0],
            [0.0, 2.0, 6.0, 0.0],
            [8.0, 0.0, 3.0, 7.0],
            [0.0, 9.0, 0.0, 4.0],
        ]
    )


@pytest.fixture
def paper_csr(paper_dense: np.ndarray) -> CSRMatrix:
    return CSRMatrix.from_dense(paper_dense)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_csr(
    rng: np.random.Generator,
    n_rows: int = 40,
    n_cols: int = 37,
    density: float = 0.08,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """A helper (not a fixture) building a random CSR matrix."""
    dense = np.where(
        rng.random((n_rows, n_cols)) < density,
        rng.standard_normal((n_rows, n_cols)),
        0.0,
    ).astype(dtype)
    return CSRMatrix.from_dense(dense)
