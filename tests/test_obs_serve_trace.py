"""Trace correctness for the serving pipeline.

One served request must yield exactly one *complete, well-nested* span
tree — queue wait, plan resolution (with the tune/convert spans the
build emits), and kernel execution — including on the degraded and
breaker paths from ``repro.serve.resilience``.  And with tracing off,
the seams must add no spans and no allocations on the kernel hot loop.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro import obs
from repro.collection import generate_collection
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import ServeConfig, ServingEngine
from repro.serve.faults import FaultPlan
from repro.tuner import SMAT
from repro.types import Precision

from tests.conftest import random_csr


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


@pytest.fixture(autouse=True)
def _no_leftover_tracer():
    obs.uninstall()
    yield
    obs.uninstall()


def assert_well_nested(root: obs.Span) -> None:
    """Every span finished; every child inside its parent's interval."""
    for span in root.walk():
        assert span.finished, f"span {span.name} never ended"
        assert span.trace_id == root.trace_id
        for child in span.children:
            assert child.parent_id == span.span_id
            assert span.start_ns <= child.start_ns, (span.name, child.name)
            assert child.end_ns <= span.end_ns, (span.name, child.name)


def serve_one(smat, matrix, x, config=None, faults=None, requests=1):
    """Serve ``requests`` identical requests under a fresh tracer."""
    tracer = obs.Tracer()
    results = []
    with obs.installed(tracer):
        engine = ServingEngine(smat, config or ServeConfig(workers=1),
                               faults=faults)
        with engine:
            for _ in range(requests):
                results.append(engine.spmv(matrix, x))
    return tracer.roots(), results


class TestRequestTree:
    def test_one_request_one_complete_tree(self, smat, rng):
        matrix = random_csr(rng, n_rows=60, n_cols=60)
        x = rng.standard_normal(60)
        roots, (result,) = serve_one(smat, matrix, x)
        assert len(roots) == 1
        (root,) = roots
        assert root.name == "serve.request"
        assert_well_nested(root)
        # The three lifecycle stages, in order, directly under the root.
        stages = [c.name for c in sorted(
            root.children, key=lambda s: s.start_ns
        )]
        assert stages == ["serve.queue", "serve.plan", "serve.execute"]
        # The cold build nests the tuning stages under serve.plan.
        assert root.find("serve.build")
        assert root.find("tune.decide")
        assert root.find("kernel.execute")
        assert root.attrs["format"] == result.format_name.value
        assert root.attrs["cache_hit"] is False
        assert root.attrs["degraded"] is False
        assert root.status == "ok"

    def test_cache_hit_tree_skips_the_build(self, smat, rng):
        matrix = random_csr(rng, n_rows=60, n_cols=60)
        x = rng.standard_normal(60)
        roots, results = serve_one(smat, matrix, x, requests=3)
        assert len(roots) == 3
        assert [r.attrs["cache_hit"] for r in roots] == [
            False, True, True,
        ]
        for root in roots[1:]:
            assert_well_nested(root)
            assert not root.find("serve.build")
            assert not root.find("tune.decide")
            assert root.find("serve.execute")

    def test_overhead_report_reconciles_with_wall_clock(self, smat, rng):
        """Acceptance criterion: per-stage self-times sum to within 5%
        of the requests' wall-clock latency (exactly, by construction)."""
        matrix = random_csr(rng, n_rows=60, n_cols=60)
        x = rng.standard_normal(60)
        roots, _ = serve_one(smat, matrix, x, requests=4)
        report = obs.overhead_report(roots)
        assert report.requests == 4
        assert report.wall_ns > 0
        assert abs(report.accounted_fraction - 1.0) < 0.05
        # And in fact the partition is exact.
        assert report.accounted_ns == report.wall_ns

    def test_trace_ids_are_distinct_per_request(self, smat, rng):
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        x = rng.standard_normal(50)
        roots, _ = serve_one(smat, matrix, x, requests=3)
        assert len({root.trace_id for root in roots}) == 3

    def test_queue_span_covers_submit_to_dequeue(self, smat, rng):
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        x = rng.standard_normal(50)
        roots, _ = serve_one(smat, matrix, x)
        (queue_span,) = roots[0].find("serve.queue")
        assert queue_span.finished
        # Submitted on the test thread, dequeued on a worker: the span's
        # recorded thread is the submitter's.
        assert queue_span.thread_id == roots[0].thread_id


class TestDegradedPaths:
    def test_build_failure_tree_has_degrade_span(self, smat, rng):
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        x = rng.standard_normal(50)
        faults = FaultPlan.parse(["decide,kind=fatal,stop=1"])
        roots, (result,) = serve_one(
            smat, matrix, x,
            config=ServeConfig(workers=1, breaker_threshold=1),
            faults=faults,
        )
        assert result.degraded
        (root,) = roots
        assert_well_nested(root)
        assert root.attrs["degraded"] is True
        (build,) = root.find("serve.build")
        assert build.status == "error"
        assert "InjectedFatalFault" in build.error
        (degrade,) = root.find("serve.degrade")
        assert degrade.attrs["reason"] == "build_failed"
        # The degraded request still executed and succeeded.
        assert root.find("serve.execute")
        assert root.status == "ok"

    def test_breaker_open_tree_has_degrade_reason(self, smat, rng):
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        x = rng.standard_normal(50)
        faults = FaultPlan.parse(["decide,kind=fatal,stop=1"])
        roots, results = serve_one(
            smat, matrix, x,
            config=ServeConfig(workers=1, breaker_threshold=1),
            faults=faults, requests=2,
        )
        assert all(r.degraded for r in results)
        # Request 2 hits the now-open breaker: no build attempt at all.
        second = roots[1]
        assert_well_nested(second)
        assert not second.find("serve.build")
        (degrade,) = second.find("serve.degrade")
        assert degrade.attrs["reason"] == "breaker_open"

    def test_failed_request_root_ends_with_error(self, smat, rng):
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        x = rng.standard_normal(50)
        faults = FaultPlan.parse(["execute,kind=fatal"])
        tracer = obs.Tracer()
        with obs.installed(tracer):
            config = ServeConfig(workers=1, max_retries=0)
            with ServingEngine(smat, config, faults=faults) as engine:
                future = engine.submit(matrix, x)
                with pytest.raises(Exception):
                    future.result(timeout=10)
        (root,) = tracer.roots()
        assert_well_nested(root)
        assert root.status == "error"
        (execute,) = root.find("serve.execute")
        assert execute.attrs.get("failed") is True

    def test_retry_attempts_each_get_a_span(self, smat, rng):
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        x = rng.standard_normal(50)
        faults = FaultPlan.parse(["execute,kind=transient,stop=1"])
        roots, (result,) = serve_one(
            smat, matrix, x,
            config=ServeConfig(
                workers=1, max_retries=2, backoff_base=0.0, backoff_cap=0.0
            ),
            faults=faults,
        )
        assert result.retries == 1
        (root,) = roots
        assert_well_nested(root)
        attempts = root.find("serve.attempt")
        assert [a.attrs["attempt"] for a in attempts] == [0, 1]
        assert attempts[0].status == "error"
        assert attempts[1].status == "ok"

    def test_rejected_submit_ends_the_trace(self, smat, rng):
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        x = rng.standard_normal(50)
        tracer = obs.Tracer()
        with obs.installed(tracer):
            engine = ServingEngine(smat, ServeConfig(workers=1))
            with engine:
                engine.spmv(matrix, x)
        # Only completed, well-formed trees; no dangling open spans from
        # the engine shutting down.
        for root in tracer.roots():
            assert_well_nested(root)


class TestDisabledTracing:
    def test_serving_without_tracer_produces_no_spans(self, smat, rng):
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        x = rng.standard_normal(50)
        assert obs.get_tracer() is None
        with ServingEngine(smat, ServeConfig(workers=1)) as engine:
            result = engine.spmv(matrix, x)
        assert result.y.shape == (50,)

    def test_disabled_kernel_hot_loop_allocates_nothing_in_obs(
        self, smat, rng
    ):
        """With no tracer installed the kernel dispatch path must not
        allocate anything inside repro/obs (the near-zero-cost claim):
        tracemalloc, filtered to the obs package, sees zero bytes."""
        matrix = random_csr(rng, n_rows=60, n_cols=60)
        x = rng.standard_normal(60)
        decision = smat.decide(matrix)
        if decision.matrix is None:
            from repro.formats.convert import convert

            decision.matrix, _ = convert(
                matrix, decision.format_name, fill_budget=None
            )
        kernel, converted = decision.kernel, decision.matrix
        kernel(converted, x)  # warm any lazy state before measuring

        obs_filter = tracemalloc.Filter(
            True, "*" + "/repro/obs/*".replace("/", "*")
        )
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(50):
                kernel(converted, x)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = after.filter_traces([obs_filter]).compare_to(
            before.filter_traces([obs_filter]), "lineno"
        )
        grown = [s for s in stats if s.size_diff > 0]
        assert grown == [], f"obs allocated on the disabled path: {grown}"

    def test_null_span_is_shared_across_call_sites(self):
        assert obs.span("a") is obs.NULL_SPAN
        assert obs.span("b", key="value") is obs.NULL_SPAN
