"""Differential tests of the value-refresh fast path (tier-2 plan reuse).

``SparseMatrix.refresh_values(csr)`` must be *indistinguishable* from
converting the churned CSR from scratch: same class, same structure
arrays, bitwise-identical ``to_dense``/``spmv`` products, identical
memory accounting.  The sweep reuses the structural families and dyadic
value discipline of ``tests/test_properties_differential.py`` — values
are exact multiples of 1/8, operands of 1/4, so any summation order
yields the identical bit pattern and a refresh that drops, duplicates,
or misplaces one entry fails loudly on some seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConversionError, FormatError
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.types import FormatName
from tests.test_properties_differential import (
    ALL_TARGETS,
    N_SEEDS,
    _structure_for,
    dyadic_operand,
    with_dyadic_data,
)


def _refresh_targets(csr):
    """(target, converted) for every format convertible from ``csr``."""
    out = []
    for target in ALL_TARGETS + (FormatName.CSR,):
        try:
            converted, _ = convert(csr, target, fill_budget=None)
        except ConversionError:
            continue
        out.append((target, converted))
    return out


def _assert_same_matrix(refreshed, rebuilt, target, x) -> None:
    assert type(refreshed) is type(rebuilt), target
    assert refreshed.shape == rebuilt.shape, target
    assert refreshed.nnz == rebuilt.nnz, target
    assert np.array_equal(refreshed.to_dense(), rebuilt.to_dense()), target
    assert np.array_equal(refreshed.spmv(x), rebuilt.spmv(x)), target
    assert refreshed.memory_bytes() == rebuilt.memory_bytes(), target


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_refresh_bitwise_equals_reconvert(seed: int) -> None:
    rng = np.random.default_rng(seed + 60_000)
    base = with_dyadic_data(_structure_for(seed), rng)
    churned = with_dyadic_data(base, rng)
    x = dyadic_operand(rng, base.n_cols)
    for target, converted in _refresh_targets(base):
        refreshed = converted.refresh_values(churned)
        rebuilt, _ = convert(churned, target, fill_budget=None)
        _assert_same_matrix(refreshed, rebuilt, target, x)
        # The donor keeps its own values: refresh returns a new instance.
        assert np.array_equal(
            converted.to_dense(), base.to_dense()
        ), target
        # Second refresh exercises the cached scatter plan (first call
        # computes it, later calls reuse it) — still bitwise identical.
        churned2 = with_dyadic_data(base, rng)
        again = refreshed.refresh_values(churned2)
        rebuilt2, _ = convert(churned2, target, fill_budget=None)
        _assert_same_matrix(again, rebuilt2, target, x)


class TestRefreshValidation:
    def test_rejects_non_csr_source(self) -> None:
        base = _structure_for(0)
        coo, _ = convert(base, FormatName.COO, fill_budget=None)
        with pytest.raises(FormatError, match="CSR"):
            coo.refresh_values(coo)

    def test_rejects_shape_mismatch(self) -> None:
        base = _structure_for(0)
        other = CSRMatrix.from_dense(np.ones((3, 3)))
        dia, _ = convert(base, FormatName.DIA, fill_budget=None)
        with pytest.raises(FormatError, match="shape"):
            dia.refresh_values(other)

    def test_rejects_dtype_mismatch(self) -> None:
        base = _structure_for(0)
        other = CSRMatrix(
            base.ptr,
            base.indices,
            base.data.astype(np.float32),
            base.shape,
        )
        dia, _ = convert(base, FormatName.DIA, fill_budget=None)
        with pytest.raises(FormatError, match="dtype"):
            dia.refresh_values(other)

    def test_rejects_nnz_mismatch(self) -> None:
        rng = np.random.default_rng(3)
        base = with_dyadic_data(_structure_for(8), rng)
        if base.nnz < 2:
            pytest.skip("degenerate structure")
        smaller = CSRMatrix(
            np.minimum(base.ptr, base.nnz - 1),
            base.indices[: base.nnz - 1],
            base.data[: base.nnz - 1],
            base.shape,
        )
        dia, _ = convert(base, FormatName.DIA, fill_budget=None)
        # Prime the cached scatter plan with the true structure; the nnz
        # guard protects every *subsequent* refresh against a source that
        # no longer matches the plan.
        dia.refresh_values(base)
        with pytest.raises(FormatError):
            dia.refresh_values(smaller)


class TestRefreshSemantics:
    def test_structure_arrays_shared_not_copied(self) -> None:
        """Refresh reuses the donor's structure arrays outright — that is
        where the tier-2 memory and time savings come from."""
        rng = np.random.default_rng(5)
        base = with_dyadic_data(_structure_for(8), rng)
        churned = with_dyadic_data(base, rng)

        dia, _ = convert(base, FormatName.DIA, fill_budget=None)
        refreshed = dia.refresh_values(churned)
        assert refreshed.offsets is dia.offsets

        ell, _ = convert(base, FormatName.ELL, fill_budget=None)
        assert ell.refresh_values(churned).indices is ell.indices

        csc, _ = convert(base, FormatName.CSC, fill_budget=None)
        refreshed_csc = csc.refresh_values(churned)
        assert refreshed_csc.ptr is csc.ptr
        assert refreshed_csc.indices is csc.indices

    def test_refresh_plan_cached_and_propagated(self) -> None:
        rng = np.random.default_rng(6)
        base = with_dyadic_data(_structure_for(8), rng)
        churned = with_dyadic_data(base, rng)
        dia, _ = convert(base, FormatName.DIA, fill_budget=None)
        assert getattr(dia, "_refresh_plan", None) is None
        refreshed = dia.refresh_values(churned)
        plan = dia._refresh_plan
        assert plan is not None
        # The refreshed instance inherits the plan so chained refreshes
        # (the steady state of a value-churn workload) never recompute it.
        assert refreshed._refresh_plan is plan

    def test_csr_refresh_is_a_value_copy(self) -> None:
        rng = np.random.default_rng(7)
        base = with_dyadic_data(_structure_for(3), rng)
        churned = with_dyadic_data(base, rng)
        refreshed = base.refresh_values(churned)
        assert refreshed.ptr is base.ptr
        assert refreshed.indices is base.indices
        assert np.array_equal(refreshed.data, churned.data)
        assert refreshed.data is not churned.data  # defensive copy
