"""Cluster dispatcher + worker tests.

Two layers: ``WorkerRuntime`` is exercised in-process on ``queue.Queue``
(the loop is process-agnostic by design, and in-process runs report
coverage); ``ClusterDispatcher`` end-to-end tests run one real 2-shard
spawn fleet, shared module-wide to pay the interpreter start-up once.
"""

from __future__ import annotations

import queue
import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterDispatcher,
    Heartbeat,
    PlanHandle,
    ShardReply,
    ShardRequest,
    SharedArena,
    WarmRequest,
    WorkerRuntime,
    WorkerSpec,
    worker_main,
)
from repro.cluster.dispatcher import _revive_error
from repro.cluster.messages import (
    CrashRequest,
    InvalidateReply,
    InvalidateRequest,
    ShutdownRequest,
    WarmReply,
    WorkerExit,
)
from repro.collection import generate_collection
from repro.errors import (
    BackpressureError,
    DeadlineExceededError,
    ServeError,
    TransientError,
)
from repro.formats.csr import CSRMatrix
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import build_matrix_pool, fingerprint
from repro.tuner import SMAT
from repro.types import Precision


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.02, size_scale=0.4, seed=77),
        backend=backend,
    )


@pytest.fixture(scope="module")
def pool():
    return build_matrix_pool(6, seed=11, size_scale=0.3)


@pytest.fixture(scope="module")
def operands(pool):
    rng = np.random.default_rng(42)
    return [rng.standard_normal(m.n_cols) for m in pool]


def publish(arena: SharedArena, matrix: CSRMatrix) -> PlanHandle:
    """Dispatcher-side publish, inlined for worker-level tests."""
    return PlanHandle(
        fingerprint=fingerprint(matrix),
        ptr=arena.place(matrix.ptr),
        indices=arena.place(matrix.indices),
        data=arena.place(matrix.data),
        shape=(int(matrix.n_rows), int(matrix.n_cols)),
    )


# ---------------------------------------------------------------------------
# WorkerRuntime, in-process
# ---------------------------------------------------------------------------
class TestWorkerRuntime:
    def run_worker(self, smat, messages, crash_after=None, drain=True):
        """Feed ``messages`` + shutdown through a runtime on plain queues."""
        exits = []
        requests, replies = queue.Queue(), queue.Queue()
        for message in messages:
            requests.put(message)
        requests.put(ShutdownRequest(drain=drain))
        runtime = WorkerRuntime(
            shard_id=0,
            generation=1,
            spec=WorkerSpec(tuner=smat, crash_after=crash_after),
            request_queue=requests,
            reply_queue=replies,
            exit_fn=exits.append,
        )
        runtime.run()
        if exits:  # a "crashed" runtime never stopped its engine
            runtime.engine.stop(drain=False)
        out = []
        while not replies.empty():
            out.append(replies.get_nowait())
        return runtime, out, exits

    def test_serves_request_into_shared_slot(self, smat, pool, operands):
        matrix, x = pool[0], operands[0]
        with SharedArena(4 * 1024 * 1024) as arena:
            handle = publish(arena, matrix)
            x_ref, y_ref = arena.place(x), arena.alloc(
                (matrix.n_rows,), matrix.dtype
            )
            request = ShardRequest(msg_id=7, plan=handle, x=x_ref, y=y_ref)
            _, replies, exits = self.run_worker(smat, [request])
            shard_replies = [r for r in replies if isinstance(r, ShardReply)]
            assert len(shard_replies) == 1 and not exits
            reply = shard_replies[0]
            assert reply.ok and reply.msg_id == 7 and reply.generation == 1
            assert reply.meta["kernel"]
            assert np.allclose(arena.view(y_ref), matrix.spmv(x), atol=1e-9)

    def test_ready_heartbeat_and_exit_snapshot(self, smat):
        _, replies, _ = self.run_worker(smat, [])
        assert isinstance(replies[0], Heartbeat)  # the ready signal
        assert replies[0].generation == 1
        exit_msg = replies[-1]
        assert isinstance(exit_msg, WorkerExit)
        assert exit_msg.metrics is not None and exit_msg.cache_stats is not None

    def test_expired_deadline_is_a_failed_reply(self, smat, pool, operands):
        matrix, x = pool[1], operands[1]
        with SharedArena(4 * 1024 * 1024) as arena:
            request = ShardRequest(
                msg_id=1,
                plan=publish(arena, matrix),
                x=arena.place(x),
                y=arena.alloc((matrix.n_rows,), matrix.dtype),
                expires_at=time.monotonic() - 1.0,
            )
            _, replies, _ = self.run_worker(smat, [request])
            reply = next(r for r in replies if isinstance(r, ShardReply))
            assert not reply.ok
            assert reply.error[0] == "DeadlineExceededError"

    def test_warm_builds_plans(self, smat, pool):
        with SharedArena(8 * 1024 * 1024) as arena:
            handles = tuple(publish(arena, m) for m in pool[:3])
            runtime, replies, _ = self.run_worker(
                smat, [WarmRequest(handles=handles)]
            )
            warm = next(r for r in replies if isinstance(r, WarmReply))
            assert warm.warmed == 3 and warm.failed == 0
            assert runtime.engine.cache.stats()["entries"] >= 3

    def test_invalidate_drops_plan_and_acks(self, smat, pool, operands):
        matrix, x = pool[2], operands[2]
        with SharedArena(4 * 1024 * 1024) as arena:
            handle = publish(arena, matrix)
            request = ShardRequest(
                msg_id=1,
                plan=handle,
                x=arena.place(x),
                y=arena.alloc((matrix.n_rows,), matrix.dtype),
            )
            invalidate = InvalidateRequest(fingerprint=handle.fingerprint)
            runtime, replies, _ = self.run_worker(smat, [request, invalidate])
            ack = next(r for r in replies if isinstance(r, InvalidateReply))
            assert ack.fingerprint == handle.fingerprint
            assert runtime.engine.cache.stats()["entries"] == 0

    def test_model_update_swaps_ruleset_and_acks(self, smat):
        from repro.cluster.messages import (
            ModelUpdate,
            ModelUpdateReply,
            ndarray_payload_bytes,
        )

        # A private tuner so the swap cannot pollute the shared fixture.
        tuner = SMAT(smat.model, smat.kernels, smat.backend, smat.config)
        import copy

        pushed = copy.deepcopy(smat.model)
        update = ModelUpdate(model=pushed, epoch=5)
        # The retrained ruleset itself keeps the zero-copy invariant.
        assert ndarray_payload_bytes(update) == 0
        runtime, replies, exits = self.run_worker(tuner, [update])
        acks = [r for r in replies if isinstance(r, ModelUpdateReply)]
        assert len(acks) == 1 and not exits
        assert acks[0].ok and acks[0].epoch == 5
        assert acks[0].error is None
        assert runtime.engine.tuner.model is pushed

    def test_unknown_message_is_an_error_reply(self, smat):
        _, replies, _ = self.run_worker(smat, ["not a message"])
        reply = next(r for r in replies if isinstance(r, ShardReply))
        assert not reply.ok and "unknown message" in reply.error[1]

    def test_crash_after_invokes_exit(self, smat, pool, operands):
        matrix, x = pool[0], operands[0]
        with SharedArena(4 * 1024 * 1024) as arena:
            requests = [
                ShardRequest(
                    msg_id=i,
                    plan=publish(arena, matrix),
                    x=arena.place(x),
                    y=arena.alloc((matrix.n_rows,), matrix.dtype),
                )
                for i in range(3)
            ]
            _, replies, exits = self.run_worker(
                smat, requests, crash_after=2
            )
            assert exits == [13]
            # Died after the second request: the third never got a reply.
            assert len([r for r in replies if isinstance(r, ShardReply)]) == 2

    def test_crash_request_invokes_exit(self, smat):
        _, _, exits = self.run_worker(smat, [CrashRequest()], drain=True)
        assert exits == [13]

    def test_worker_main_refuses_fork(self, smat, monkeypatch):
        monkeypatch.setattr(
            "repro.cluster.worker.multiprocessing.get_start_method",
            lambda allow_none=True: "fork",
        )
        with pytest.raises(ServeError, match="spawn"):
            worker_main(0, 1, WorkerSpec(tuner=smat), queue.Queue(), queue.Queue())


# ---------------------------------------------------------------------------
# ClusterDispatcher, real spawn fleet (shared across the module)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster(smat):
    spec = WorkerSpec(tuner=smat)
    with ClusterDispatcher(spec, ClusterConfig(workers=2)) as running:
        yield running


class TestClusterEndToEnd:
    def test_products_match_reference(self, cluster, pool, operands):
        for matrix, x in zip(pool, operands):
            result = cluster.spmv(matrix, x)
            assert np.allclose(result.y, matrix.spmv(x), atol=1e-9)
            assert result.shard_id in (0, 1)
            assert result.total_seconds == result.dispatch_seconds > 0.0

    def test_routing_is_sticky_and_plans_cache(self, cluster, pool, operands):
        matrix, x = pool[0], operands[0]
        first = cluster.spmv(matrix, x)
        again = cluster.spmv(matrix, x)
        assert again.shard_id == first.shard_id
        assert again.cache_hit

    def test_value_churn_stays_on_structure_shard(
        self, cluster, pool, operands
    ):
        matrix, x = pool[3], operands[3]
        base = cluster.spmv(matrix, x)
        churned = CSRMatrix(
            matrix.ptr, matrix.indices, matrix.data * 1.5, matrix.shape
        )
        refreshed = cluster.spmv(churned, x)
        # Same structure key -> same shard, served via the tier-2 refresh
        # fast path of that shard's engine.
        assert refreshed.shard_id == base.shard_id
        assert refreshed.refreshed
        assert np.allclose(refreshed.y, churned.spmv(x), atol=1e-9)

    def test_shard_assignments_partition_structures(
        self, cluster, pool, operands
    ):
        for matrix, x in zip(pool, operands):
            cluster.spmv(matrix, x)
        assignments = cluster.shard_assignments()
        fps = {fingerprint(m) for m in pool}
        placed = [fp for shard_fps in assignments.values() for fp in shard_fps]
        assert fps <= set(placed)
        assert len(placed) == len(set(placed))  # exactly one shard each

    def test_operand_vector_validated(self, cluster, pool):
        with pytest.raises(ValueError, match="shape"):
            cluster.spmv(pool[0], np.zeros(pool[0].n_cols + 1))

    def test_expired_deadline_raises(self, cluster, pool, operands):
        with pytest.raises(DeadlineExceededError):
            cluster.spmv(pool[1], operands[1], deadline=1e-6)

    def test_backpressure_at_outstanding_cap(self, cluster, pool, operands):
        matrix, x = pool[0], operands[0]
        shard_id = cluster.spmv(matrix, x).shard_id
        shard = cluster._shards[shard_id]
        cap = cluster.config.max_outstanding
        fakes = {-(i + 1): object() for i in range(cap)}
        with cluster._lock:
            shard.outstanding.update(fakes)
        try:
            with pytest.raises(BackpressureError):
                cluster.spmv(matrix, x)
        finally:
            with cluster._lock:
                for key in fakes:
                    shard.outstanding.pop(key, None)
        assert int(
            cluster.metrics.snapshot()["counters"]["requests_rejected"]
        ) >= 1

    def test_invalidate_unpublished_returns_false(self, cluster, rng):
        from tests.conftest import random_csr

        assert cluster.invalidate(random_csr(rng)) is False

    def test_hot_path_pickled_zero_operand_bytes(self, cluster):
        counters = cluster.metrics.snapshot()["counters"]
        assert int(counters["operand_bytes_pickled"]) == 0
        assert int(counters["requests_served"]) > 0

    def test_model_push_reaches_every_shard(
        self, cluster, smat, pool, operands
    ):
        sent = cluster.push_model(smat.model)
        assert sent == 2
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            counters = cluster.metrics.snapshot()["counters"]
            if int(counters["model_push_acks"]) >= sent:
                break
            time.sleep(0.02)
        counters = cluster.metrics.snapshot()["counters"]
        assert int(counters["model_push_acks"]) >= sent
        assert int(counters["model_push_failures"]) == 0
        assert int(counters["model_pushes"]) >= sent
        # Serving under the swapped ruleset stays correct, and the push
        # itself pickled no operand arrays.
        for matrix, x in zip(pool[:3], operands[:3]):
            assert np.allclose(
                cluster.spmv(matrix, x).y, matrix.spmv(x), atol=1e-9
            )
        assert int(counters["operand_bytes_pickled"]) == 0

    def test_scoreboard_renders(self, cluster):
        board = cluster.scoreboard()
        assert "cluster: 2 shards" in board
        assert "plan store:" in board
        assert "operand_bytes_pickled" in board


class TestDispatcherUnstarted:
    def test_submit_before_start_raises(self, smat, pool):
        dispatcher = ClusterDispatcher(WorkerSpec(tuner=smat))
        try:
            with pytest.raises(ServeError, match="not running"):
                dispatcher.submit(pool[0], np.zeros(pool[0].n_cols))
        finally:
            dispatcher.stop()

    def test_push_model_before_start_raises(self, smat):
        dispatcher = ClusterDispatcher(WorkerSpec(tuner=smat))
        try:
            with pytest.raises(ServeError):
                dispatcher.push_model(smat.model)
        finally:
            dispatcher.stop()

    def test_arena_growth_and_reuse(self, smat):
        dispatcher = ClusterDispatcher(
            WorkerSpec(tuner=smat), ClusterConfig(arena_bytes=4096)
        )
        try:
            big = np.arange(4096, dtype=np.float64)  # > one arena
            ref = dispatcher._place(big)
            with dispatcher._lock:
                view = dispatcher._arenas[ref.segment].view(ref)
            assert np.array_equal(view, big)
            dispatcher._free(ref)
        finally:
            dispatcher.stop()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_outstanding": 0},
            {"heartbeat_interval": 0.0},
            {"heartbeat_interval": 1.0, "heartbeat_timeout": 0.5},
            {"max_respawns": -1},
            {"max_redispatches": -1},
            {"arena_bytes": 16},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)

    def test_revive_error_maps_types(self):
        assert isinstance(
            _revive_error(("DeadlineExceededError", "late")),
            DeadlineExceededError,
        )
        assert isinstance(
            _revive_error(("InjectedFault", "chaos")), TransientError
        )
        assert isinstance(_revive_error(("SomethingNew", "?")), ServeError)
