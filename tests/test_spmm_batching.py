"""SpMM fast-path tests: kernels and registry, engine batch coalescing,
and dispatcher-side coalescing in the sharded cluster.

The bitwise assertions lean on the same dyadic-value trick as the
differential sweep (exact products, order-free sums), so a batched
execution path that reorders, drops or double-counts a request cannot
hide behind float tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import generate_collection
from repro.errors import DeadlineExceededError
from repro.formats.convert import csr_to_dia, csr_to_ell
from repro.formats.csr import CSRMatrix
from repro.formats.reference import csr_spmm_loop
from repro.kernels.parallel import csr_spmm_thread
from repro.kernels.spmm import (
    HEAVY_ROW_DEGREE,
    csr_spmm,
    dia_spmm,
    ell_spmm,
    spmm_fallback,
    spmm_formats,
    spmm_kernel_for,
    supports_spmm,
)
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import FaultPlan, ServeConfig, ServingEngine
from repro.tuner import SMAT
from repro.types import FormatName, Precision

from tests.conftest import random_csr
from tests.test_properties_differential import (
    dyadic_operand,
    with_dyadic_data,
)


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


def dyadic_block(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    return np.stack([dyadic_operand(rng, n) for _ in range(k)], axis=1)


# ---------------------------------------------------------------------------
# Kernels and registry
# ---------------------------------------------------------------------------
class TestKernels:
    def test_registry_covers_vector_formats(self) -> None:
        assert supports_spmm(FormatName.CSR)
        assert supports_spmm(FormatName.ELL)
        assert supports_spmm(FormatName.DIA)
        assert not supports_spmm(FormatName.HYB)
        assert spmm_kernel_for(FormatName.HYB) is None
        for name in spmm_formats():
            assert callable(spmm_kernel_for(name))

    def test_csr_heavy_and_empty_rows(self, rng) -> None:
        # One hub row past HEAVY_ROW_DEGREE, interleaved empty rows: the
        # kernel must route the hub through the segment-sum path and
        # leave empty rows exactly zero.
        n_cols = 4 * HEAVY_ROW_DEGREE
        hub = np.zeros(n_cols)
        hub[:: 2] = 0.5
        dense = np.zeros((5, n_cols))
        dense[1] = hub
        dense[3, :3] = (0.25, -0.5, 1.0)
        matrix = with_dyadic_data(CSRMatrix.from_dense(dense), rng)
        X = dyadic_block(rng, n_cols, 7)
        assert np.array_equal(csr_spmm(matrix, X), csr_spmm_loop(matrix, X))
        assert np.array_equal(csr_spmm(matrix, X)[0], np.zeros(7))

    def test_csr_empty_matrix(self) -> None:
        matrix = CSRMatrix.from_dense(np.zeros((6, 4)))
        Y = csr_spmm(matrix, np.ones((4, 3)))
        assert np.array_equal(Y, np.zeros((6, 3)))

    def test_thread_kernel_matches_single_chunk(self, rng) -> None:
        matrix = with_dyadic_data(
            random_csr(rng, n_rows=300, n_cols=280), rng
        )
        X = dyadic_block(rng, 280, 5)
        assert np.array_equal(
            csr_spmm_thread(matrix, X, workers=3), csr_spmm(matrix, X)
        )

    def test_ell_dia_match_loop_oracle(self, rng) -> None:
        base = CSRMatrix.from_dense(
            np.diag(np.ones(30)) + np.diag(np.ones(29), k=1)
        )
        matrix = with_dyadic_data(base, rng)
        X = dyadic_block(rng, 30, 4)
        expect = csr_spmm_loop(matrix, X)
        ell, _ = csr_to_ell(matrix, fill_budget=None)
        dia, _ = csr_to_dia(matrix, fill_budget=None)
        assert np.array_equal(ell_spmm(ell, X), expect)
        assert np.array_equal(dia_spmm(dia, X), expect)

    def test_fallback_equals_sequential(self, rng) -> None:
        matrix = with_dyadic_data(random_csr(rng, n_rows=40, n_cols=30), rng)
        X = dyadic_block(rng, 30, 3)
        assert np.array_equal(
            spmm_fallback(matrix, X), csr_spmm_loop(matrix, X)
        )

    def test_operand_block_validated(self, rng) -> None:
        from repro.errors import FormatError

        matrix = random_csr(rng, n_rows=10, n_cols=8)
        with pytest.raises(FormatError):
            csr_spmm(matrix, np.ones((9, 2)))
        with pytest.raises(FormatError):
            csr_spmm(matrix, np.ones(8))


# ---------------------------------------------------------------------------
# Engine batch coalescing
# ---------------------------------------------------------------------------
class TestEngineBatching:
    def _dyadic_case(self, rng, k=8):
        matrix = with_dyadic_data(
            random_csr(rng, n_rows=90, n_cols=90), rng
        )
        xs = [dyadic_operand(rng, 90) for _ in range(k)]
        return matrix, xs

    def test_submit_batch_executes_one_spmm(self, smat, rng) -> None:
        matrix, xs = self._dyadic_case(rng)
        config = ServeConfig(workers=1, max_batch_rhs=8)
        with ServingEngine(smat, config) as engine:
            futures = engine.submit_batch(matrix, xs)
            results = [f.result() for f in futures]
            counters = engine.metrics.snapshot()["counters"]
        assert counters["spmm_batches_total"] >= 1
        assert counters["spmm_requests_batched"] == len(xs)
        for x, result in zip(xs, results):
            assert np.array_equal(result.y, matrix.spmv(x, reference=True))

    def test_batch_results_bitwise_equal_unbatched(self, smat, rng) -> None:
        matrix, xs = self._dyadic_case(rng)
        with ServingEngine(smat, ServeConfig(workers=1)) as engine:
            plain = [engine.spmv(matrix, x).y for x in xs]
        config = ServeConfig(workers=1, max_batch_rhs=8)
        with ServingEngine(smat, config) as engine:
            batched = [
                f.result().y for f in engine.submit_batch(matrix, xs)
            ]
        for a, b in zip(plain, batched):
            assert np.array_equal(a, b)

    def test_max_batch_rhs_one_disables_spmm(self, smat, rng) -> None:
        matrix, xs = self._dyadic_case(rng)
        with ServingEngine(smat, ServeConfig(workers=1)) as engine:
            for future in engine.submit_batch(matrix, xs):
                future.result()
            counters = engine.metrics.snapshot()["counters"]
        assert counters["spmm_batches_total"] == 0

    def test_batch_window_coalesces_separate_submits(self, smat, rng) -> None:
        matrix, xs = self._dyadic_case(rng, k=4)
        config = ServeConfig(
            workers=1, batch_window=0.25, max_batch_rhs=4
        )
        with ServingEngine(smat, config) as engine:
            engine.spmv(matrix, xs[0])  # plan resolved, cache warm
            futures = [engine.submit(matrix, x) for x in xs]
            for future in futures:
                future.result()
            counters = engine.metrics.snapshot()["counters"]
        assert counters["spmm_requests_batched"] >= 2

    def test_expired_member_excluded_from_batch(self, smat, rng) -> None:
        matrix, xs = self._dyadic_case(rng, k=3)
        config = ServeConfig(workers=1, max_batch_rhs=4)
        with ServingEngine(smat, config) as engine:
            engine.spmv(matrix, xs[0])  # warm the plan first
            futures = engine.submit_batch(
                matrix, xs, deadlines=[None, 1e-9, None]
            )
            ok_a = futures[0].result()
            with pytest.raises(DeadlineExceededError):
                futures[1].result()
            ok_b = futures[2].result()
        assert np.array_equal(ok_a.y, matrix.spmv(xs[0], reference=True))
        assert np.array_equal(ok_b.y, matrix.spmv(xs[2], reference=True))

    def test_member_expiring_during_spmm_stall_gets_deadline_error(
        self, smat, rng, monkeypatch
    ) -> None:
        """Regression: a member whose deadline expires between the batch
        take and the stack build must resolve DeadlineExceededError, not
        be served late.  The stall is an injected spmm latency fault on a
        fake clock: its "sleep" jumps ``time.monotonic`` forward past one
        member's budget at exactly the window the old code missed (the
        hook used to fire after the only deadline sweep)."""
        import time as _time

        from repro.serve.faults import FaultPlan, FaultRule

        real_monotonic = _time.monotonic
        offset = [0.0]
        monkeypatch.setattr(
            _time, "monotonic", lambda: real_monotonic() + offset[0]
        )

        def jump(seconds: float) -> None:
            offset[0] += seconds

        faults = FaultPlan(
            [FaultRule(site="spmm", kind="latency", latency=10.0)],
            sleep=jump,
        )
        matrix, xs = self._dyadic_case(rng, k=3)
        config = ServeConfig(workers=1, max_batch_rhs=4)
        with ServingEngine(smat, config, faults=faults) as engine:
            engine.spmv(matrix, xs[0])  # warm the plan first
            futures = engine.submit_batch(
                matrix, xs, deadlines=[None, 5.0, None]
            )
            ok_a = futures[0].result()
            with pytest.raises(DeadlineExceededError):
                futures[1].result()
            ok_b = futures[2].result()
            counters = engine.metrics.snapshot()["counters"]
        assert np.array_equal(ok_a.y, matrix.spmv(xs[0], reference=True))
        assert np.array_equal(ok_b.y, matrix.spmv(xs[2], reference=True))
        assert counters["deadline_exceeded"] == 1
        # The two survivors still ride one stacked pass.
        assert counters["spmm_requests_batched"] == 2

    def test_spmm_fault_falls_back_to_per_request_spmv(
        self, smat, rng
    ) -> None:
        matrix, xs = self._dyadic_case(rng)
        faults = FaultPlan.parse(["spmm,rate=1.0"], seed=1)
        config = ServeConfig(workers=1, max_batch_rhs=8)
        with ServingEngine(smat, config, faults=faults) as engine:
            results = [
                f.result() for f in engine.submit_batch(matrix, xs)
            ]
            counters = engine.metrics.snapshot()["counters"]
        # Every batch's SpMM was sabotaged, yet every member succeeded
        # through the sequential fallback.
        assert counters["spmm_fallbacks"] >= 1
        for x, result in zip(xs, results):
            assert np.array_equal(result.y, matrix.spmv(x, reference=True))

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_batch_rhs": 0}, {"batch_window": -0.1}],
    )
    def test_bad_config_rejected(self, kwargs) -> None:
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


# ---------------------------------------------------------------------------
# Cluster dispatcher coalescing (real spawn fleet)
# ---------------------------------------------------------------------------
class TestClusterCoalescing:
    def test_bad_cluster_config_rejected(self) -> None:
        from repro.cluster import ClusterConfig

        with pytest.raises(ValueError):
            ClusterConfig(max_batch_rhs=0)
        with pytest.raises(ValueError):
            ClusterConfig(batch_window=-1.0)

    def test_fan_in_coalesced_at_dispatch(self, smat, rng) -> None:
        from repro.cluster import ClusterConfig, ClusterDispatcher, WorkerSpec

        matrix = with_dyadic_data(
            random_csr(rng, n_rows=120, n_cols=120), rng
        )
        xs = [dyadic_operand(rng, 120) for _ in range(12)]
        spec = WorkerSpec(tuner=smat)
        config = ClusterConfig(
            workers=1, batch_window=0.1, max_batch_rhs=6
        )
        with ClusterDispatcher(spec, config) as cluster:
            cluster.spmv(matrix, xs[0])  # publish + warm the plan
            futures = [cluster.submit(matrix, x) for x in xs]
            results = [f.result(timeout=60) for f in futures]
            counters = cluster.metrics.snapshot()["counters"]
        worker = (cluster.worker_metrics() or {}).get("counters", {})
        assert counters["dispatch_batches_total"] >= 1
        assert counters["dispatch_requests_batched"] >= 6
        assert counters["operand_bytes_pickled"] == 0
        assert worker.get("spmm_batches_total", 0) >= 1
        for x, result in zip(xs, results):
            assert np.array_equal(result.y, matrix.spmv(x, reference=True))
