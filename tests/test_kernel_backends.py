"""Kernel-backend tests: registry, codegen policy, caching, serving.

Covers the pluggable backend seam end to end:

* the registry (lookup, unknown-name errors, config validation),
* the codegen backend's beat-or-keep-generic policy and its fallback on
  :class:`~repro.errors.CodegenError`,
* the source-hash compile cache — meter-proven hits, exactly one compile
  under concurrent cold builds,
* the serving engine: plans carry the compiled kernel, tier-2 value
  refresh and a re-warmed engine preserve it, and (the chaos case) a
  mid-serve ``codegen.compile`` fault degrades to the generic kernel
  without failing requests or feeding the circuit breaker.
"""

from __future__ import annotations

import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.collection import banded, generate_collection
from repro.errors import CodegenError, KernelError
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.kernels import codegen
from repro.kernels.backends import (
    DEFAULT_BACKEND,
    GenericBackend,
    KernelBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.kernels.base import find_kernel
from repro.kernels.codegen import (
    GeneratedKernel,
    codegen_stats,
    generate_kernel,
    reset_codegen_stats,
)
from repro.kernels.strategies import Strategy, strategy_set
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.machine.costmodel import codegen_overhead_units
from repro.serve import FaultPlan, FaultRule, ServeConfig, ServingEngine
from repro.tuner import SMAT
from repro.tuner.config import SmatConfig
from repro.types import FormatName


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680)
    return SMAT.train(
        generate_collection(scale=0.05, size_scale=0.3, seed=99),
        backend=backend,
    )


def _band(n: int = 400, n_diags: int = 5, seed: int = 7) -> CSRMatrix:
    return banded.banded_matrix(n, n_diags, seed=seed)


def _with_values(matrix: CSRMatrix, seed: int) -> CSRMatrix:
    """Same structure, fresh values (the tier-2 churn shape)."""
    rng = np.random.default_rng(seed)
    return CSRMatrix(
        matrix.ptr,
        matrix.indices,
        rng.standard_normal(matrix.nnz),
        matrix.shape,
    )


def _force_generated_wins(monkeypatch) -> None:
    """Pin the beat-or-keep timing race: generated always wins.

    The audit (allclose) still runs for real — only the wall-clock probe
    is stubbed, so tests assert on policy, not on scheduler noise.
    """
    monkeypatch.setattr(
        codegen,
        "_best_time",
        lambda kernel, matrix, x: (
            0.0 if isinstance(kernel, GeneratedKernel) else 1.0
        ),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtin_backends_registered(self) -> None:
        names = backend_names()
        assert DEFAULT_BACKEND in names
        assert "codegen" in names
        assert isinstance(get_backend("generic"), GenericBackend)
        assert get_backend("codegen").name == "codegen"

    def test_unknown_backend_lists_registered_names(self) -> None:
        with pytest.raises(KernelError, match="codegen"):
            get_backend("llvm")

    def test_duplicate_registration_rejected(self) -> None:
        with pytest.raises(KernelError, match="duplicate"):
            register_backend(GenericBackend())

    def test_serve_config_validates_backend(self) -> None:
        with pytest.raises(ValueError, match="kernel_backend"):
            ServeConfig(kernel_backend="llvm")

    def test_smat_config_validates_backend(self) -> None:
        with pytest.raises(ValueError, match="kernel_backend"):
            SmatConfig(kernel_backend="llvm")

    def test_generic_backend_is_identity(self, rng) -> None:
        matrix = _band()
        base = find_kernel(FormatName.CSR, strategy_set(Strategy.VECTORIZE))
        assert get_backend("generic").specialize(matrix, base) is base
        assert get_backend("generic").overhead_units(matrix) == 0.0


# ---------------------------------------------------------------------------
# Beat-or-keep policy and fallback
# ---------------------------------------------------------------------------

class TestCodegenPolicy:
    def test_specialize_returns_generated_when_it_wins(
        self, monkeypatch
    ) -> None:
        _force_generated_wins(monkeypatch)
        matrix, _ = convert(_band(), FormatName.DIA, fill_budget=None)
        base = find_kernel(FormatName.DIA, strategy_set(Strategy.VECTORIZE))
        kernel = get_backend("codegen").specialize(matrix, base)
        assert isinstance(kernel, GeneratedKernel)
        assert "codegen[" in kernel.name
        x = np.linspace(-1.0, 1.0, matrix.n_cols)
        assert np.allclose(kernel(matrix, x), base(matrix, x))

    def test_specialize_keeps_generic_when_it_loses(
        self, monkeypatch
    ) -> None:
        monkeypatch.setattr(
            codegen,
            "_best_time",
            lambda kernel, matrix, x: (
                1.0 if isinstance(kernel, GeneratedKernel) else 0.0
            ),
        )
        matrix, _ = convert(_band(), FormatName.DIA, fill_budget=None)
        base = find_kernel(FormatName.DIA, strategy_set(Strategy.VECTORIZE))
        assert get_backend("codegen").specialize(matrix, base) is base

    def test_specialize_falls_back_on_codegen_error(
        self, monkeypatch
    ) -> None:
        def refuse(matrix):
            raise CodegenError("injected: no template")

        monkeypatch.setattr(codegen.templates, "emit", refuse)
        matrix = _band()
        base = find_kernel(FormatName.CSR, strategy_set(Strategy.VECTORIZE))
        assert get_backend("codegen").specialize(matrix, base) is base

    def test_specialize_keeps_generic_on_audit_mismatch(
        self, monkeypatch
    ) -> None:
        _force_generated_wins(monkeypatch)
        matrix = _band()
        base = find_kernel(FormatName.CSR, strategy_set(Strategy.VECTORIZE))
        honest = codegen.generate_kernel

        def corrupted(m):
            kernel = honest(m)
            return replace(
                kernel, fn=lambda mm, xx: kernel.fn(mm, xx) + 1.0
            )

        monkeypatch.setattr(codegen, "generate_kernel", corrupted)
        assert get_backend("codegen").specialize(matrix, base) is base

    def test_overhead_units_match_cost_model(self) -> None:
        assert get_backend("codegen").overhead_units(_band()) == (
            codegen_overhead_units(codegen.PROBE_REPEATS)
        )


# ---------------------------------------------------------------------------
# Compile cache
# ---------------------------------------------------------------------------

class TestCompileCache:
    def test_same_structure_hits_cache(self) -> None:
        reset_codegen_stats(clear_cache=True)
        base = _band(seed=11)
        first = generate_kernel(base)
        second = generate_kernel(_with_values(base, seed=12))
        stats = codegen_stats()
        assert stats["compiles"] == 1
        assert stats["cache_hits"] == 1
        assert first.source_hash == second.source_hash
        # Aux arrays are bound per kernel, so the shared code object still
        # computes each matrix's own product.
        x = np.linspace(-1.0, 1.0, base.n_cols)
        churned = _with_values(base, seed=12)
        assert np.allclose(second(churned, x), churned.spmv(x))

    def test_different_structure_recompiles(self) -> None:
        reset_codegen_stats(clear_cache=True)
        generate_kernel(_band(n=100, n_diags=3))
        generate_kernel(_band(n=200, n_diags=5))
        stats = codegen_stats()
        assert stats["compiles"] == 2
        assert stats["cache_hits"] == 0

    def test_concurrent_cold_builds_compile_once(self) -> None:
        reset_codegen_stats(clear_cache=True)
        matrix = _band(n=300, n_diags=5, seed=23)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        kernels = [None] * n_threads
        errors = []

        def build(i: int) -> None:
            try:
                barrier.wait()
                kernels[i] = generate_kernel(matrix)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=build, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = codegen_stats()
        assert stats["compiles"] == 1
        assert stats["cache_hits"] == n_threads - 1
        assert len({k.source_hash for k in kernels}) == 1

    def test_generated_source_is_in_linecache(self) -> None:
        import linecache

        kernel = generate_kernel(_band(seed=31))
        filename = f"{codegen.GENERATED_FILE_PREFIX}{kernel.source_hash[:12]}>"
        assert "def spmv" in "".join(linecache.cache[filename][2])


# ---------------------------------------------------------------------------
# Tuner integration: codegen_units charged, serving_kernel resolution
# ---------------------------------------------------------------------------

class TestTunerIntegration:
    def test_decision_charges_codegen_units(self, smat, monkeypatch) -> None:
        _force_generated_wins(monkeypatch)
        config = replace(smat.config, kernel_backend="codegen")
        monkeypatch.setattr(smat, "config", config)
        decision = smat.decide(_band())
        assert decision.codegen_units == codegen_overhead_units(
            codegen.PROBE_REPEATS
        )
        assert decision.overhead_units >= decision.codegen_units
        if decision.compiled_kernel is not None:
            assert decision.serving_kernel is decision.compiled_kernel
            assert "codegen[" in decision.serving_kernel.name
        else:
            assert decision.serving_kernel is decision.kernel

    def test_codegen_units_survive_serialization(self, smat, monkeypatch
                                                 ) -> None:
        _force_generated_wins(monkeypatch)
        config = replace(smat.config, kernel_backend="codegen")
        monkeypatch.setattr(smat, "config", config)
        decision = smat.decide(_band())
        payload = decision.to_dict()
        assert payload["codegen_units"] == decision.codegen_units
        from repro.tuner.runtime import Decision

        restored = Decision.from_dict(payload)
        assert restored.codegen_units == decision.codegen_units
        # The compiled callable is runtime state: never serialized.
        assert restored.compiled_kernel is None

    def test_cascade_budget_refuses_unaffordable_specialization(
        self, smat, monkeypatch
    ) -> None:
        _force_generated_wins(monkeypatch)
        # A budget the decision itself fits in, but specialization does
        # not: codegen_units stays zero, the plan serves the generic
        # kernel, and the budget promise holds.
        config = replace(
            smat.config,
            kernel_backend="codegen",
            tune_budget_units=0.5,
        )
        monkeypatch.setattr(smat, "config", config)
        decision = smat.decide(_band())
        assert decision.codegen_units == 0.0
        assert decision.compiled_kernel is None
        assert decision.overhead_units <= 0.5


# ---------------------------------------------------------------------------
# Serving engine integration
# ---------------------------------------------------------------------------

def _engine(smat, **config_kwargs) -> ServingEngine:
    config = ServeConfig(
        workers=2, kernel_backend="codegen", **config_kwargs
    )
    return ServingEngine(smat, config)


class TestServingIntegration:
    def test_plans_serve_compiled_kernels(self, smat, monkeypatch) -> None:
        _force_generated_wins(monkeypatch)
        matrix = _band(seed=41)
        x = np.linspace(-1.0, 1.0, matrix.n_cols)
        with _engine(smat) as engine:
            result = engine.spmv(matrix, x)
            assert "codegen[" in result.kernel_name
            assert np.allclose(result.y, matrix.spmv(x))
            assert engine.metrics.counter("codegen_kernels").value == 1
            assert engine.metrics.counter("codegen_fallbacks").value == 0

    def test_value_refresh_preserves_compiled_kernel(
        self, smat, monkeypatch
    ) -> None:
        _force_generated_wins(monkeypatch)
        matrix = _band(seed=43)
        x = np.linspace(-1.0, 1.0, matrix.n_cols)
        with _engine(smat) as engine:
            cold = engine.spmv(matrix, x)
            assert "codegen[" in cold.kernel_name
            churned = _with_values(matrix, seed=44)
            warm = engine.spmv(churned, x)
            assert warm.refreshed
            # The tier-2 refresh swapped values in place; the compiled
            # kernel folds structure only, so it must still be serving.
            assert warm.kernel_name == cold.kernel_name
            assert np.allclose(warm.y, churned.spmv(x))

    def test_rewarmed_engine_reuses_compiled_source(
        self, smat, monkeypatch
    ) -> None:
        _force_generated_wins(monkeypatch)
        matrix = _band(seed=47)
        x = np.linspace(-1.0, 1.0, matrix.n_cols)
        with _engine(smat) as engine:
            first = engine.spmv(matrix, x)
        assert "codegen[" in first.kernel_name
        before = codegen_stats()
        # A fresh engine (a restarted worker re-warming the same corpus)
        # regenerates the kernel from structure: the source hash matches,
        # so the compile cache serves it without recompiling.
        with _engine(smat) as rewarmed:
            second = rewarmed.spmv(matrix, x)
        after = codegen_stats()
        assert second.kernel_name == first.kernel_name
        assert after["compiles"] == before["compiles"]
        assert after["cache_hits"] > before["cache_hits"]

    def test_compile_fault_degrades_to_generic_not_breaker(
        self, smat, monkeypatch
    ) -> None:
        """Satellite chaos case: a mid-serve codegen.compile fault must
        cost nothing but the specialization — requests keep succeeding on
        the generic kernel, nothing is degraded, and the circuit breaker
        never sees the failure."""
        _force_generated_wins(monkeypatch)
        faults = FaultPlan(
            [FaultRule(site="codegen.compile", kind="fatal", rate=1.0)]
        )
        matrix = _band(seed=53)
        x = np.linspace(-1.0, 1.0, matrix.n_cols)
        config = ServeConfig(workers=2, kernel_backend="codegen")
        with ServingEngine(smat, config, faults=faults) as engine:
            churned = _with_values(matrix, 54)
            cases = [(matrix, engine.spmv(matrix, x)) for _ in range(6)]
            cases.append((churned, engine.spmv(churned, x)))
            for served, result in cases:
                assert not result.degraded
                assert "codegen[" not in result.kernel_name
                assert np.allclose(result.y, served.spmv(x))
            assert engine.metrics.counter("codegen_fallbacks").value >= 1
            assert engine.metrics.counter("codegen_kernels").value == 0
            assert engine.metrics.counter("breaker_opened").value == 0
            assert engine.metrics.counter("requests_failed").value == 0
            assert engine.metrics.counter("degraded_requests").value == 0
        assert faults.counts()["codegen.compile"]["injected"] >= 1


# ---------------------------------------------------------------------------
# Backend interface contract
# ---------------------------------------------------------------------------

class TestBackendInterface:
    def test_base_class_contract(self) -> None:
        class NoopBackend(KernelBackend):
            name = "test-noop"

        backend = NoopBackend()
        matrix = _band()
        base = find_kernel(FormatName.CSR, strategy_set(Strategy.VECTORIZE))
        # specialize is the one method an implementation must provide;
        # overhead defaults to free.
        with pytest.raises(NotImplementedError):
            backend.specialize(matrix, base)
        assert backend.overhead_units(matrix) == 0.0
