"""Serving-engine tests: correctness, amortization, batching, backpressure,
lifecycle, and the acceptance stress test (4 threads x 200+ mixed requests
over 20+ distinct matrices)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.collection import generate_collection
from repro.errors import BackpressureError, ServeError
from repro.features.extract import EXTRACTION_EVENTS
from repro.formats.convert import CONVERSION_EVENTS
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import (
    ServeConfig,
    ServingEngine,
    build_matrix_pool,
    fingerprint,
    popularity_schedule,
    replay,
)
from repro.serve.engine import _Request, _SubmissionQueue
from repro.tuner import SMAT, OnlineSmat, SmatConfig
from repro.types import Precision

from tests.conftest import random_csr


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


@pytest.fixture()
def engine(smat):
    with ServingEngine(smat, ServeConfig(workers=2)) as running:
        yield running


class TestCorrectness:
    def test_result_is_bitwise_identical_to_direct_spmv(
        self, smat, engine, rng
    ) -> None:
        matrix = random_csr(rng, n_rows=80, n_cols=80)
        x = rng.standard_normal(80)
        direct, _ = smat.spmv(matrix, x)
        served = engine.spmv(matrix, x)
        assert np.array_equal(served.y, direct)
        # And again through the cached plan: still bitwise identical.
        assert np.array_equal(engine.spmv(matrix, x).y, direct)

    def test_result_metadata(self, engine, rng) -> None:
        matrix = random_csr(rng, n_rows=60, n_cols=50)
        x = np.ones(50)
        result = engine.spmv(matrix, x)
        assert result.fingerprint == fingerprint(matrix)
        assert result.kernel_name
        assert not result.cache_hit
        assert result.total_seconds >= 0.0
        assert engine.spmv(matrix, x).cache_hit

    def test_spmv_many(self, engine, rng) -> None:
        pairs = []
        for i in range(6):
            matrix = random_csr(rng, n_rows=40 + i, n_cols=40 + i)
            pairs.append((matrix, np.ones(matrix.n_cols)))
        results = engine.spmv_many(pairs)
        assert len(results) == 6
        for (matrix, x), result in zip(pairs, results):
            np.testing.assert_allclose(
                result.y, matrix.spmv(x), atol=1e-9
            )


class TestAmortization:
    """Acceptance criterion: a cache hit performs no feature extraction
    and no format conversion."""

    def test_cache_hit_skips_extraction_and_conversion(
        self, engine, rng
    ) -> None:
        matrix = random_csr(rng, n_rows=70, n_cols=70)
        x = np.ones(70)
        engine.spmv(matrix, x)  # cold: builds and caches the plan

        extractions = EXTRACTION_EVENTS.count
        conversions = CONVERSION_EVENTS.count
        for _ in range(5):
            result = engine.spmv(matrix, x)
            assert result.cache_hit
        assert EXTRACTION_EVENTS.delta_since(extractions) == 0
        assert CONVERSION_EVENTS.delta_since(conversions) == 0
        assert engine.metrics.counter("cache_hits").value >= 5
        assert engine.metrics.counter("plans_built").value == 1

    def test_invalidate_forces_rebuild(self, engine, rng) -> None:
        matrix = random_csr(rng, n_rows=50, n_cols=50)
        x = np.ones(50)
        engine.spmv(matrix, x)
        assert engine.invalidate(matrix)
        assert not engine.invalidate(matrix)
        engine.spmv(matrix, x)
        assert engine.metrics.counter("plans_built").value == 2
        assert engine.metrics.counter("plans_invalidated").value == 1


class TestBatching:
    def test_take_batch_coalesces_same_fingerprint(self, rng) -> None:
        from concurrent.futures import Future

        a = random_csr(rng, n_rows=30, n_cols=30)
        b = random_csr(rng, n_rows=31, n_cols=31)
        fa, fb = fingerprint(a), fingerprint(b)
        queue = _SubmissionQueue(capacity=16)
        order = [fa, fb, fa, fb, fa]
        for i, (key, matrix) in enumerate(
            zip(order, [a, b, a, b, a])
        ):
            queue.put(
                _Request(key, matrix, np.full(matrix.n_cols, i), Future()),
                timeout=None,
            )
        batch = queue.take_batch(max_batch=8)
        assert [r.key for r in batch] == [fa, fa, fa]
        # FIFO preserved within the batch and for the leftovers.
        assert [int(r.x[0]) for r in batch] == [0, 2, 4]
        rest = queue.take_batch(max_batch=8)
        assert [int(r.x[0]) for r in rest] == [1, 3]

    def test_take_batch_respects_max_batch(self, rng) -> None:
        from concurrent.futures import Future

        a = random_csr(rng, n_rows=30, n_cols=30)
        fa = fingerprint(a)
        queue = _SubmissionQueue(capacity=16)
        for i in range(5):
            queue.put(
                _Request(fa, a, np.full(a.n_cols, i), Future()),
                timeout=None,
            )
        assert len(queue.take_batch(max_batch=2)) == 2
        assert len(queue) == 3

    def test_batched_requests_share_one_plan_lookup(self, smat, rng) -> None:
        """Stall the worker so requests pile up, then confirm one plan
        resolution served the whole same-fingerprint batch."""
        gate = threading.Event()

        class GatedTuner:
            def __init__(self, inner):
                self.inner = inner

            def decide(self, matrix):
                gate.wait(timeout=10)
                return self.inner.decide(matrix)

        matrix = random_csr(rng, n_rows=40, n_cols=40)
        config = ServeConfig(workers=1, queue_capacity=16)
        with ServingEngine(GatedTuner(smat), config) as engine:
            futures = [
                engine.submit(matrix, np.full(40, float(i)))
                for i in range(6)
            ]
            gate.set()
            results = [f.result(timeout=30) for f in futures]
        # First request resolves the plan; the rest ride the same batch
        # (cache_hit True) without their own plan resolution.
        assert sum(not r.cache_hit for r in results) == 1
        assert engine.metrics.counter("plans_built").value == 1
        assert engine.metrics.counter("requests_batched").value >= 1


class TestBackpressure:
    def test_bounded_queue_rejects_when_full(self, smat, rng) -> None:
        gate = threading.Event()

        class GatedTuner:
            def __init__(self, inner):
                self.inner = inner

            def decide(self, matrix):
                gate.wait(timeout=10)
                return self.inner.decide(matrix)

        # Distinct fingerprints so the stalled batch cannot absorb them.
        matrices = [random_csr(rng, n_rows=30 + i) for i in range(4)]
        config = ServeConfig(workers=1, queue_capacity=1)
        with ServingEngine(GatedTuner(smat), config) as engine:
            first = engine.submit(matrices[0], np.ones(matrices[0].n_cols))
            # Give the worker a moment to pick up the first request.
            deadline = time.time() + 5
            while len(engine._queue) > 0 and time.time() < deadline:
                time.sleep(0.005)
            second = engine.submit(
                matrices[1], np.ones(matrices[1].n_cols)
            )  # fills the queue
            with pytest.raises(BackpressureError):
                engine.submit(
                    matrices[2], np.ones(matrices[2].n_cols), timeout=0.05
                )
            assert engine.metrics.counter("requests_rejected").value == 1
            gate.set()
            first.result(timeout=30)
            second.result(timeout=30)


class TestLifecycle:
    def test_submit_requires_running_engine(self, smat, rng) -> None:
        engine = ServingEngine(smat)
        matrix = random_csr(rng)
        with pytest.raises(ServeError, match="not running"):
            engine.submit(matrix, np.ones(matrix.n_cols))

    def test_no_restart_after_stop(self, smat) -> None:
        engine = ServingEngine(smat).start()
        engine.stop()
        with pytest.raises(ServeError, match="restart"):
            engine.start()

    def test_stop_drains_backlog(self, smat, rng) -> None:
        matrix = random_csr(rng, n_rows=45, n_cols=45)
        engine = ServingEngine(smat, ServeConfig(workers=1)).start()
        futures = [
            engine.submit(matrix, np.full(45, float(i))) for i in range(8)
        ]
        engine.stop(drain=True)
        for future in futures:
            assert future.result(timeout=5).y is not None

    def test_tuner_must_expose_decide(self) -> None:
        with pytest.raises(ServeError, match="decide"):
            ServingEngine(object())

    def test_config_validation(self) -> None:
        with pytest.raises(ValueError, match="workers"):
            ServeConfig(workers=0)
        with pytest.raises(ValueError, match="queue_capacity"):
            ServeConfig(queue_capacity=0)
        with pytest.raises(ValueError, match="max_batch"):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError, match="cache_entries"):
            ServeConfig(cache_entries=0)
        with pytest.raises(ValueError, match="cache_bytes"):
            ServeConfig(cache_bytes=-1)
        with pytest.raises(ValueError, match="submit_timeout"):
            ServeConfig(submit_timeout=-0.5)


class TestErrorIsolation:
    def test_bad_operand_rejected_at_submit(self, engine, rng) -> None:
        """A wrong-length vector fails its own request with a clear
        ValueError at submit time — it never reaches a worker, so it can
        never take a coalesced batch down with it."""
        matrix = random_csr(rng, n_rows=55, n_cols=55)
        good = np.ones(55)
        engine.spmv(matrix, good)
        with pytest.raises(ValueError, match="operand vector"):
            engine.submit(matrix, np.ones(7))  # wrong operand length
        with pytest.raises(ValueError, match="operand vector"):
            engine.submit(matrix, np.ones((55, 1)))  # wrong rank
        assert engine.metrics.counter("requests_invalid").value == 2
        # Nothing was enqueued and the engine keeps serving.
        assert engine.metrics.counter("requests_failed").value == 0
        assert engine.spmv(matrix, good).cache_hit


class TestStress:
    """The ISSUE acceptance stress test: >= 4 client threads, >= 200 mixed
    requests over >= 20 distinct matrices; zero errors, > 80% plan-cache
    hit rate, bitwise-identical results to direct SMAT.spmv calls."""

    def test_concurrent_mixed_workload(self, smat) -> None:
        pool = build_matrix_pool(20, seed=11, size_scale=0.5)
        schedule = popularity_schedule(len(pool), 240, seed=12)
        from repro.serve.workload import _operands_for

        operands = _operands_for(pool, seed=99)
        expected = {}
        for matrix, x in zip(pool, operands):
            y, _ = smat.spmv(matrix, x)
            expected[fingerprint(matrix)] = y

        extractions = EXTRACTION_EVENTS.count
        conversions = CONVERSION_EVENTS.count
        config = ServeConfig(workers=4, cache_entries=32)
        with ServingEngine(smat, config) as engine:
            report = replay(
                engine, pool, schedule, clients=4, seed=99, verify=False
            )
            stats = engine.cache.stats()
            metrics = engine.metrics.snapshot()["counters"]

        assert not report.errors
        assert report.mismatches == 0
        assert report.requests == 240
        for result in report.results:
            assert np.array_equal(result.y, expected[result.fingerprint])

        assert stats["hit_rate"] > 0.8
        # Concurrent workers may each record a miss for the same cold
        # fingerprint before single-flight resolves it; plan builds stay
        # exactly one per distinct matrix regardless.
        assert len(pool) <= stats["misses"] <= len(pool) + 4
        assert metrics["plans_built"] == len(pool)
        assert metrics["requests_served"] == 240
        # Tuning work scaled with distinct matrices, not with requests:
        # the decision pipeline ran at most a few extraction/conversion
        # passes per plan build, regardless of the 240 requests.
        assert EXTRACTION_EVENTS.delta_since(extractions) <= 3 * len(pool)
        assert CONVERSION_EVENTS.delta_since(conversions) <= 5 * len(pool)


class TestOnlineIntegration:
    def test_engine_feeds_online_smat(self, smat) -> None:
        forced = SMAT(
            smat.model, smat.kernels, smat.backend,
            SmatConfig(always_measure=True),
        )
        online = OnlineSmat(forced, retrain_every=1000)
        rng = np.random.default_rng(5)
        matrices = [
            random_csr(rng, n_rows=40 + i, n_cols=40 + i) for i in range(6)
        ]
        with ServingEngine(online, ServeConfig(workers=2)) as engine:
            engine.spmv_many(
                [(m, np.ones(m.n_cols)) for m in matrices]
            )
        # Every distinct matrix fell back (always_measure) exactly once —
        # cached plans never re-measure.
        assert online.observations == len(matrices)
        assert engine.metrics.counter("fallback_decisions").value == len(
            matrices
        )


class TestPlanBuildMetrics:
    """Satellite: only cache misses pay (and record) plan-build latency."""

    def test_miss_populates_plan_build_histogram(self, engine, rng) -> None:
        histogram = engine.metrics.histogram("plan_build_seconds")
        assert histogram.count == 0

        matrix = random_csr(rng, n_rows=60, n_cols=60)
        x = np.ones(60)
        cold = engine.spmv(matrix, x)
        assert not cold.cache_hit
        assert histogram.count == 1
        assert histogram.sum > 0.0

        for _ in range(3):
            assert engine.spmv(matrix, x).cache_hit
        assert histogram.count == 1  # hits never touch the build path

        other = random_csr(rng, n_rows=61, n_cols=61)
        engine.spmv(other, np.ones(61))
        assert histogram.count == 2

    def test_plan_build_latency_in_report(self, engine, rng) -> None:
        matrix = random_csr(rng, n_rows=40, n_cols=40)
        engine.spmv(matrix, np.ones(40))
        report = engine.metrics.report()
        assert "plan_build_seconds" in report
