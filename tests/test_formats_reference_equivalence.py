"""Loop oracles vs vectorized converters: bitwise-identical on ~50 matrices.

The tentpole vectorization is only safe if the flat-index converters
produce *exactly* the arrays the per-row loops produced — same element
order, same padding, same ``ConversionCost.touched_slots`` — across the
structural corner cases (banded, power-law, block, empty rows, single
row/column, all-zero). This file sweeps a generated corpus and compares
every converter against its retained loop reference with
``np.array_equal`` (no tolerances: conversion moves values, it must never
change them).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import banded, graphs, random_sparse
from repro.features.extract import extract_structure_features
from repro.formats import reference
from repro.formats.convert import (
    csr_to_bcsr,
    csr_to_dia,
    csr_to_ell,
    csr_to_hyb,
    csr_to_sky,
    sky_to_csr,
)
from repro.formats.csr import CSRMatrix


def _dense_cases():
    """Hand-built structural corner cases as dense arrays."""
    rng = np.random.default_rng(99)
    empty_rows = np.zeros((12, 12))
    empty_rows[::3, 2] = 1.5  # two of three rows empty
    blocks = np.kron(
        (rng.random((5, 5)) > 0.6).astype(float), np.ones((4, 4))
    )
    single_row = np.zeros((1, 9))
    single_row[0, [0, 4, 8]] = [1.0, -2.0, 3.0]
    single_col = np.zeros((9, 1))
    single_col[[1, 5], 0] = [4.0, 5.0]
    lower_tri = np.tril(rng.random((10, 10)))
    return {
        "empty_rows": empty_rows,
        "blocks": blocks,
        "single_row": single_row,
        "single_col": single_col,
        "all_zero": np.zeros((8, 8)),
        "one_by_one": np.array([[7.0]]),
        "dense_small": rng.random((6, 6)),
        "lower_tri": lower_tri,
    }


def _corpus():
    """~50 matrices spanning the generator families + corner cases."""
    cases = []
    for i, (name, dense) in enumerate(_dense_cases().items()):
        cases.append((name, CSRMatrix.from_dense(dense)))
    for seed in range(8):
        cases.append(
            (f"banded_{seed}", banded.banded_matrix(40 + 17 * seed,
                                                    3 + 2 * (seed % 3),
                                                    seed=seed))
        )
    for seed in range(8):
        cases.append(
            (f"powerlaw_{seed}",
             graphs.power_law_graph(60 + 23 * seed, exponent=2.0 + 0.1 * seed,
                                    seed=seed))
        )
    for seed in range(8):
        cases.append(
            (f"uniform_{seed}",
             random_sparse.uniform_random(30 + 11 * seed, 30 + 11 * seed,
                                          2.0 + seed, seed=seed))
        )
    for seed in range(6):
        occupancy = 0.3 + 0.1 * seed
        cases.append(
            (f"sparse_band_{seed}",
             banded.banded_matrix(50 + 9 * seed, 5, seed=seed,
                                  occupancy=occupancy))
        )
    for seed in range(6):
        cases.append(
            (f"bipartite_{seed}",
             graphs.uniform_bipartite(40 + 13 * seed, 50 + 7 * seed,
                                      3, seed=seed))
        )
    for seed in range(6):
        dense = (np.random.default_rng(seed).random((25, 25)) > 0.85)
        cases.append((f"random_{seed}", CSRMatrix.from_dense(dense * 1.0)))
    return cases


CORPUS = _corpus()
assert len(CORPUS) >= 42


def _assert_cost_equal(got, want, label: str) -> None:
    assert got.source == want.source, label
    assert got.target == want.target, label
    assert got.nnz == want.nnz, label
    assert got.touched_slots == want.touched_slots, label


@pytest.mark.parametrize(
    "name,matrix", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_ell_matches_loop(name, matrix) -> None:
    vec, vec_cost = csr_to_ell(matrix, fill_budget=None)
    loop, loop_cost = reference.csr_to_ell_loop(matrix, fill_budget=None)
    assert vec.max_row_degree == loop.max_row_degree
    assert np.array_equal(vec.indices, loop.indices)
    assert np.array_equal(vec.data, loop.data)
    _assert_cost_equal(vec_cost, loop_cost, name)


@pytest.mark.parametrize(
    "name,matrix", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_dia_matches_loop(name, matrix) -> None:
    vec, vec_cost = csr_to_dia(matrix, fill_budget=None)
    loop, loop_cost = reference.csr_to_dia_loop(matrix, fill_budget=None)
    assert np.array_equal(vec.offsets, loop.offsets)
    assert np.array_equal(vec.data, loop.data)
    _assert_cost_equal(vec_cost, loop_cost, name)


@pytest.mark.parametrize(
    "name,matrix", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_bcsr_matches_loop(name, matrix) -> None:
    vec, vec_cost = csr_to_bcsr(matrix, fill_budget=None)
    loop, loop_cost = reference.csr_to_bcsr_loop(matrix, fill_budget=None)
    assert np.array_equal(vec.block_ptr, loop.block_ptr)
    assert np.array_equal(vec.block_cols, loop.block_cols)
    assert np.array_equal(vec.blocks, loop.blocks)
    assert vec.block_shape == loop.block_shape
    _assert_cost_equal(vec_cost, loop_cost, name)


@pytest.mark.parametrize(
    "name,matrix",
    [(n, m) for n, m in CORPUS if m.n_rows == m.n_cols],
    ids=[n for n, m in CORPUS if m.n_rows == m.n_cols],
)
def test_sky_roundtrip_matches_loop(name, matrix) -> None:
    vec, vec_cost = csr_to_sky(matrix, fill_budget=None)
    loop, loop_cost = reference.csr_to_sky_loop(matrix, fill_budget=None)
    assert np.array_equal(vec.pointers, loop.pointers)
    assert np.array_equal(vec.profile, loop.profile)
    assert (vec.upper is None) == (loop.upper is None)
    if vec.upper is not None:
        assert np.array_equal(vec.upper.ptr, loop.upper.ptr)
        assert np.array_equal(vec.upper.indices, loop.upper.indices)
        assert np.array_equal(vec.upper.data, loop.upper.data)
    _assert_cost_equal(vec_cost, loop_cost, name)

    back_vec, back_vec_cost = sky_to_csr(vec)
    back_loop, back_loop_cost = reference.sky_to_csr_loop(loop)
    assert np.array_equal(back_vec.ptr, back_loop.ptr)
    assert np.array_equal(back_vec.indices, back_loop.indices)
    assert np.array_equal(back_vec.data, back_loop.data)
    _assert_cost_equal(back_vec_cost, back_loop_cost, name)


@pytest.mark.parametrize(
    "name,matrix", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_hyb_matches_loop(name, matrix) -> None:
    vec, vec_cost = csr_to_hyb(matrix)
    loop, loop_cost = reference.csr_to_hyb_loop(matrix)
    assert vec.ell_part.max_row_degree == loop.ell_part.max_row_degree
    assert np.array_equal(vec.ell_part.indices, loop.ell_part.indices)
    assert np.array_equal(vec.ell_part.data, loop.ell_part.data)
    assert np.array_equal(vec.coo_part.rows, loop.coo_part.rows)
    assert np.array_equal(vec.coo_part.cols, loop.coo_part.cols)
    assert np.array_equal(vec.coo_part.data, loop.coo_part.data)
    _assert_cost_equal(vec_cost, loop_cost, name)


@pytest.mark.parametrize(
    "name,matrix", CORPUS, ids=[name for name, _ in CORPUS]
)
def test_structure_features_match_loop(name, matrix) -> None:
    vec = extract_structure_features(matrix)
    loop = reference.extract_structure_features_loop(matrix)
    assert set(vec) == set(loop), name
    for key in vec:
        assert vec[key] == pytest.approx(loop[key], abs=0.0), (name, key)


def test_hyb_all_empty_rows_regression() -> None:
    """Satellite: the 67th-percentile width heuristic on a matrix with no
    stored entries must not warn or produce NaN (np.percentile on an empty
    degrees array did, before the guard)."""
    matrix = CSRMatrix.from_dense(np.zeros((16, 16)))
    with np.errstate(all="raise"):
        hyb, cost = csr_to_hyb(matrix, ell_width=None)
    assert hyb.ell_part.max_row_degree == 0
    assert hyb.coo_part.nnz == 0
    assert cost.nnz == 0
    loop, loop_cost = reference.csr_to_hyb_loop(matrix, ell_width=None)
    assert loop.ell_part.max_row_degree == 0
    assert cost.touched_slots == loop_cost.touched_slots
