"""Serving under structure churn: plan migration policies and the
fingerprint re-mint guarantee.

The contract under test: a structure delta retires the pre-delta
fingerprint unconditionally — a mutated matrix can *never* hit its stale
plan in either cache tier — and the resident plan migrates by the
cheapest policy the delta admits (patch in place, refresh the operand,
or full retune).  The streaming scenario at the bottom is the workload
the whole delta path exists for: one evolving power-law graph serving
SpMV traffic while its edge set churns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import generate_collection
from repro.collection.banded import banded_matrix
from repro.features.incremental import DeltaFeatures
from repro.formats.csr import CSRMatrix
from repro.formats.delta import StructureDelta, apply_delta
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import ServeConfig, ServingEngine, fingerprint
from repro.serve.workload import replay_structure_churn
from repro.tuner import SMAT
from repro.types import INDEX_DTYPE, Precision

from tests.conftest import random_csr


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


@pytest.fixture()
def engine(smat):
    with ServingEngine(smat, ServeConfig(workers=2)) as running:
        yield running


def _small_delta(matrix: CSRMatrix, rng: np.random.Generator) -> StructureDelta:
    """A few edits — far below ``delta_patch_max_ratio`` of nnz."""
    degrees = matrix.row_degrees()
    row = int(np.argmax(degrees))
    start = int(matrix.ptr[row])
    col = int(matrix.indices[start])
    dense_row = matrix.to_dense()[row]
    holes = np.flatnonzero(dense_row == 0.0)
    return StructureDelta(
        insert_rows=np.array([row], dtype=INDEX_DTYPE),
        insert_cols=np.array([int(holes[0])], dtype=INDEX_DTYPE),
        insert_vals=rng.standard_normal(1),
        delete_rows=np.array([row], dtype=INDEX_DTYPE),
        delete_cols=np.array([col], dtype=INDEX_DTYPE),
    )


def _big_delta(matrix: CSRMatrix, rng: np.random.Generator) -> StructureDelta:
    """Structural churn well past the patch ceiling (> nnz / 4 inserts)."""
    dense = matrix.to_dense()
    holes = np.argwhere(dense == 0.0)
    count = min(matrix.nnz // 2 + 2, holes.shape[0])
    picks = holes[rng.choice(holes.shape[0], size=count, replace=False)]
    return StructureDelta(
        insert_rows=picks[:, 0].astype(INDEX_DTYPE),
        insert_cols=picks[:, 1].astype(INDEX_DTYPE),
        insert_vals=rng.standard_normal(count),
    )


class TestMigrationPolicies:
    def test_small_delta_avoids_full_retune(self, engine, rng) -> None:
        matrix = banded_matrix(400, 5, seed=3)
        x = rng.standard_normal(matrix.n_cols)
        engine.spmv(matrix, x)  # make the plan resident

        features = DeltaFeatures(matrix)
        outcome = engine.apply_structure_delta(
            matrix, _small_delta(matrix, rng), features=features
        )
        assert outcome.policy in ("patch", "refresh")
        # Maintained features answered the re-decision — no extraction.
        assert outcome.redecision_stage == "delta"
        assert outcome.old_format is not None
        assert outcome.delta_ratio <= engine.config.delta_patch_max_ratio

        counters = engine.metrics.snapshot()["counters"]
        assert counters["deltas_applied"] == 1
        assert (
            counters["delta_patches"] + counters["delta_refreshes"] == 1
        )
        assert counters["delta_retunes"] == 0

        # The migrated plan serves the post-delta structure correctly.
        served = engine.spmv(outcome.matrix, x)
        assert np.allclose(
            served.y, outcome.matrix.spmv(x, reference=True), atol=1e-9
        )

    def test_big_delta_forces_retune(self, engine, rng) -> None:
        matrix = random_csr(rng, n_rows=90, n_cols=90)
        x = rng.standard_normal(90)
        engine.spmv(matrix, x)

        outcome = engine.apply_structure_delta(matrix, _big_delta(matrix, rng))
        assert outcome.policy == "retune"
        assert outcome.redecision_stage is None
        assert outcome.delta_ratio > engine.config.delta_patch_max_ratio
        counters = engine.metrics.snapshot()["counters"]
        assert counters["delta_retunes"] == 1

        served = engine.spmv(outcome.matrix, x)
        assert np.allclose(
            served.y, outcome.matrix.spmv(x, reference=True), atol=1e-9
        )

    def test_unserved_matrix_retunes(self, engine, rng) -> None:
        # No resident plan: nothing to migrate, however small the delta.
        matrix = banded_matrix(300, 5, seed=4)
        outcome = engine.apply_structure_delta(
            matrix, _small_delta(matrix, rng)
        )
        assert outcome.policy == "retune"
        assert outcome.old_format is None

    def test_delta_ratio_reports_structural_edits(self, engine, rng) -> None:
        matrix = banded_matrix(300, 5, seed=5)
        engine.spmv(matrix, rng.standard_normal(matrix.n_cols))
        delta = _small_delta(matrix, rng)
        _, effect = apply_delta(matrix, delta)
        outcome = engine.apply_structure_delta(matrix, delta)
        assert outcome.delta_ratio == effect.structural_size / matrix.nnz

    def test_negative_patch_ceiling_rejected(self) -> None:
        with pytest.raises(ValueError):
            ServeConfig(delta_patch_max_ratio=-0.1)


class TestFingerprintRemint:
    def test_delta_retires_both_cache_tiers(self, engine, rng) -> None:
        """The satellite-1 audit, API path: after a delta the old
        fingerprint and structure key are dead — both keys are re-minted
        and the stale plan is invalidated."""
        matrix = banded_matrix(400, 5, seed=6)
        x = rng.standard_normal(matrix.n_cols)
        engine.spmv(matrix, x)
        old_key = fingerprint(matrix)

        outcome = engine.apply_structure_delta(
            matrix, _small_delta(matrix, rng), features=DeltaFeatures(matrix)
        )
        assert outcome.old_fingerprint == old_key
        assert outcome.fingerprint != old_key
        assert outcome.fingerprint.structure_key != old_key.structure_key
        counters = engine.metrics.snapshot()["counters"]
        assert counters["plans_invalidated"] == 1

        # Serving the post-delta matrix hits the *migrated* plan (no new
        # build) and the product reflects the post-delta structure.
        built_before = engine.metrics.counter("plans_built").value
        served = engine.spmv(outcome.matrix, x)
        assert engine.metrics.counter("plans_built").value == built_before
        assert np.allclose(
            served.y, outcome.matrix.spmv(x, reference=True), atol=1e-9
        )

    def test_inplace_mutation_never_hits_stale_plan(self, engine, rng) -> None:
        """The satellite-1 regression, hostile path: a caller that edits
        ``matrix.indices`` behind the engine's back still can't be served
        the pre-delta plan — the fingerprint digests the index array, so
        the mutated matrix misses tier 1 *and* tier 2 and gets a fresh
        decision."""
        dense = np.diag(np.arange(1.0, 41.0))
        matrix = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(40)
        stale = engine.spmv(matrix, x)
        built_before = engine.metrics.counter("plans_built").value
        structure_hits_before = engine.metrics.counter(
            "structure_hits"
        ).value

        # Move row 0's only entry from column 0 to column 1 (stays
        # canonical: the row is a single sorted index).
        matrix.indices[0] = 1
        fresh = engine.spmv(matrix, x)

        assert engine.metrics.counter("plans_built").value == built_before + 1
        assert (
            engine.metrics.counter("structure_hits").value
            == structure_hits_before
        )
        expected = matrix.spmv(x, reference=True)
        assert np.allclose(fresh.y, expected, atol=1e-9)
        # And the stale product would have been wrong — the miss mattered.
        assert not np.allclose(stale.y, expected, atol=1e-9)


class TestStructureChurnReplay:
    def test_evolving_graph_serves_clean_through_churn(self, engine) -> None:
        report = replay_structure_churn(
            engine, nodes=150, steps=5, serves_per_step=3, seed=11
        )
        assert report.errors == []
        assert report.mismatches == 0
        assert len(report.results) == 15
        assert len(report.deltas) == 4
        # The fast paths must land — an all-retune run means the delta
        # machinery never engaged (exactly what the CI replay gates on).
        assert report.delta_hits >= 1
        assert sum(report.policy_counts.values()) == len(report.deltas)
        counters = engine.metrics.snapshot()["counters"]
        assert counters["deltas_applied"] == len(report.deltas)
        # Every delta minted a fresh fingerprint.
        keys = [outcome.fingerprint for outcome in report.deltas]
        assert len(set(keys)) == len(keys)

    def test_replay_validates_arguments(self, engine) -> None:
        with pytest.raises(ValueError):
            replay_structure_churn(engine, steps=0)
        with pytest.raises(ValueError):
            replay_structure_churn(engine, delta_fraction=0.0)
