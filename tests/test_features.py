"""Feature-extraction tests (Table 2 parameters)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.features import (
    FeatureVector,
    LazyFeatures,
    extract_features,
    extract_structure_features,
)
from repro.features.powerlaw import estimate_power_law_exponent, is_power_law
from repro.formats import CSRMatrix


def banded_matrix(n: int = 100, offsets=(-1, 0, 1)) -> CSRMatrix:
    dense = np.zeros((n, n))
    for k in offsets:
        idx = np.arange(max(0, -k), min(n, n - k))
        dense[idx, idx + k] = 1.0
    return CSRMatrix.from_dense(dense)


class TestBasicParameters:
    def test_dimensions_and_counts(self, paper_csr) -> None:
        fv = extract_features(paper_csr)
        assert (fv.m, fv.n, fv.nnz) == (4, 4, 9)
        assert fv.aver_rd == pytest.approx(9 / 4)
        assert fv.max_rd == 3

    def test_var_rd_formula(self, paper_csr) -> None:
        # Row degrees [2, 2, 3, 2], mean 2.25.
        fv = extract_features(paper_csr)
        expected = np.mean((np.array([2, 2, 3, 2]) - 2.25) ** 2)
        assert fv.var_rd == pytest.approx(expected)

    def test_uniform_rows_zero_variance(self) -> None:
        fv = extract_features(banded_matrix(50, offsets=(0,)))
        assert fv.var_rd == 0.0
        assert fv.max_rd == 1


class TestDiagonalParameters:
    def test_tridiagonal_census(self) -> None:
        fv = extract_features(banded_matrix(64))
        assert fv.ndiags == 3
        assert fv.ntdiags_ratio == 1.0
        # 3n - 2 nonzeros over 3n slots.
        assert fv.er_dia == pytest.approx((3 * 64 - 2) / (3 * 64))

    def test_scattered_matrix_has_many_false_diagonals(self, rng) -> None:
        n = 60
        dense = (rng.random((n, n)) < 0.02).astype(float)
        csr = CSRMatrix.from_dense(dense)
        if csr.nnz == 0:
            pytest.skip("degenerate draw")
        fv = extract_features(csr)
        assert fv.ndiags > 10
        assert fv.ntdiags_ratio < 0.2
        assert fv.er_dia < 0.2

    def test_paper_example_t2d_q9_style_record(self) -> None:
        # A 9-point stencil Laplacian: 9 diagonals, all "true", like the
        # paper's t2d_q9 record {9801, 9801, 9, 1.0, ..., 0.99, 0.99, inf}.
        n = 31
        size = n * n
        dense = np.zeros((size, size))
        for k in (-n - 1, -n, -n + 1, -1, 0, 1, n - 1, n, n + 1):
            idx = np.arange(max(0, -k), min(size, size - k))
            dense[idx, idx + k] = 1.0
        fv = extract_features(CSRMatrix.from_dense(dense))
        assert fv.ndiags == 9
        assert fv.ntdiags_ratio == 1.0
        assert fv.er_dia > 0.9
        assert not fv.is_finite("r")


class TestFillRatios:
    def test_er_ell_balanced(self) -> None:
        fv = extract_features(banded_matrix(40))
        assert fv.er_ell == pytest.approx(fv.nnz / (3 * 40))

    def test_er_ell_skewed_by_heavy_row(self) -> None:
        dense = np.eye(50)
        dense[0, :] = 1.0
        fv = extract_features(CSRMatrix.from_dense(dense))
        assert fv.max_rd == 50
        assert fv.er_ell < 0.05

    def test_empty_matrix_defaults(self) -> None:
        csr = CSRMatrix(
            ptr=np.zeros(5, dtype=np.int64), indices=[], data=np.zeros(0),
            shape=(4, 4),
        )
        fv = extract_features(csr)
        assert fv.nnz == 0
        assert fv.er_dia == 1.0
        assert fv.er_ell == 1.0
        assert fv.ndiags == 0


class TestPowerLaw:
    def test_power_law_degrees_detected(self, rng) -> None:
        # Sample degrees from a discrete power law with exponent ~2.2.
        k = np.arange(1, 200)
        p = k ** -2.2
        degrees = rng.choice(k, size=20000, p=p / p.sum())
        r = estimate_power_law_exponent(degrees)
        assert 1.5 < r < 3.0
        assert is_power_law(r)

    def test_uniform_degrees_not_power_law(self) -> None:
        r = estimate_power_law_exponent(np.full(1000, 7))
        assert math.isinf(r)

    def test_too_few_distinct_degrees(self) -> None:
        r = estimate_power_law_exponent(np.array([1, 2, 1, 2, 1]))
        assert math.isinf(r)

    def test_increasing_distribution_rejected(self, rng) -> None:
        # Mass concentrated on *large* degrees: opposite of scale-free.
        degrees = rng.choice([50, 60, 70, 80, 90], size=5000,
                             p=[0.05, 0.1, 0.15, 0.3, 0.4])
        assert math.isinf(estimate_power_law_exponent(degrees))

    def test_empty_degrees(self) -> None:
        assert math.isinf(estimate_power_law_exponent(np.zeros(0)))


class TestLazyExtraction:
    def test_nothing_extracted_initially(self, paper_csr) -> None:
        lazy = LazyFeatures(paper_csr)
        assert not lazy.structure_extracted
        assert not lazy.powerlaw_extracted
        assert lazy.extraction_cost_spmv_units() == 0.0

    def test_structure_access_runs_step_one_only(self, paper_csr) -> None:
        lazy = LazyFeatures(paper_csr)
        assert lazy.get("ndiags") == 3
        assert lazy.structure_extracted
        assert not lazy.powerlaw_extracted

    def test_r_access_runs_step_two(self, paper_csr) -> None:
        lazy = LazyFeatures(paper_csr)
        lazy.get("r")
        assert lazy.powerlaw_extracted

    def test_cost_accumulates_by_step(self, paper_csr) -> None:
        lazy = LazyFeatures(paper_csr)
        lazy.get("m")
        step_one = lazy.extraction_cost_spmv_units()
        assert step_one > 0
        lazy.get("r")
        assert lazy.extraction_cost_spmv_units() > step_one

    def test_snapshot_matches_eager(self, paper_csr) -> None:
        lazy = LazyFeatures(paper_csr)
        assert lazy.snapshot() == extract_features(paper_csr)

    def test_partial_snapshot_reports_inf_r(self, paper_csr) -> None:
        lazy = LazyFeatures(paper_csr)
        partial = lazy.partial_snapshot()
        assert math.isinf(partial.r)
        assert not lazy.powerlaw_extracted

    def test_unknown_parameter_rejected(self, paper_csr) -> None:
        with pytest.raises(KeyError, match="unknown"):
            LazyFeatures(paper_csr).get("bogus")


class TestFeatureVector:
    def test_as_dict_paper_names(self, paper_csr) -> None:
        fv = extract_features(paper_csr)
        d = fv.as_dict(paper_names=True)
        assert d["M"] == 4 and d["NNZ"] == 9 and "NTdiags_ratio" in d

    def test_with_label(self, paper_csr) -> None:
        from repro.types import FormatName

        fv = extract_features(paper_csr)
        labelled = fv.with_label(FormatName.DIA)
        assert labelled.best_format is FormatName.DIA
        assert labelled.as_dict() == fv.as_dict()

    def test_structure_only_helper_consistent(self, paper_csr) -> None:
        structure = extract_structure_features(paper_csr)
        eager = extract_features(paper_csr)
        for key, value in structure.items():
            assert eager.value(key) == pytest.approx(value)
