"""Baseline comparator tests: MKL-style, brute force, clSpMV-style."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    brute_force_search,
    mkl_best_time,
    mkl_xcoogemv,
    mkl_xcsrgemv,
    mkl_xdiagemv,
    mkl_xellgemv,
    train_clspmv,
)
from repro.collection import banded, generate_collection, graphs
from repro.features import extract_features
from repro.formats import convert
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.tuner import search_kernels
from repro.types import FormatName, Precision
from tests.conftest import random_csr


@pytest.fixture(scope="module")
def backend():
    return SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)


@pytest.fixture(scope="module")
def kernels(backend):
    return search_kernels(backend)


class TestMklInterface:
    def test_per_format_routines_agree(self, rng) -> None:
        csr = random_csr(rng, 25, 25, 0.15)
        x = rng.standard_normal(25)
        expected = csr.to_dense() @ x
        np.testing.assert_allclose(mkl_xcsrgemv(csr, x), expected, atol=1e-9)
        coo, _ = convert(csr, FormatName.COO)
        np.testing.assert_allclose(mkl_xcoogemv(coo, x), expected, atol=1e-9)
        dia, _ = convert(csr, FormatName.DIA, fill_budget=None)
        np.testing.assert_allclose(mkl_xdiagemv(dia, x), expected, atol=1e-9)
        ell, _ = convert(csr, FormatName.ELL, fill_budget=None)
        np.testing.assert_allclose(mkl_xellgemv(ell, x), expected, atol=1e-9)

    def test_best_time_prefers_matching_format(self, backend) -> None:
        matrix = banded.banded_matrix(3000, 5, seed=1)
        best, seconds, times = mkl_best_time(matrix, backend)
        assert best is FormatName.DIA
        assert seconds == min(times.values())

    def test_best_time_skips_pathological_conversions(self, backend) -> None:
        matrix = graphs.power_law_graph(3000, exponent=2.1, seed=2)
        best, _, times = mkl_best_time(matrix, backend)
        assert FormatName.DIA not in times  # blown fill budget skipped
        assert best in (FormatName.CSR, FormatName.COO)


class TestBruteForce:
    def test_finds_true_best(self, backend) -> None:
        matrix = banded.banded_matrix(2500, 7, seed=3)
        result = brute_force_search(matrix, backend)
        assert result.best_format is FormatName.DIA

    def test_overhead_exceeds_model_path(self, backend) -> None:
        # Section 7.3: simple search costs far more than SMAT's ~2-5 units.
        matrix = banded.banded_matrix(2500, 7, seed=3)
        result = brute_force_search(matrix, backend)
        assert result.overhead_units > 5.0

    def test_overhead_grows_with_repeats(self, backend) -> None:
        matrix = banded.banded_matrix(2500, 7, seed=3)
        one = brute_force_search(matrix, backend, repeats=1)
        five = brute_force_search(matrix, backend, repeats=5)
        assert five.overhead_units > one.overhead_units

    def test_all_four_formats_attempted_when_feasible(self, backend) -> None:
        matrix = banded.banded_matrix(1500, 3, seed=4)
        result = brute_force_search(matrix, backend)
        assert set(result.times) == {
            FormatName.DIA, FormatName.ELL, FormatName.CSR, FormatName.COO,
        }


class TestClSpmv:
    @pytest.fixture(scope="class")
    def model(self, backend, kernels):
        return train_clspmv(
            generate_collection(scale=0.02, size_scale=0.4, seed=3),
            kernels,
            backend,
        )

    def test_ceilings_positive(self, model) -> None:
        assert all(v > 0 for v in model.max_gflops.values())

    def test_dia_ceiling_highest(self, model) -> None:
        # Figure 3: DIA reaches the highest GFLOPS when it fits.
        assert model.max_gflops[FormatName.DIA] == max(
            model.max_gflops.values()
        )

    def test_less_accurate_than_feature_model(self, model, backend, kernels):
        """The paper's argument: ceilings mislead on matrices that do not
        resemble each format's best case."""
        from repro.tuner.smat import label_matrix

        cases = list(generate_collection(scale=0.02, size_scale=0.4, seed=9))
        hits = 0
        for _, matrix in cases:
            features = extract_features(matrix)
            predicted = model.predict(features)
            actual = label_matrix(matrix, features, kernels, backend)
            hits += predicted is actual
        # clSpMV's rule is much weaker than SMAT's learned model (~95%).
        assert hits / len(cases) < 0.9
