"""Differential gate for the codegen backend: every generated kernel,
bitwise.

Mirror of ``test_properties_differential``, pointed at the kernels the
``codegen`` backend emits instead of the storage formats themselves: the
same structural families (banded, stencil, power-law, uniform random,
block structured, wide-row, scattered, dense), the same dyadic-rational
value trick — matrix entries are small integers over 8, operand entries
small integers over 4, so every product and partial sum is exact in
float64 and **any** summation order produces the identical bit pattern.

For each seed and each format a template covers, the generated kernel
must be bitwise equal to *both* oracles:

* the CSR row-loop reference (``csr.spmv(x, reference=True)``), and
* the generic vectorized registry kernel the tuner would otherwise run —
  the kernel the beat-or-keep policy audits against in production.

A failing case prints the full generated source (the synthetic
``<repro-codegen:HASH>`` module), and the seed is in the test ID
(``test_...[137]``) so replaying it is one pytest invocation.

The only tolerated refusals are structural: a conversion that is
impossible without a fill budget (BDIA with zero nnz), or a matrix whose
structure exceeds a template's unroll envelope (``MAX_DIAGS`` diagonals,
``MAX_ELL_SLOTS`` slots, ``MAX_DEGREE_BUCKETS`` distinct degrees) — the
serving policy keeps the generic kernel for those, so the sweep skips
them the same way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import banded, blocks, graphs, grids, random_sparse
from repro.errors import CodegenError, ConversionError
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.kernels.base import find_kernel
from repro.kernels.codegen import generate_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.kernels.templates import CODEGEN_FORMATS
from repro.types import FormatName

#: Number of generated matrices in the sweep (the acceptance floor is 200).
N_SEEDS = 200


def dyadic_values(rng: np.random.Generator, count: int) -> np.ndarray:
    """Non-zero multiples of 1/8 in [-2, 2]: exact in float64, and so are
    all their products with dyadic operands and sums of any order."""
    magnitude = rng.integers(1, 17, size=count)
    sign = rng.choice((-1.0, 1.0), size=count)
    return sign * magnitude / 8.0


def dyadic_operand(rng: np.random.Generator, n: int) -> np.ndarray:
    """Operand vector of multiples of 1/4 in [-2, 2] (zeros allowed)."""
    return rng.integers(-8, 9, size=n) / 4.0


def with_dyadic_data(matrix: CSRMatrix, rng: np.random.Generator) -> CSRMatrix:
    """The same sparsity structure with exactly-representable values."""
    return CSRMatrix(
        matrix.ptr,
        matrix.indices,
        dyadic_values(rng, matrix.nnz),
        matrix.shape,
    )


def _structure_for(seed: int) -> CSRMatrix:
    """One matrix per seed, cycling through the collection's families."""
    rng = np.random.default_rng(seed)
    family = seed % 8
    if family == 0:
        return banded.banded_matrix(
            int(rng.integers(8, 48)),
            int(rng.integers(1, 9)),
            seed=seed,
            occupancy=float(rng.uniform(0.4, 1.0)),
        )
    if family == 1:
        nx = int(rng.integers(3, 8))
        return grids.laplacian_5pt(nx, int(rng.integers(3, 8)))
    if family == 2:
        return graphs.power_law_graph(
            int(rng.integers(10, 60)), exponent=2.2, seed=seed
        )
    if family == 3:
        return random_sparse.uniform_random(
            int(rng.integers(5, 50)),
            int(rng.integers(5, 50)),
            float(rng.uniform(1.0, 6.0)),
            seed=seed,
        )
    if family == 4:
        return blocks.block_structured(
            int(rng.integers(12, 40)),
            block_size=int(rng.integers(2, 5)),
            blocks_per_row=int(rng.integers(1, 4)),
            seed=seed,
        )
    if family == 5:
        return blocks.wide_row_matrix(
            int(rng.integers(10, 30)), aver_degree=8, seed=seed
        )
    if family == 6:
        # Adversarial: mostly-empty matrix with a few scattered entries.
        m, n = int(rng.integers(4, 40)), int(rng.integers(4, 40))
        dense = np.zeros((m, n))
        for _ in range(int(rng.integers(0, 6))):
            dense[rng.integers(0, m), rng.integers(0, n)] = 1.0
        return CSRMatrix.from_dense(dense)
    # family == 7 — all-dense square block.
    n = int(rng.integers(2, 14))
    return CSRMatrix.from_dense(np.ones((n, n)))


def assert_generated_kernels_agree(
    csr: CSRMatrix, rng: np.random.Generator
) -> None:
    """The shared oracle: every generatable kernel is bitwise equal to
    the CSR row-loop reference *and* to the generic registry kernel."""
    x = dyadic_operand(rng, csr.n_cols)
    y_ref = csr.spmv(x, reference=True)
    vectorize = strategy_set(Strategy.VECTORIZE)
    covered = 0

    for target in CODEGEN_FORMATS:
        try:
            converted, _ = convert(csr, target, fill_budget=None)
        except ConversionError:
            # Only structural impossibility is acceptable with the fill
            # budget disabled (banded-DIA needs an occupied diagonal).
            assert target is FormatName.BDIA and csr.nnz == 0, (
                f"unexpected refusal converting to {target.value}"
            )
            continue
        try:
            generated = generate_kernel(converted)
        except CodegenError as exc:
            # The template declined: the structure exceeds an unroll
            # envelope (too many diagonals / slots / distinct degrees).
            # That is the beat-or-keep policy's keep-generic path, not a
            # bug — but it must say so, not fail for any other reason.
            assert "ceiling" in str(exc), (
                f"unexpected CodegenError for {target.value}: {exc}"
            )
            continue
        covered += 1
        y = generated(converted, x)
        generic = find_kernel(target, vectorize)
        y_generic = generic(converted, x)
        assert y.shape == y_ref.shape and y.dtype == y_ref.dtype
        assert np.array_equal(y, y_ref), (
            f"{generated.name} differs from the CSR row-loop reference\n"
            f"--- generated source ---\n{generated.source}"
        )
        assert np.array_equal(y, y_generic), (
            f"{generated.name} differs from the generic kernel "
            f"{generic.name}\n--- generated source ---\n{generated.source}"
        )
    # The sweep must actually exercise the templates: every family
    # admits at least the CSR template (its bucket count is tiny).
    assert covered >= 1 or csr.nnz == 0


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_generated_kernels_agree_on_generated_matrix(seed: int) -> None:
    rng = np.random.default_rng(30_000 + seed)
    csr = with_dyadic_data(_structure_for(seed), rng)
    assert_generated_kernels_agree(csr, rng)


# ---------------------------------------------------------------------------
# Adversarial fixed shapes (deterministic, always in the sweep)
# ---------------------------------------------------------------------------

def _empty_rows_matrix() -> CSRMatrix:
    dense = np.zeros((7, 5))
    dense[0, 1] = 0.5
    dense[3, 4] = -1.25
    dense[6, 0] = 2.0
    return CSRMatrix.from_dense(dense)


ADVERSARIAL = {
    "empty_rows": _empty_rows_matrix,
    "single_column": lambda: CSRMatrix.from_dense(
        np.array([[0.5], [0.0], [-1.5], [2.0]])
    ),
    "single_row": lambda: CSRMatrix.from_dense(
        np.array([[0.25, 0.0, -0.75, 1.0, 0.0]])
    ),
    "one_by_one": lambda: CSRMatrix.from_dense(np.array([[0.125]])),
    "one_by_one_zero": lambda: CSRMatrix.from_dense(np.array([[0.0]])),
    "all_zero": lambda: CSRMatrix.from_dense(np.zeros((6, 6))),
    "all_dense": lambda: CSRMatrix.from_dense(
        (np.arange(25).reshape(5, 5) - 12) / 8.0
    ),
    "tall": lambda: CSRMatrix.from_dense(
        np.kron(np.eye(10), np.ones((3, 1))) / 8.0
    ),
    "wide": lambda: CSRMatrix.from_dense(
        np.kron(np.eye(3), np.ones((1, 9))) / 8.0
    ),
}


@pytest.mark.parametrize("name", sorted(ADVERSARIAL))
def test_generated_kernels_agree_on_adversarial_shape(name: str) -> None:
    rng = np.random.default_rng(hash(name) % (2**32))
    assert_generated_kernels_agree(ADVERSARIAL[name](), rng)
