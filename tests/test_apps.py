"""PageRank application tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import pagerank
from repro.apps.pagerank import build_transition_transpose
from repro.collection import graphs
from repro.errors import SolverError
from repro.formats import CSRMatrix


def tiny_graph() -> CSRMatrix:
    """A 4-node graph with a known rank ordering: node 0 is the hub."""
    dense = np.array(
        [
            [0.0, 1.0, 1.0, 1.0],
            [1.0, 0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],
        ]
    )
    return CSRMatrix.from_dense(dense)


class TestPageRank:
    def test_ranks_sum_to_one(self) -> None:
        result = pagerank(tiny_graph())
        assert result.converged
        assert result.ranks.sum() == pytest.approx(1.0, abs=1e-8)

    def test_hub_ranks_highest(self) -> None:
        result = pagerank(tiny_graph())
        assert np.argmax(result.ranks) == 0

    def test_symmetric_spokes_tie(self) -> None:
        result = pagerank(tiny_graph())
        np.testing.assert_allclose(result.ranks[1], result.ranks[2])
        np.testing.assert_allclose(result.ranks[2], result.ranks[3])

    def test_dangling_nodes_handled(self) -> None:
        dense = np.zeros((3, 3))
        dense[0, 1] = 1.0  # node 1 and 2 dangle
        result = pagerank(CSRMatrix.from_dense(dense))
        assert result.converged
        assert result.ranks.sum() == pytest.approx(1.0, abs=1e-8)

    def test_power_law_graph_converges(self) -> None:
        graph = graphs.power_law_graph(2000, exponent=2.2, seed=5)
        result = pagerank(graph, tol=1e-9)
        assert result.converged
        assert result.ranks.min() > 0.0

    def test_custom_spmv_backend_used(self) -> None:
        graph = tiny_graph()
        transition = build_transition_transpose(graph)
        calls = []

        def counting_spmv(x):
            calls.append(1)
            return transition.spmv(x)

        result = pagerank(graph, spmv=counting_spmv)
        assert result.converged
        assert len(calls) == result.iterations

    def test_validation(self, rng) -> None:
        from tests.conftest import random_csr

        with pytest.raises(SolverError, match="square"):
            pagerank(random_csr(rng, 4, 5, 0.5))
        with pytest.raises(SolverError, match="damping"):
            pagerank(tiny_graph(), damping=1.5)

    def test_transition_is_column_stochastic(self) -> None:
        transition_t = build_transition_transpose(tiny_graph())
        # Columns of M^T (rows of M) sum to 1 for non-dangling nodes.
        col_sums = transition_t.to_dense().sum(axis=0)
        np.testing.assert_allclose(col_sums, 1.0, atol=1e-12)
