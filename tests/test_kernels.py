"""Kernel library tests: every implementation of every format agrees with
the dense reference, and the registry behaves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError
from repro.formats import CSRMatrix, convert
from repro.kernels import (
    Kernel,
    Strategy,
    describe,
    find_kernel,
    kernels_for,
    strategy_set,
    total_kernel_count,
)
from repro.types import BASIC_FORMATS, FormatName
from tests.conftest import random_csr

ALL_FORMATS = list(BASIC_FORMATS) + [FormatName.BCSR, FormatName.HYB]


def all_kernels():
    params = []
    for fmt in ALL_FORMATS:
        for kernel in kernels_for(fmt):
            params.append(pytest.param(kernel, id=kernel.name))
    return params


@pytest.mark.parametrize("kernel", all_kernels())
def test_kernel_matches_dense_reference(kernel: Kernel, rng) -> None:
    csr = random_csr(rng, n_rows=33, n_cols=29, density=0.12)
    matrix, _ = convert(csr, kernel.format_name, fill_budget=None)
    x = rng.standard_normal(29)
    expected = csr.to_dense() @ x
    np.testing.assert_allclose(kernel(matrix, x), expected, atol=1e-9)


@pytest.mark.parametrize("kernel", all_kernels())
def test_kernel_on_banded_matrix(kernel: Kernel, rng) -> None:
    n = 41
    dense = (
        np.diag(rng.standard_normal(n))
        + np.diag(rng.standard_normal(n - 1), 1)
        + np.diag(rng.standard_normal(n - 3), -3)
    )
    csr = CSRMatrix.from_dense(dense)
    matrix, _ = convert(csr, kernel.format_name, fill_budget=None)
    x = rng.standard_normal(n)
    np.testing.assert_allclose(kernel(matrix, x), dense @ x, atol=1e-9)


@pytest.mark.parametrize("kernel", all_kernels())
def test_kernel_on_empty_matrix(kernel: Kernel) -> None:
    csr = CSRMatrix(
        ptr=np.zeros(6, dtype=np.int64),
        indices=[],
        data=np.zeros(0),
        shape=(5, 7),
    )
    matrix, _ = convert(csr, kernel.format_name, fill_budget=None)
    np.testing.assert_array_equal(kernel(matrix, np.ones(7)), np.zeros(5))


@pytest.mark.parametrize("kernel", all_kernels())
def test_kernel_preserves_single_precision(kernel: Kernel, rng) -> None:
    csr = random_csr(rng, n_rows=20, n_cols=20, density=0.2, dtype=np.float32)
    matrix, _ = convert(csr, kernel.format_name, fill_budget=None)
    y = kernel(matrix, np.ones(20, dtype=np.float32))
    assert y.dtype == np.float32


class TestRegistry:
    def test_every_basic_format_has_multiple_kernels(self) -> None:
        for fmt in BASIC_FORMATS:
            assert len(kernels_for(fmt)) >= 4, fmt

    def test_library_size_matches_paper_scale(self) -> None:
        # "up to 24 in current SMAT system" — ours registers 30+ across the
        # four basic formats plus the five extension formats.
        assert 24 <= total_kernel_count() <= 40

    def test_baseline_listed_first(self) -> None:
        for fmt in ALL_FORMATS:
            assert kernels_for(fmt)[0].strategies == frozenset()

    def test_find_kernel_exact_match(self) -> None:
        kernel = find_kernel(FormatName.CSR, strategy_set(Strategy.VECTORIZE))
        assert kernel.strategies == {Strategy.VECTORIZE}

    def test_find_kernel_missing(self) -> None:
        with pytest.raises(KernelError, match="no CSR kernel"):
            find_kernel(FormatName.CSR, strategy_set(Strategy.UNROLL))

    def test_wrong_format_rejected(self, paper_csr) -> None:
        kernel = find_kernel(FormatName.COO, strategy_set(Strategy.VECTORIZE))
        with pytest.raises(KernelError, match="applied to"):
            kernel(paper_csr, np.ones(4))

    def test_describe_is_stable(self) -> None:
        assert describe(frozenset()) == "basic"
        assert (
            describe({Strategy.PARALLEL, Strategy.VECTORIZE})
            == "parallel+vectorize"
        )

    def test_kernel_names_unique(self) -> None:
        names = [k.name for fmt in ALL_FORMATS for k in kernels_for(fmt)]
        assert len(names) == len(set(names))
