"""Property-based differential testing of every storage format.

Strategy: generate matrices from the same structural families as
``repro.collection`` (banded, stencil, power-law, uniform random, block
structured, wide-row) plus adversarial shapes (empty rows, single
column/row, all-dense, all-zero, 1x1, shuffled duplicate-free COO
triplets), then assert that **every** format's ``spmv`` is *bitwise*
equal to the CSR row-loop reference and that converting there and back
preserves ``to_dense()`` exactly.

Bitwise equality across formats is achievable because the generated
values are exact dyadic rationals — matrix entries are small integers
over 8, operand entries small integers over 4 — so every product and
partial sum is exactly representable in a double and *any* summation
order (per-row ``np.dot``, cumulative-sum segment reduction, diagonal
accumulation, ...) produces the identical bit pattern.  A format that
drops, duplicates, or misplaces a single entry fails loudly.

Each case is one pytest parametrization over a seed, so a failure's
seed is right in the test ID (``test_...[137]``) and replaying it is
``pytest "tests/test_properties_differential.py::...[137]"``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import banded, blocks, graphs, grids, random_sparse
from repro.errors import ConversionError
from repro.formats.convert import convert
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels.spmm import spmm_formats, spmm_kernel_for
from repro.types import FormatName

#: Number of generated matrices in the sweep (the acceptance floor is 200).
N_SEEDS = 200

#: Every conversion target the library registers.
ALL_TARGETS = (
    FormatName.COO,
    FormatName.DIA,
    FormatName.ELL,
    FormatName.BCSR,
    FormatName.HYB,
    FormatName.CSC,
    FormatName.SKY,
    FormatName.BDIA,
)


def dyadic_values(rng: np.random.Generator, count: int) -> np.ndarray:
    """Non-zero multiples of 1/8 in [-2, 2]: exact in float64, and so are
    all their products with dyadic operands and sums of any order."""
    magnitude = rng.integers(1, 17, size=count)
    sign = rng.choice((-1.0, 1.0), size=count)
    return sign * magnitude / 8.0


def dyadic_operand(rng: np.random.Generator, n: int) -> np.ndarray:
    """Operand vector of multiples of 1/4 in [-2, 2] (zeros allowed)."""
    return rng.integers(-8, 9, size=n) / 4.0


def with_dyadic_data(matrix: CSRMatrix, rng: np.random.Generator) -> CSRMatrix:
    """The same sparsity structure with exactly-representable values."""
    return CSRMatrix(
        matrix.ptr,
        matrix.indices,
        dyadic_values(rng, matrix.nnz),
        matrix.shape,
    )


def _structure_for(seed: int) -> CSRMatrix:
    """One matrix per seed, cycling through the collection's families."""
    rng = np.random.default_rng(seed)
    family = seed % 8
    if family == 0:
        return banded.banded_matrix(
            int(rng.integers(8, 48)),
            int(rng.integers(1, 9)),
            seed=seed,
            occupancy=float(rng.uniform(0.4, 1.0)),
        )
    if family == 1:
        nx = int(rng.integers(3, 8))
        return grids.laplacian_5pt(nx, int(rng.integers(3, 8)))
    if family == 2:
        return graphs.power_law_graph(
            int(rng.integers(10, 60)), exponent=2.2, seed=seed
        )
    if family == 3:
        return random_sparse.uniform_random(
            int(rng.integers(5, 50)),
            int(rng.integers(5, 50)),
            float(rng.uniform(1.0, 6.0)),
            seed=seed,
        )
    if family == 4:
        return blocks.block_structured(
            int(rng.integers(12, 40)),
            block_size=int(rng.integers(2, 5)),
            blocks_per_row=int(rng.integers(1, 4)),
            seed=seed,
        )
    if family == 5:
        return blocks.wide_row_matrix(
            int(rng.integers(10, 30)), aver_degree=8, seed=seed
        )
    if family == 6:
        # Adversarial: mostly-empty matrix with a few scattered entries.
        m, n = int(rng.integers(4, 40)), int(rng.integers(4, 40))
        dense = np.zeros((m, n))
        for _ in range(int(rng.integers(0, 6))):
            dense[rng.integers(0, m), rng.integers(0, n)] = 1.0
        return CSRMatrix.from_dense(dense)
    # family == 7 — all-dense square block.
    n = int(rng.integers(2, 14))
    return CSRMatrix.from_dense(np.ones((n, n)))


def assert_formats_agree(csr: CSRMatrix, rng: np.random.Generator) -> None:
    """The shared oracle: every convertible format multiplies and
    round-trips bitwise-identically to the CSR reference."""
    x = dyadic_operand(rng, csr.n_cols)
    y_ref = csr.spmv(x, reference=True)
    dense_ref = csr.to_dense()

    # The vectorized CSR path itself must match the row-loop oracle.
    assert np.array_equal(csr.spmv(x), y_ref)

    for target in ALL_TARGETS:
        try:
            converted, _ = convert(csr, target, fill_budget=None)
        except ConversionError:
            # Only structural impossibility is acceptable — skyline
            # requires square, banded-DIA needs at least one occupied
            # diagonal; the fill budget is disabled.
            structurally_impossible = (
                target is FormatName.SKY and csr.n_rows != csr.n_cols
            ) or (target is FormatName.BDIA and csr.nnz == 0)
            assert structurally_impossible, (
                f"unexpected refusal converting to {target.value}"
            )
            continue
        y = converted.spmv(x)
        assert y.dtype == y_ref.dtype
        assert np.array_equal(y, y_ref), (
            f"{target.value} spmv differs from the CSR reference"
        )
        assert np.array_equal(converted.to_dense(), dense_ref), (
            f"{target.value} to_dense() differs after conversion"
        )
        back, _ = convert(converted, FormatName.CSR, fill_budget=None)
        assert np.array_equal(back.to_dense(), dense_ref), (
            f"{target.value} -> CSR round trip loses entries"
        )


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_all_formats_agree_on_generated_matrix(seed: int) -> None:
    rng = np.random.default_rng(10_000 + seed)
    csr = with_dyadic_data(_structure_for(seed), rng)
    assert_formats_agree(csr, rng)


#: RHS block widths for the SpMM sweep: 1 (the degenerate batch), small
#: odd widths, and one width past every kernel's internal blocking.
SPMM_WIDTHS = (1, 2, 3, 5, 8, 13, 64)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_spmm_matches_sequential_spmv(seed: int) -> None:
    """Every native SpMM kernel is bitwise equal to column-by-column SpMV.

    Same dyadic-value trick as the SpMV sweep: exact arithmetic makes
    the batched reduction order irrelevant, so the multi-RHS kernels
    (including their degree-grouping, heavy-row and blocking paths) must
    reproduce the sequential result bit for bit — on full blocks, on a
    batch of one, and on ragged sub-batches whose final slice is
    narrower than the rest.
    """
    rng = np.random.default_rng(20_000 + seed)
    csr = with_dyadic_data(_structure_for(seed), rng)
    k = SPMM_WIDTHS[seed % len(SPMM_WIDTHS)]
    X = np.stack(
        [dyadic_operand(rng, csr.n_cols) for _ in range(k)], axis=1
    )
    y_ref = np.stack(
        [csr.spmv(X[:, j], reference=True) for j in range(k)], axis=1
    )
    for name in spmm_formats():
        if name is FormatName.CSR:
            converted = csr
        else:
            converted, _ = convert(csr, name, fill_budget=None)
        kernel = spmm_kernel_for(name)
        Y = kernel(converted, X)
        assert Y.shape == (csr.n_rows, k)
        assert Y.dtype == y_ref.dtype
        assert np.array_equal(Y, y_ref), (
            f"{name.value} spmm differs from sequential SpMV"
        )
        # Ragged sweep: widths that don't divide k leave a narrower
        # final batch, the shape a draining serve queue produces.
        width = max(1, k // 2 + 1)
        parts = [
            kernel(converted, X[:, lo : lo + width])
            for lo in range(0, k, width)
        ]
        assert np.array_equal(np.concatenate(parts, axis=1), y_ref), (
            f"{name.value} spmm differs on ragged sub-batches"
        )
    # The plan-facing default (CSR-reference fallback) obeys the same
    # oracle, so formats without a native kernel degrade correctly.
    assert np.array_equal(csr.spmm(X), y_ref)


# ---------------------------------------------------------------------------
# Adversarial fixed shapes (deterministic, always in the sweep)
# ---------------------------------------------------------------------------

def _empty_rows_matrix() -> CSRMatrix:
    dense = np.zeros((7, 5))
    dense[0, 1] = 0.5
    dense[3, 4] = -1.25
    dense[6, 0] = 2.0
    return CSRMatrix.from_dense(dense)


ADVERSARIAL = {
    "empty_rows": _empty_rows_matrix,
    "single_column": lambda: CSRMatrix.from_dense(
        np.array([[0.5], [0.0], [-1.5], [2.0]])
    ),
    "single_row": lambda: CSRMatrix.from_dense(
        np.array([[0.25, 0.0, -0.75, 1.0, 0.0]])
    ),
    "one_by_one": lambda: CSRMatrix.from_dense(np.array([[0.125]])),
    "one_by_one_zero": lambda: CSRMatrix.from_dense(np.array([[0.0]])),
    "all_zero": lambda: CSRMatrix.from_dense(np.zeros((6, 6))),
    "all_dense": lambda: CSRMatrix.from_dense(
        (np.arange(25).reshape(5, 5) - 12) / 8.0
    ),
    "tall": lambda: CSRMatrix.from_dense(
        np.kron(np.eye(10), np.ones((3, 1))) / 8.0
    ),
    "wide": lambda: CSRMatrix.from_dense(
        np.kron(np.eye(3), np.ones((1, 9))) / 8.0
    ),
}


@pytest.mark.parametrize("name", sorted(ADVERSARIAL))
def test_all_formats_agree_on_adversarial_shape(name: str) -> None:
    rng = np.random.default_rng(hash(name) % (2**32))
    assert_formats_agree(ADVERSARIAL[name](), rng)


class TestCOOEdgeCases:
    """Duplicate-free COO triplets in arbitrary order must canonicalise
    into the same matrix the row-major ordering produces."""

    @pytest.mark.parametrize("seed", range(20))
    def test_shuffled_triplets_round_trip(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        m, n = int(rng.integers(3, 20)), int(rng.integers(3, 20))
        # Duplicate-free coordinates via sampling linear indices.
        count = int(rng.integers(1, min(m * n, 40) + 1))
        flat = rng.choice(m * n, size=count, replace=False)
        rows, cols = np.divmod(flat, n)
        data = dyadic_values(rng, count)
        order = rng.permutation(count)
        shuffled = COOMatrix(
            rows[order], cols[order], data[order], (m, n)
        )
        sorted_coo = COOMatrix(rows, cols, data, (m, n))
        assert np.array_equal(shuffled.to_dense(), sorted_coo.to_dense())
        x = dyadic_operand(rng, n)
        assert np.array_equal(shuffled.spmv(x), sorted_coo.spmv(x))
        csr, _ = convert(shuffled, FormatName.CSR, fill_budget=None)
        assert np.array_equal(
            csr.spmv(x, reference=True), sorted_coo.spmv(x)
        )
        assert_formats_agree(csr, rng)

    def test_unsorted_csr_indices_canonicalise(self) -> None:
        # Within-row column order must not matter to the constructor.
        a = CSRMatrix(
            np.array([0, 3, 3, 4]),
            np.array([2, 0, 1, 1]),
            np.array([0.5, 1.0, -0.25, 2.0]),
            (3, 3),
        )
        b = CSRMatrix(
            np.array([0, 3, 3, 4]),
            np.array([0, 1, 2, 1]),
            np.array([1.0, -0.25, 0.5, 2.0]),
            (3, 3),
        )
        assert np.array_equal(a.to_dense(), b.to_dense())
        rng = np.random.default_rng(0)
        assert_formats_agree(a, rng)
