"""Differential sweep for structure deltas: patched == reconverted.

The serving layer treats a patched operand and a from-scratch
reconversion as the same object, so this sweep earns that right the
same way the kernel sweep does — 200 seeded matrices from the full
family mix, each put through a seeded edit schedule (insert-only,
delete-only, or ragged mixed, cycling by seed), with the patched
operand asserted **bitwise** equal to ``convert(new_csr, fmt)`` across
every registered conversion target: same arrays, same padding zeros,
same dtypes.

Inserted values are dyadic multiples of 1/8 strictly above 2, while the
base values live in [-2, 2] — a collision sum can never cancel to an
exact zero, so the stored-entry census is unambiguous on both sides of
the comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConversionError, FormatError
from repro.formats.base import SparseMatrix
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.formats.delta import (
    StructureDelta,
    apply_delta,
    patch_operand,
    rebuild_operand,
)
from repro.types import INDEX_DTYPE, FormatName

from tests.test_properties_differential import (
    ALL_TARGETS,
    _structure_for,
    with_dyadic_data,
)

#: Acceptance floor: 200 seeded matrices through the full edit mix.
N_SEEDS = 200

#: Attributes that memoize derived state rather than defining the
#: operand; a patched instance may legitimately not carry them.
_CACHE_ATTRS = frozenset({"_refresh_plan"})


def _big_dyadic(rng: np.random.Generator, count: int) -> np.ndarray:
    """Positive multiples of 1/8 in (2, 4]: exactly representable, and
    no sum with base values in [-2, 2] can reach exactly zero."""
    return rng.integers(17, 33, size=count) / 8.0


def _random_delta(
    csr: CSRMatrix, rng: np.random.Generator, kind: str
) -> StructureDelta:
    """A seeded edit schedule against ``csr`` (coordinates may collide
    with survivors — duplicate-summing is part of the contract)."""
    m, n = csr.shape
    ins_rows = np.zeros(0, dtype=INDEX_DTYPE)
    ins_cols = np.zeros(0, dtype=INDEX_DTYPE)
    del_rows = np.zeros(0, dtype=INDEX_DTYPE)
    del_cols = np.zeros(0, dtype=INDEX_DTYPE)
    if kind in ("delete", "mixed") and csr.nnz:
        count = int(rng.integers(1, max(csr.nnz // 2, 2)))
        picks = rng.choice(csr.nnz, size=min(count, csr.nnz), replace=False)
        row_of = np.repeat(
            np.arange(m, dtype=INDEX_DTYPE), csr.row_degrees()
        )
        del_rows = row_of[picks]
        del_cols = csr.indices[picks].astype(INDEX_DTYPE)
    if kind in ("insert", "mixed"):
        count = int(rng.integers(1, max(csr.nnz // 2, 2) + 2))
        ins_rows = rng.integers(0, m, size=count).astype(INDEX_DTYPE)
        ins_cols = rng.integers(0, n, size=count).astype(INDEX_DTYPE)
    return StructureDelta(
        insert_rows=ins_rows,
        insert_cols=ins_cols,
        insert_vals=_big_dyadic(rng, ins_rows.shape[0]),
        delete_rows=del_rows,
        delete_cols=del_cols,
    )


def _expected_dense(
    csr: CSRMatrix, delta: StructureDelta
) -> np.ndarray:
    """Ground truth via dense arithmetic: delete, then sum insertions."""
    dense = csr.to_dense()
    dense[delta.delete_rows, delta.delete_cols] = 0.0
    np.add.at(
        dense,
        (delta.insert_rows, delta.insert_cols),
        delta.insert_vals,
    )
    return dense


def _assert_value_equal(x: object, y: object, key: str) -> None:
    if isinstance(x, np.ndarray):
        assert isinstance(y, np.ndarray), key
        assert x.dtype == y.dtype, key
        assert np.array_equal(x, y), key
    elif isinstance(x, SparseMatrix):
        assert_bitwise_equal(x, y)
    elif isinstance(x, (list, tuple)):
        assert type(x) is type(y) and len(x) == len(y), key
        for i, (xi, yi) in enumerate(zip(x, y)):
            _assert_value_equal(xi, yi, f"{key}[{i}]")
    elif isinstance(x, dict):
        assert isinstance(y, dict) and x.keys() == y.keys(), key
        for k in x:
            _assert_value_equal(x[k], y[k], f"{key}[{k}]")
    else:
        assert x == y, key


def assert_bitwise_equal(a: object, b: object) -> None:
    """Recursive structural identity: same type, same attributes, every
    array equal in dtype and bit pattern."""
    assert type(a) is type(b)
    va = {k: v for k, v in vars(a).items() if k not in _CACHE_ATTRS}
    vb = {k: v for k, v in vars(b).items() if k not in _CACHE_ATTRS}
    assert va.keys() == vb.keys()
    for key in va:
        _assert_value_equal(va[key], vb[key], key)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_patched_operands_match_reconversion(seed: int) -> None:
    rng = np.random.default_rng(10_000 + seed)
    base = with_dyadic_data(_structure_for(seed), rng)
    kind = ("insert", "delete", "mixed")[seed % 3]
    delta = _random_delta(base, rng, kind)

    new_csr, effect = apply_delta(base, delta)

    # The spliced CSR agrees with dense ground truth, is canonical, and
    # the effect's census is exact.
    expected = _expected_dense(base, delta)
    assert np.array_equal(new_csr.to_dense(), expected)
    assert new_csr.nnz == int(np.count_nonzero(expected))
    assert (
        new_csr.nnz
        == base.nnz
        + effect.added_rows.shape[0]
        - effect.removed_rows.shape[0]
    )
    assert effect.size == (
        effect.added_rows.shape[0]
        + effect.removed_rows.shape[0]
        + effect.updated_rows.shape[0]
    )

    # CSR "patch" adopts the spliced arrays directly.
    patched_csr = patch_operand(base, new_csr, effect)
    assert patched_csr.matrix is new_csr
    assert patched_csr.mode == "patched"

    for target in ALL_TARGETS:
        try:
            operand, _ = convert(base, target, fill_budget=None)
        except ConversionError:
            continue  # base never representable: nothing to patch
        try:
            rebuilt = rebuild_operand(new_csr, target)
        except ConversionError:
            # The mutated structure is no longer representable (e.g. a
            # delete-only delta emptied the matrix under BDIA) — the
            # patch path must refuse identically, not hand back a stale
            # or half-edited operand.
            with pytest.raises(ConversionError):
                patch_operand(operand, new_csr, effect)
            continue
        result = patch_operand(operand, new_csr, effect)
        assert result.mode in ("patched", "rebuilt")
        assert_bitwise_equal(result.matrix, rebuilt)


class TestDeltaValidation:
    def test_delete_missing_entry_raises(self, rng) -> None:
        base = with_dyadic_data(_structure_for(3), rng)
        dense = base.to_dense()
        holes = np.argwhere(dense == 0.0)
        if holes.size == 0:
            pytest.skip("dense base has no missing coordinate")
        row, col = holes[0]
        delta = StructureDelta(
            delete_rows=np.array([row], dtype=INDEX_DTYPE),
            delete_cols=np.array([col], dtype=INDEX_DTYPE),
        )
        with pytest.raises(FormatError):
            apply_delta(base, delta)

    def test_out_of_range_coordinates_raise(self, rng) -> None:
        base = with_dyadic_data(_structure_for(4), rng)
        delta = StructureDelta(
            insert_rows=np.array([base.n_rows], dtype=INDEX_DTYPE),
            insert_cols=np.array([0], dtype=INDEX_DTYPE),
            insert_vals=np.array([1.0]),
        )
        with pytest.raises(FormatError):
            apply_delta(base, delta)

    def test_ragged_lengths_raise(self, rng) -> None:
        base = with_dyadic_data(_structure_for(5), rng)
        delta = StructureDelta(
            insert_rows=np.array([0, 0], dtype=INDEX_DTYPE),
            insert_cols=np.array([0], dtype=INDEX_DTYPE),
            insert_vals=np.array([1.0]),
        )
        with pytest.raises(FormatError):
            apply_delta(base, delta)

    def test_delete_then_insert_same_coordinate_holds_inserted_value(
        self,
    ) -> None:
        base = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]))
        delta = StructureDelta(
            insert_rows=np.array([0], dtype=INDEX_DTYPE),
            insert_cols=np.array([0], dtype=INDEX_DTYPE),
            insert_vals=np.array([5.0]),
            delete_rows=np.array([0], dtype=INDEX_DTYPE),
            delete_cols=np.array([0], dtype=INDEX_DTYPE),
        )
        new_csr, effect = apply_delta(base, delta)
        assert new_csr.to_dense()[0, 0] == 5.0
        # Structurally the entry vanished and reappeared.
        assert effect.removed_rows.shape[0] == 1
        assert effect.added_rows.shape[0] == 1
        assert effect.updated_rows.shape[0] == 0

    def test_collision_with_survivor_sums(self) -> None:
        base = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]))
        delta = StructureDelta(
            insert_rows=np.array([1], dtype=INDEX_DTYPE),
            insert_cols=np.array([1], dtype=INDEX_DTYPE),
            insert_vals=np.array([3.0]),
        )
        new_csr, effect = apply_delta(base, delta)
        assert new_csr.to_dense()[1, 1] == 5.0
        assert effect.updated_rows.shape[0] == 1
        assert effect.structural_size == 0


def test_format_name_coverage() -> None:
    """The sweep exercises every registered conversion target."""
    assert set(ALL_TARGETS) == set(FormatName) - {FormatName.CSR}
