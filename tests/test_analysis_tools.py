"""Tests for the analysis tooling: feature importance, roofline, and the
Chebyshev smoother."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.features.parameters import FeatureVector
from repro.learning import TrainingDataset, train_model, train_tree
from repro.learning.importance import (
    describe_importance,
    permutation_importance,
    split_importance,
)
from repro.machine import INTEL_XEON_X5680
from repro.machine.roofline import roofline_point, roofline_report
from repro.types import FormatName, Precision


def make_record(**overrides) -> FeatureVector:
    base = dict(
        m=1000, n=1000, ndiags=200, ntdiags_ratio=0.1, nnz=8000,
        aver_rd=8.0, max_rd=20, var_rd=4.0, er_dia=0.04, er_ell=0.4,
        r=math.inf, best_format=FormatName.CSR,
    )
    base.update(overrides)
    return FeatureVector(**base)


@pytest.fixture(scope="module")
def dataset() -> TrainingDataset:
    """Labels depend ONLY on ntdiags_ratio."""
    rng = np.random.default_rng(4)
    records = []
    for _ in range(60):
        ratio = float(rng.uniform(0, 1))
        label = FormatName.DIA if ratio > 0.5 else FormatName.CSR
        records.append(
            make_record(
                ntdiags_ratio=ratio,
                aver_rd=float(rng.uniform(1, 100)),  # irrelevant noise
                best_format=label,
            )
        )
    return TrainingDataset(tuple(records))


class TestImportance:
    def test_split_importance_finds_the_signal(self, dataset) -> None:
        tree = train_tree(dataset, min_leaf=2)
        importance = split_importance(tree)
        assert importance["ntdiags_ratio"] == max(importance.values())
        assert sum(importance.values()) == pytest.approx(1.0)

    def test_permutation_importance_finds_the_signal(self, dataset) -> None:
        model = train_model(dataset, min_leaf=2)
        importance = permutation_importance(
            model.predict_format, dataset, seed=1
        )
        assert importance["ntdiags_ratio"] > 0.2
        # Shuffling an ignored attribute costs ~nothing.
        assert abs(importance["er_ell"]) < 0.1

    def test_pure_dataset_zero_importance(self) -> None:
        ds = TrainingDataset(tuple(make_record() for _ in range(10)))
        tree = train_tree(ds)
        assert sum(split_importance(tree).values()) == 0.0

    def test_describe_renders_sorted(self, dataset) -> None:
        tree = train_tree(dataset, min_leaf=2)
        text = describe_importance(split_importance(tree))
        assert text.splitlines()[0].strip().startswith("NTdiags_ratio")

    def test_empty_dataset(self) -> None:
        importance = permutation_importance(
            lambda f: FormatName.CSR, TrainingDataset(())
        )
        assert all(v == 0.0 for v in importance.values())


class TestRoofline:
    def banded_features(self) -> FeatureVector:
        return make_record(
            m=100_000, n=100_000, ndiags=9, ntdiags_ratio=1.0,
            nnz=900_000, aver_rd=9.0, max_rd=9, var_rd=0.1,
            er_dia=0.99, er_ell=0.99,
        )

    def test_spmv_is_memory_bound(self) -> None:
        point = roofline_point(
            INTEL_XEON_X5680, FormatName.CSR, self.banded_features()
        )
        assert point.memory_bound
        assert point.arithmetic_intensity < point.ridge_point

    def test_dia_intensity_beats_csr_on_banded(self) -> None:
        features = self.banded_features()
        dia = roofline_point(INTEL_XEON_X5680, FormatName.DIA, features)
        csr = roofline_point(INTEL_XEON_X5680, FormatName.CSR, features)
        # DIA stores no indices: more flops per byte.
        assert dia.arithmetic_intensity > csr.arithmetic_intensity
        assert dia.attainable_gflops > csr.attainable_gflops

    def test_ceiling_bounded_by_peak(self) -> None:
        features = self.banded_features()
        for fmt in (FormatName.DIA, FormatName.CSR, FormatName.COO):
            point = roofline_point(
                INTEL_XEON_X5680, fmt, features, Precision.SINGLE
            )
            peak = INTEL_XEON_X5680.peak_gflops(Precision.SINGLE, 12)
            assert 0.0 < point.attainable_gflops <= peak

    def test_report_covers_formats(self) -> None:
        text = roofline_report(INTEL_XEON_X5680, self.banded_features())
        for token in ("DIA", "ELL", "CSR", "COO", "memory-bound"):
            assert token in text


class TestChebyshevSmoother:
    def test_reduces_residual(self) -> None:
        from repro.amg import CsrEngine
        from repro.amg.relaxation import chebyshev
        from repro.collection.grids import laplacian_5pt
        from repro.formats.ops import diagonal

        a = laplacian_5pt(16)
        op = CsrEngine().prepare(a)
        rng = np.random.default_rng(2)
        b = rng.standard_normal(a.n_rows)
        x = np.zeros_like(b)
        r0 = np.linalg.norm(b - op(x))
        x = chebyshev(op, diagonal(a), x, b, degree=4)
        assert np.linalg.norm(b - op(x)) < 0.5 * r0

    def test_solver_with_chebyshev_converges(self) -> None:
        from repro.amg import AMGSolver
        from repro.collection.grids import laplacian_5pt

        a = laplacian_5pt(20)
        rng = np.random.default_rng(3)
        x_true = rng.standard_normal(a.n_rows)
        x, report = AMGSolver(a, smoother="chebyshev").solve(
            a.spmv(x_true), tol=1e-9, max_cycles=120
        )
        assert report.converged
        np.testing.assert_allclose(x, x_true, atol=1e-5)

    def test_unknown_smoother_rejected(self) -> None:
        from repro.amg import AMGSolver
        from repro.collection.grids import laplacian_5pt
        from repro.errors import SolverError

        with pytest.raises(SolverError, match="smoother"):
            AMGSolver(laplacian_5pt(8), smoother="sor")

    def test_degree_validated(self) -> None:
        from repro.amg import CsrEngine
        from repro.amg.relaxation import chebyshev
        from repro.collection.grids import laplacian_1d
        from repro.errors import SolverError
        from repro.formats.ops import diagonal

        a = laplacian_1d(10)
        op = CsrEngine().prepare(a)
        with pytest.raises(SolverError, match="degree"):
            chebyshev(op, diagonal(a), np.zeros(10), np.ones(10), degree=0)
