"""Unit tests for the DIA format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import DIAMatrix


class TestConstruction:
    def test_paper_example_offsets(self, paper_dense: np.ndarray) -> None:
        dia = DIAMatrix.from_dense(paper_dense)
        # Figure 2c: offsets [-2, 0, 1].
        assert dia.offsets.tolist() == [-2, 0, 1]
        assert dia.num_diags == 3

    def test_paper_example_data_layout(self, paper_dense: np.ndarray) -> None:
        dia = DIAMatrix.from_dense(paper_dense)
        # Diagonal -2 holds [., ., 8, 9] (first two rows padded).
        assert dia.data[0].tolist() == [0, 0, 8, 9]
        # Principal diagonal holds [1, 2, 3, 4].
        assert dia.data[1].tolist() == [1, 2, 3, 4]
        # Diagonal +1 holds [5, 6, 7, .].
        assert dia.data[2].tolist() == [5, 6, 7, 0]

    def test_round_trip_dense(self, paper_dense: np.ndarray) -> None:
        np.testing.assert_array_equal(
            DIAMatrix.from_dense(paper_dense).to_dense(), paper_dense
        )

    def test_unsorted_offsets_are_sorted(self) -> None:
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        dia = DIAMatrix(offsets=[1, 0], data=data, shape=(2, 2))
        assert dia.offsets.tolist() == [0, 1]
        np.testing.assert_array_equal(dia.data[0], [3.0, 4.0])

    def test_offset_out_of_range(self) -> None:
        with pytest.raises(FormatError, match="offsets"):
            DIAMatrix(offsets=[5], data=np.ones((1, 3)), shape=(3, 3))

    def test_wrong_stride(self) -> None:
        with pytest.raises(FormatError, match="stride"):
            DIAMatrix(offsets=[0], data=np.ones((1, 4)), shape=(3, 3))

    def test_offsets_data_mismatch(self) -> None:
        with pytest.raises(FormatError, match="diagonals"):
            DIAMatrix(offsets=[0, 1], data=np.ones((1, 3)), shape=(3, 3))


class TestSpmv:
    def test_matches_dense(self, paper_dense: np.ndarray) -> None:
        dia = DIAMatrix.from_dense(paper_dense)
        x = np.array([1.0, -1.0, 2.0, 0.5])
        np.testing.assert_allclose(dia.spmv(x), paper_dense @ x)

    def test_rectangular_wide(self) -> None:
        dense = np.array([[1.0, 0.0, 2.0, 0.0], [0.0, 3.0, 0.0, 4.0]])
        dia = DIAMatrix.from_dense(dense)
        x = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(dia.spmv(x), dense @ x)

    def test_rectangular_tall(self) -> None:
        dense = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 0.0], [0.0, 0.0]])
        dia = DIAMatrix.from_dense(dense)
        x = np.array([2.0, 5.0])
        np.testing.assert_allclose(dia.spmv(x), dense @ x)


class TestFillAccounting:
    def test_perfect_tridiagonal_fill(self) -> None:
        n = 10
        dense = (
            np.diag(np.ones(n))
            + np.diag(np.ones(n - 1), 1)
            + np.diag(np.ones(n - 1), -1)
        )
        dia = DIAMatrix.from_dense(dense)
        assert dia.num_diags == 3
        # 3n - 2 real non-zeros in 3n slots.
        assert dia.fill_ratio() == pytest.approx((3 * n - 2) / (3 * n))

    def test_nnz_excludes_padding(self, paper_dense: np.ndarray) -> None:
        dia = DIAMatrix.from_dense(paper_dense)
        assert dia.nnz == 9
        assert dia.padded_size == 12

    def test_flops_exclude_padding(self, paper_dense: np.ndarray) -> None:
        dia = DIAMatrix.from_dense(paper_dense)
        assert dia.flop_count() == 18
