"""DecisionLog / LoggingSmat and ruleset C-export tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import banded, generate_collection, graphs
from repro.io.ruleset_export import export_ruleset_c
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.tuner import SMAT
from repro.tuner.stats import DecisionLog, LoggingSmat
from repro.types import FormatName, Precision


@pytest.fixture(scope="module")
def smat():
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


class TestDecisionLog:
    def test_empty_log(self) -> None:
        log = DecisionLog()
        assert len(log) == 0
        assert log.fallback_rate() == 0.0
        assert log.mean_confidence() is None
        assert log.describe() == "no decisions recorded"

    def test_logging_smat_records_decisions(self, smat) -> None:
        logged = LoggingSmat(smat)
        matrices = [
            banded.banded_matrix(1500, 5, seed=1),
            graphs.power_law_graph(2500, exponent=2.2, seed=2),
            graphs.uniform_bipartite(2000, 2000, 3, seed=3),
        ]
        for matrix in matrices:
            y, decision = logged.spmv(matrix, np.ones(matrix.n_cols))
            np.testing.assert_allclose(y, matrix.spmv(np.ones(matrix.n_cols)),
                                       atol=1e-9)
        assert len(logged.log) == 3
        counts = logged.log.format_counts()
        assert sum(counts.values()) == 3
        assert FormatName.DIA in counts

    def test_aggregates(self, smat) -> None:
        logged = LoggingSmat(smat)
        for seed in range(4):
            logged.decide(banded.banded_matrix(1200, 5, seed=seed))
        assert logged.log.total_overhead_units() > 0
        assert 0.0 <= logged.log.fallback_rate() <= 1.0
        assert "decisions" in logged.log.describe()

    def test_wrapper_delegates_attributes(self, smat) -> None:
        logged = LoggingSmat(smat)
        assert logged.model is smat.model
        assert logged.kernels is smat.kernels


class TestRulesetExport:
    def test_c_export_structure(self, smat) -> None:
        code = export_ruleset_c(smat.model)
        assert "enum smat_format smat_decide" in code
        assert "typedef struct" in code
        assert "NTdiags_ratio" in code or "var_RD" in code
        # Every group with rules appears as a comment.
        for group in smat.model.grouped.groups:
            if group.rules:
                assert f"{group.format_name.value} group" in code

    def test_low_confidence_groups_return_measure(self, smat) -> None:
        code = export_ruleset_c(smat.model, confidence_threshold=1.1)
        # With an impossible threshold every rule routes to measurement.
        assert "SMAT_MEASURE" in code
        assert "return SMAT_DIA" not in code

    def test_infinite_thresholds_rendered(self, smat) -> None:
        code = export_ruleset_c(smat.model)
        assert "nan" not in code.lower().replace("infinity", "")

    def test_export_is_deterministic(self, smat) -> None:
        assert export_ruleset_c(smat.model) == export_ruleset_c(smat.model)
