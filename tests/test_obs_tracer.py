"""Unit tests for ``repro.obs``: span trees, exports, reports, sinks.

The trace-correctness suite for the serving engine lives in
``test_obs_serve_trace.py``; this module covers the tracer machinery in
isolation — nesting, threads, idempotent completion, the disabled path,
and the two export formats.
"""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs.export import (
    chrome_trace,
    span_records,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import overhead_report, render_tree


@pytest.fixture(autouse=True)
def _no_installed_tracer():
    """Every test starts and ends with tracing disabled."""
    obs.uninstall()
    yield
    obs.uninstall()


def _busy(ns: int = 50_000) -> None:
    """Spin for roughly ``ns`` so spans have non-zero durations."""
    end = time.perf_counter_ns() + ns
    while time.perf_counter_ns() < end:
        pass


class TestSpanNesting:
    def test_with_block_nesting_builds_a_tree(self):
        tracer = obs.Tracer()
        with tracer.span("root", nnz=10) as root:
            with tracer.span("child.a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child.b"):
                pass
        assert [s.name for s in root.walk()] == [
            "root", "child.a", "grandchild", "child.b",
        ]
        assert root.attrs == {"nnz": 10}
        assert tracer.roots() == [root]

    def test_nesting_is_well_formed(self):
        tracer = obs.Tracer()
        with tracer.span("root") as root:
            with tracer.span("child"):
                _busy()
        for span in root.walk():
            assert span.finished
            for child in span.children:
                assert span.start_ns <= child.start_ns
                assert child.end_ns <= span.end_ns

    def test_current_follows_the_thread_stack(self):
        tracer = obs.Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_explicit_parent_overrides_thread_nesting(self):
        tracer = obs.Tracer()
        with tracer.span("a") as a:
            with tracer.span("b", parent=None) as b:
                pass
        assert b.parent_id is None
        assert a.children == []
        # Two independent roots, each its own trace.
        assert {root.name for root in tracer.roots()} == {"a", "b"}
        assert a.trace_id != b.trace_id

    def test_exception_marks_span_error_and_still_ends_it(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise ValueError("boom")
        (root,) = tracer.roots()
        child = root.children[0]
        assert child.status == "error"
        assert "ValueError" in child.error
        assert root.status == "error"
        assert root.finished and child.finished

    def test_end_is_idempotent(self):
        tracer = obs.Tracer()
        span = tracer.begin("manual")
        tracer.end(span)
        first = span.end_ns
        tracer.end(span, error=RuntimeError("late"))
        assert span.end_ns == first
        assert span.status == "ok"
        assert len(tracer.roots()) == 1

    def test_self_time_partitions_duration(self):
        tracer = obs.Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                _busy()
            with tracer.span("b"):
                _busy()
        child_ns = sum(c.duration_ns for c in root.children)
        assert root.self_ns() == root.duration_ns - child_ns
        total_self = sum(s.self_ns() for s in root.walk())
        assert total_self == root.duration_ns


class TestCrossThread:
    def test_explicit_parent_stitches_across_threads(self):
        tracer = obs.Tracer()
        root = tracer.begin("request", parent=None)

        def worker():
            span = tracer.begin("work", parent=root)
            _busy()
            tracer.end(span)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.end(root)
        (got,) = tracer.roots()
        assert [s.name for s in got.walk()] == ["request", "work"]
        assert got.children[0].thread_id != got.thread_id

    def test_thread_local_stacks_do_not_leak_across_threads(self):
        tracer = obs.Tracer()
        seen = []

        def worker():
            seen.append(tracer.current())

        with tracer.span("main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]

    def test_concurrent_spans_are_all_collected(self):
        tracer = obs.Tracer()

        def worker(i):
            with tracer.span(f"job.{i % 3}"):
                with tracer.span("step"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots()
        assert len(roots) == 8
        assert all(len(r.children) == 1 for r in roots)


class TestDisabledPath:
    def test_module_span_returns_null_singleton_when_off(self):
        assert obs.get_tracer() is None
        assert obs.span("anything") is obs.NULL_SPAN
        assert obs.span("other", k=1) is obs.span("different")

    def test_null_span_enter_yields_none(self):
        with obs.span("off") as span:
            assert span is None

    def test_disabled_tracer_span_is_null(self):
        tracer = obs.Tracer()
        tracer.enabled = False
        assert tracer.span("x") is obs.NULL_SPAN
        assert tracer.roots() == []

    def test_installed_restores_previous(self):
        first = obs.install(obs.Tracer())
        with obs.installed(obs.Tracer()) as second:
            assert obs.get_tracer() is second
        assert obs.get_tracer() is first

    def test_no_wall_clock_apis_in_span_lifecycle(self, monkeypatch):
        """Span bodies must never read the wall clock (NTP steps would
        corrupt durations): time.time / time.time_ns are rigged to blow
        up for the whole span lifecycle."""

        def forbidden(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("wall-clock API called inside repro.obs")

        monkeypatch.setattr(time, "time", forbidden)
        monkeypatch.setattr(time, "time_ns", forbidden)
        monkeypatch.setattr(time, "monotonic", forbidden)
        tracer = obs.Tracer()
        with obs.installed(tracer):
            with obs.span("root", k=1):
                with obs.span("child"):
                    pass
        (root,) = tracer.roots()
        assert root.duration_ns >= 0
        span_records([root])
        chrome_trace([root])
        overhead_report([root])


class TestMaxRoots:
    def test_oldest_roots_drop_when_bounded(self):
        tracer = obs.Tracer(max_roots=2)
        for i in range(5):
            with tracer.span(f"r{i}"):
                pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["r3", "r4"]
        assert tracer.stats()["dropped_roots"] == 3

    def test_bad_max_roots_rejected(self):
        with pytest.raises(ValueError):
            obs.Tracer(max_roots=0)

    def test_drain_empties_the_tracer(self):
        tracer = obs.Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.roots() == []


def _sample_tree(tracer):
    with tracer.span("serve.request", nnz=42) as root:
        with tracer.span("tune.decide", format="CSR"):
            _busy()
        with tracer.span("kernel.execute"):
            _busy()
    return root


class TestExports:
    def test_jsonl_round_trips_every_span(self, tmp_path):
        tracer = obs.Tracer()
        root = _sample_tree(tracer)
        text = to_jsonl(tracer.roots())
        records = [json.loads(line) for line in text.splitlines()]
        assert len(records) == 3
        by_name = {r["name"]: r for r in records}
        assert by_name["serve.request"]["parent_id"] is None
        assert by_name["tune.decide"]["parent_id"] == root.span_id
        assert by_name["serve.request"]["attrs"] == {"nnz": 42}
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(tracer.roots(), path) == 3
        assert [
            json.loads(line) for line in path.read_text().splitlines()
        ] == records

    def test_chrome_trace_is_valid_and_rebased(self, tmp_path):
        tracer = obs.Tracer()
        _sample_tree(tracer)
        doc = chrome_trace(tracer.roots())
        # Loadable as strict JSON.
        doc = json.loads(json.dumps(doc))
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        ms = [e for e in events if e["ph"] == "M"]
        assert len(xs) == 3
        assert ms and all(e["name"] == "thread_name" for e in ms)
        assert {e["ph"] for e in events} <= {"X", "M"}
        for event in xs:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 1
        assert min(e["ts"] for e in xs) == 0.0
        assert {e["cat"] for e in xs} == {"serve", "tune", "kernel"}
        path = tmp_path / "trace.json"
        assert write_chrome_trace(tracer.roots(), path) == 3
        json.loads(path.read_text())

    def test_empty_trace_exports(self, tmp_path):
        assert to_jsonl([]) == ""
        assert chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }
        assert write_jsonl([], tmp_path / "empty.jsonl") == 0

    def test_non_primitive_attrs_are_stringified(self):
        tracer = obs.Tracer()
        with tracer.span("root", path=object()):
            pass
        (record,) = span_records(tracer.roots())
        json.dumps(record)  # must not raise
        assert isinstance(record["attrs"]["path"], str)


class TestOverheadReport:
    def test_accounted_time_equals_wall_clock_exactly(self):
        tracer = obs.Tracer()
        for _ in range(3):
            _sample_tree(tracer)
        report = overhead_report(tracer.roots())
        assert report.requests == 3
        assert report.accounted_ns == report.wall_ns
        assert report.accounted_fraction == pytest.approx(1.0)

    def test_root_gap_is_an_explicit_untraced_row(self):
        tracer = obs.Tracer()
        _sample_tree(tracer)
        report = overhead_report(tracer.roots())
        names = [stage.name for stage in report.stages]
        assert "serve.request (untraced)" in names
        assert report.stage("tune.decide").count == 1
        with pytest.raises(KeyError):
            report.stage("nope")

    def test_describe_renders_every_stage(self):
        tracer = obs.Tracer()
        _sample_tree(tracer)
        text = overhead_report(tracer.roots()).describe()
        assert "tune.decide" in text
        assert "accounted" in text

    def test_render_tree_shows_nesting_and_attrs(self):
        tracer = obs.Tracer()
        root = _sample_tree(tracer)
        text = render_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("serve.request")
        assert "nnz=42" in lines[0]
        assert lines[1].startswith("  ")


class TestMetricsSink:
    def test_sink_feeds_span_histograms(self):
        from repro.serve.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tracer = obs.Tracer(sink=obs.metrics_sink(registry))
        with tracer.span("serve.plan"):
            with tracer.span("tune.decide"):
                pass
        snapshot = registry.snapshot()["histograms"]
        assert snapshot["span_serve_plan_seconds"]["count"] == 1
        assert snapshot["span_tune_decide_seconds"]["count"] == 1

    def test_sink_errors_do_not_hit_the_traced_code(self):
        calls = []

        def bad_sink(span):
            calls.append(span.name)

        tracer = obs.Tracer(sink=bad_sink)
        with tracer.span("ok"):
            pass
        assert calls == ["ok"]
