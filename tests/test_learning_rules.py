"""Ruleset extraction, tailoring, grouping and model persistence tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import LearningError
from repro.features.parameters import FeatureVector
from repro.learning import (
    GROUP_ORDER,
    Condition,
    LearningModel,
    Rule,
    RuleSet,
    TrainingDataset,
    cross_validate,
    extract_rules,
    group_rules,
    tailor_rules,
    train_boosted,
    train_model,
    train_tree,
)
from repro.types import FormatName


def make_record(**overrides) -> FeatureVector:
    base = dict(
        m=1000, n=1000, ndiags=200, ntdiags_ratio=0.1, nnz=8000,
        aver_rd=8.0, max_rd=20, var_rd=4.0, er_dia=0.04, er_ell=0.4,
        r=math.inf, best_format=FormatName.CSR,
    )
    base.update(overrides)
    return FeatureVector(**base)


def four_class_dataset(n: int = 30, noise: float = 0.0) -> TrainingDataset:
    """A dataset mirroring the real decision structure."""
    rng = np.random.default_rng(7)
    records = []
    for _ in range(n):
        records.append(make_record(
            ntdiags_ratio=float(rng.uniform(0.7, 1.0)),
            er_dia=float(rng.uniform(0.7, 1.0)),
            best_format=FormatName.DIA,
        ))
        records.append(make_record(
            var_rd=0.0, er_ell=1.0, max_rd=4, aver_rd=4.0,
            best_format=FormatName.ELL,
        ))
        records.append(make_record(
            aver_rd=float(rng.uniform(20, 100)),
            best_format=FormatName.CSR,
        ))
        records.append(make_record(
            r=float(rng.uniform(1.5, 3.0)), var_rd=100.0, aver_rd=3.0,
            best_format=FormatName.COO,
        ))
    if noise > 0:
        noisy = []
        formats = [FormatName.DIA, FormatName.ELL, FormatName.CSR,
                   FormatName.COO]
        for r in records:
            if rng.random() < noise:
                r = r.with_label(formats[int(rng.integers(0, 4))])
            noisy.append(r)
        records = noisy
    return TrainingDataset(tuple(records))


class TestConditionsAndRules:
    def test_condition_matching(self) -> None:
        cond = Condition("aver_rd", "<=", 5.0)
        assert cond.matches(make_record(aver_rd=4.0))
        assert not cond.matches(make_record(aver_rd=6.0))

    def test_condition_renders_paper_name(self) -> None:
        assert str(Condition("ntdiags_ratio", ">", 0.5)) == "NTdiags_ratio > 0.5"

    def test_rule_if_then_rendering(self) -> None:
        rule = Rule(
            conditions=(Condition("var_rd", "<=", 0.5),),
            format_name=FormatName.ELL,
            covered=10,
            correct=9,
        )
        text = str(rule)
        assert text.startswith("IF var_RD <= 0.5 THEN ELL")

    def test_confidence_is_raw_ratio(self) -> None:
        # The paper's definition: correctly classified / covered.
        rule = Rule((), FormatName.CSR, covered=10, correct=9)
        assert rule.confidence == pytest.approx(0.9)
        assert Rule((), FormatName.CSR).confidence == 0.0

    def test_laplace_confidence_shades_small_rules(self) -> None:
        rule = Rule((), FormatName.CSR, covered=10, correct=10)
        assert rule.laplace_confidence == pytest.approx(11 / 12)
        assert rule.confidence == 1.0

    def test_contribution_counts_errors_against(self) -> None:
        good = Rule((), FormatName.CSR, covered=10, correct=9)
        bad = Rule((), FormatName.CSR, covered=10, correct=4)
        assert good.contribution > 0 > bad.contribution


class TestRulesetExtraction:
    def test_rules_cover_all_classes(self) -> None:
        ds = four_class_dataset()
        ruleset = extract_rules(train_tree(ds, min_leaf=2), ds)
        predicted_classes = {r.format_name for r in ruleset.rules}
        assert predicted_classes == set(GROUP_ORDER)

    def test_ruleset_accuracy_close_to_tree(self) -> None:
        ds = four_class_dataset(noise=0.1)
        tree = train_tree(ds, min_leaf=2)
        ruleset = extract_rules(tree, ds)
        assert ruleset.accuracy(ds) >= tree.accuracy(ds) - 0.05

    def test_conditions_are_simplified(self) -> None:
        ds = four_class_dataset(noise=0.05)
        ruleset = extract_rules(train_tree(ds, min_leaf=2), ds)
        for rule in ruleset.rules:
            seen = set()
            for cond in rule.conditions:
                key = (cond.attribute, cond.operator)
                assert key not in seen, f"unsimplified rule: {rule}"
                seen.add(key)

    def test_first_match_semantics(self) -> None:
        rules = (
            Rule((Condition("aver_rd", "<=", 5.0),), FormatName.COO, 5, 5),
            Rule((), FormatName.ELL, 20, 12),
        )
        rs = RuleSet(rules=rules, default_format=FormatName.CSR)
        assert rs.predict(make_record(aver_rd=3.0)) is FormatName.COO
        assert rs.predict(make_record(aver_rd=9.0)) is FormatName.ELL

    def test_default_when_nothing_matches(self) -> None:
        rs = RuleSet(
            rules=(Rule((Condition("m", ">", 1e9),), FormatName.DIA, 1, 1),),
            default_format=FormatName.CSR,
        )
        fmt, conf = rs.predict_with_confidence(make_record())
        assert fmt is FormatName.CSR
        assert conf == 0.0


class TestTailoringAndGrouping:
    def test_tailoring_keeps_accuracy(self) -> None:
        ds = four_class_dataset(noise=0.1)
        full = extract_rules(train_tree(ds, min_leaf=2), ds)
        tailored = tailor_rules(full, ds, accuracy_gap=0.01)
        assert len(tailored) <= len(full)
        assert tailored.accuracy(ds) >= full.accuracy(ds) - 0.011

    def test_group_order_is_dia_ell_csr_coo(self) -> None:
        ds = four_class_dataset()
        model = train_model(ds, min_leaf=2)
        assert tuple(g.format_name for g in model.grouped.groups) == GROUP_ORDER

    def test_format_confidence_is_group_max(self) -> None:
        rules = (
            Rule((), FormatName.DIA, covered=10, correct=5),
            Rule((), FormatName.DIA, covered=20, correct=20),
        )
        grouped = group_rules(RuleSet(rules, FormatName.CSR))
        dia = grouped.group(FormatName.DIA)
        assert dia.format_confidence == pytest.approx(1.0)

    def test_empty_group_confidence_zero(self) -> None:
        grouped = group_rules(RuleSet((), FormatName.CSR))
        assert grouped.group(FormatName.DIA).format_confidence == 0.0


class TestModel:
    def test_model_predicts_all_classes(self) -> None:
        ds = four_class_dataset()
        model = train_model(ds, min_leaf=2)
        assert model.accuracy(ds) > 0.9

    def test_model_confidence_in_unit_interval(self) -> None:
        ds = four_class_dataset(noise=0.1)
        model = train_model(ds, min_leaf=2)
        for record in ds:
            _, conf, _ = model.predict(record)
            assert 0.0 <= conf <= 1.0

    def test_model_round_trip(self, tmp_path) -> None:
        ds = four_class_dataset(noise=0.05)
        model = train_model(ds, min_leaf=2)
        path = tmp_path / "model.json"
        model.save(path)
        loaded = LearningModel.load(path)
        for record in ds:
            assert loaded.predict_format(record) is model.predict_format(record)

    def test_malformed_model_file(self, tmp_path) -> None:
        path = tmp_path / "bad.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(LearningError, match="malformed"):
            LearningModel.load(path)

    def test_cross_validation_runs(self) -> None:
        result = cross_validate(four_class_dataset(noise=0.05), k=3)
        assert 0.5 <= result.mean_accuracy <= 1.0
        assert result.min_accuracy <= result.max_accuracy


class TestBoosting:
    def test_boosted_at_least_as_good_on_noisy_data(self) -> None:
        ds = four_class_dataset(n=40, noise=0.15)
        single = train_model(ds, min_leaf=2)
        boosted = train_boosted(ds, rounds=8, min_leaf=2, seed=1)
        assert boosted.accuracy(ds) >= single.accuracy(ds) - 0.05

    def test_boosting_validation(self) -> None:
        with pytest.raises(LearningError, match="rounds"):
            train_boosted(four_class_dataset(5), rounds=0)
        with pytest.raises(LearningError, match="empty"):
            train_boosted(TrainingDataset(()), rounds=2)
