"""Plan-cache tests: LRU under entry and byte budgets, invalidation,
thread safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.serve import CachedPlan, PlanCache, fingerprint
from repro.tuner.runtime import Decision
from repro.types import FormatName

from tests.conftest import random_csr


def _plan(matrix: CSRMatrix, kernel) -> CachedPlan:
    decision = Decision(
        format_name=FormatName.CSR,
        kernel=kernel,
        confidence=1.0,
        matched_rule=None,
        used_fallback=False,
        predicted_format=FormatName.CSR,
        matrix=matrix,
    )
    return CachedPlan(
        key=fingerprint(matrix),
        decision=decision,
        matrix_bytes=matrix.memory_bytes(),
    )


@pytest.fixture(scope="module")
def csr_kernel():
    from repro.kernels.base import kernels_for

    return kernels_for(FormatName.CSR)[0]


@pytest.fixture()
def matrices(rng):
    return [random_csr(rng, n_rows=30 + i) for i in range(8)]


class TestBasics:
    def test_get_miss_then_hit(self, matrices, csr_kernel) -> None:
        cache = PlanCache(max_entries=4)
        plan = _plan(matrices[0], csr_kernel)
        assert cache.get(plan.key) is None
        assert cache.put(plan)
        assert cache.get(plan.key) is plan
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.hit_rate == 0.5

    def test_plan_executes(self, matrices, csr_kernel) -> None:
        matrix = matrices[0]
        plan = _plan(matrix, csr_kernel)
        x = np.ones(matrix.n_cols)
        np.testing.assert_allclose(plan.execute(x), matrix.spmv(x), atol=1e-9)

    def test_requires_converted_matrix(self, csr_kernel) -> None:
        decision = Decision(
            format_name=FormatName.CSR,
            kernel=csr_kernel,
            confidence=1.0,
            matched_rule=None,
            used_fallback=False,
            predicted_format=FormatName.CSR,
            matrix=None,
        )
        with pytest.raises(ValueError, match="converted matrix"):
            CachedPlan(key=None, decision=decision, matrix_bytes=0)

    def test_validation(self) -> None:
        with pytest.raises(ValueError, match="max_entries"):
            PlanCache(max_entries=0)
        with pytest.raises(ValueError, match="max_bytes"):
            PlanCache(max_bytes=0)


class TestLru:
    def test_entry_cap_evicts_lru(self, matrices, csr_kernel) -> None:
        cache = PlanCache(max_entries=3)
        plans = [_plan(m, csr_kernel) for m in matrices[:4]]
        for plan in plans[:3]:
            cache.put(plan)
        cache.get(plans[0].key)  # refresh 0: now 1 is LRU
        cache.put(plans[3])
        assert plans[1].key not in cache
        assert plans[0].key in cache
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 1

    def test_byte_budget_evicts(self, matrices, csr_kernel) -> None:
        plans = [_plan(m, csr_kernel) for m in matrices[:3]]
        budget = plans[0].matrix_bytes + plans[1].matrix_bytes
        cache = PlanCache(max_entries=100, max_bytes=budget)
        assert cache.put(plans[0]) and cache.put(plans[1])
        cache.put(plans[2])  # overflows the byte budget -> evict LRU
        assert plans[0].key not in cache
        assert cache.bytes_used <= budget

    def test_oversized_plan_rejected(self, matrices, csr_kernel) -> None:
        plan = _plan(matrices[0], csr_kernel)
        cache = PlanCache(max_entries=4, max_bytes=plan.matrix_bytes - 1)
        assert not cache.put(plan)
        assert len(cache) == 0
        assert cache.stats()["rejected"] == 1

    def test_reinsert_replaces(self, matrices, csr_kernel) -> None:
        cache = PlanCache(max_entries=4)
        first = _plan(matrices[0], csr_kernel)
        second = _plan(matrices[0], csr_kernel)
        cache.put(first)
        cache.put(second)
        assert len(cache) == 1
        assert cache.get(first.key) is second
        assert cache.bytes_used == second.matrix_bytes


class TestInvalidation:
    def test_invalidate_and_clear(self, matrices, csr_kernel) -> None:
        cache = PlanCache(max_entries=8)
        plans = [_plan(m, csr_kernel) for m in matrices[:3]]
        for plan in plans:
            cache.put(plan)
        assert cache.invalidate(plans[1].key)
        assert not cache.invalidate(plans[1].key)
        assert plans[1].key not in cache
        assert cache.clear() == 2
        assert len(cache) == 0 and cache.bytes_used == 0


class TestThreadSafety:
    def test_concurrent_put_get_invalidate(self, csr_kernel, rng) -> None:
        matrices = [random_csr(rng, n_rows=20 + i) for i in range(16)]
        plans = [_plan(m, csr_kernel) for m in matrices]
        cache = PlanCache(max_entries=8)
        errors = []

        def worker(seed: int) -> None:
            local = np.random.default_rng(seed)
            try:
                for _ in range(300):
                    plan = plans[int(local.integers(len(plans)))]
                    op = int(local.integers(3))
                    if op == 0:
                        cache.put(plan)
                    elif op == 1:
                        got = cache.get(plan.key)
                        assert got is None or got.key == plan.key
                    else:
                        cache.invalidate(plan.key)
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8
        stats = cache.stats()
        assert stats["bytes"] == sum(
            p.matrix_bytes
            for p in plans
            if p.key in cache
        )
