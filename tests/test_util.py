"""Tests for the shared utilities (timing, rng, stats, validation)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import FormatError
from repro.util import Timer, make_rng, median_time
from repro.util.rng import derive_rng
from repro.util.stats import (
    gini_like_variance,
    interval_histogram,
)
from repro.util.validation import (
    check_index_range,
    check_nonnegative,
    check_positive,
    check_same_length,
    check_sorted_within_rows,
)


class TestTiming:
    def test_timer_accumulates(self) -> None:
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first >= 0.01

    def test_median_time_positive(self) -> None:
        seconds = median_time(lambda: sum(range(1000)), repeats=3, warmup=1)
        assert seconds > 0.0

    def test_median_time_odd_and_even_repeats(self) -> None:
        for repeats in (3, 4):
            assert median_time(lambda: None, repeats=repeats) >= 0.0

    def test_median_time_validates_repeats(self) -> None:
        with pytest.raises(ValueError, match="repeats"):
            median_time(lambda: None, repeats=0)


class TestRng:
    def test_make_rng_from_seed_deterministic(self) -> None:
        assert (
            make_rng(42).integers(0, 1000) == make_rng(42).integers(0, 1000)
        )

    def test_make_rng_passthrough(self) -> None:
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_derive_rng_independent_streams(self) -> None:
        parent = make_rng(7)
        child_a = derive_rng(parent, 1)
        child_b = derive_rng(parent, 2)
        assert child_a.integers(0, 10**9) != child_b.integers(0, 10**9)


class TestStats:
    def test_interval_histogram_buckets(self) -> None:
        hist = interval_histogram([1, 5, 15, 100], edges=[0, 10, 50])
        assert hist.counts == (2, 1, 1)
        assert hist.labels == ["[0, 10)", "[10, 50)", ">=50"]

    def test_histogram_fractions(self) -> None:
        hist = interval_histogram([1, 1, 9], edges=[0, 5])
        assert hist.fractions == [pytest.approx(2 / 3), pytest.approx(1 / 3)]

    def test_histogram_empty_values(self) -> None:
        hist = interval_histogram([], edges=[0, 1])
        assert hist.fractions == [0.0, 0.0]

    def test_histogram_rejects_no_edges(self) -> None:
        with pytest.raises(ValueError, match="edges"):
            interval_histogram([1.0], edges=[])

    def test_below_range_clamped_to_first(self) -> None:
        hist = interval_histogram([-5.0], edges=[0, 10])
        assert hist.counts == (1, 0)

    def test_gini_like_variance_matches_numpy(self) -> None:
        degrees = np.array([2, 2, 3, 2])
        assert gini_like_variance(degrees, 2.25) == pytest.approx(
            np.var(degrees)
        )

    def test_gini_like_variance_empty(self) -> None:
        assert gini_like_variance(np.zeros(0), 0.0) == 0.0


class TestValidation:
    def test_check_positive(self) -> None:
        assert check_positive("x", 3) == 3
        with pytest.raises(FormatError, match="positive"):
            check_positive("x", 0)

    def test_check_nonnegative(self) -> None:
        assert check_nonnegative("x", 0) == 0
        with pytest.raises(FormatError, match="non-negative"):
            check_nonnegative("x", -1)

    def test_check_index_range_empty_ok(self) -> None:
        check_index_range("idx", np.zeros(0, dtype=np.int64), 5)

    def test_check_index_range_bounds(self) -> None:
        with pytest.raises(FormatError, match="out of range"):
            check_index_range("idx", np.array([5]), 5)

    def test_check_same_length(self) -> None:
        with pytest.raises(FormatError, match="equal length"):
            check_same_length(("a", "b"), (np.zeros(2), np.zeros(3)))

    def test_sorted_within_rows_boundary_reset_ok(self) -> None:
        # Indices restart at a row boundary: valid.
        ptr = np.array([0, 2, 4])
        indices = np.array([0, 5, 0, 5])
        assert check_sorted_within_rows(ptr, indices)

    def test_sorted_within_rows_detects_duplicates(self) -> None:
        ptr = np.array([0, 2])
        indices = np.array([3, 3])
        assert not check_sorted_within_rows(ptr, indices)

    def test_sorted_within_rows_single_entry(self) -> None:
        assert check_sorted_within_rows(np.array([0, 1]), np.array([7]))
