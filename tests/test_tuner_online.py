"""Online-learning and host-calibration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import generate_collection, graphs, random_sparse
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.machine.calibrate import calibrate_host
from repro.tuner import SMAT, SmatConfig
from repro.tuner.online import OnlineSmat
from repro.types import Precision


@pytest.fixture(scope="module")
def smat():
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


class TestOnlineSmat:
    def test_fallbacks_become_training_records(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        online = OnlineSmat(forced, retrain_every=1000)
        for seed in range(5):
            online.decide(
                random_sparse.uniform_random(1500, 1500, 8.0, seed=seed)
            )
        assert online.observations == 5
        assert all(
            r.best_format is not None for r in online.new_records
        )

    def test_fallback_label_reuses_decision_snapshot(self, smat) -> None:
        """ISSUE satellite: the fallback already snapshotted every feature,
        so labelling its training record must not extract again."""
        from repro.features.extract import EXTRACTION_EVENTS

        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        online = OnlineSmat(forced, retrain_every=1000)
        matrix = random_sparse.uniform_random(1500, 1500, 8.0, seed=3)
        before = EXTRACTION_EVENTS.count
        decision = online.decide(matrix)
        assert decision.used_fallback
        # Exactly one structure pass: the decision's own lazy snapshot.
        # A redundant labelling extraction would make this 2.
        assert EXTRACTION_EVENTS.delta_since(before) == 1
        assert online.observations == 1
        record = online.new_records[-1]
        assert record.best_format is not None
        assert record.as_dict() == pytest.approx(
            decision.features.with_label(record.best_format).as_dict()
        )

    def test_model_hits_add_nothing(self, smat) -> None:
        online = OnlineSmat(smat, retrain_every=1000)
        from repro.collection import banded

        decision = online.decide(banded.banded_matrix(2000, 5, seed=1))
        if not decision.used_fallback:
            assert online.observations == 0

    def test_retraining_happens_on_schedule(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(
            smat.model, smat.kernels, smat.backend, config
        )
        online = OnlineSmat(forced, retrain_every=3)
        for seed in range(7):
            if seed % 2 == 0:
                matrix = random_sparse.uniform_random(
                    1500, 1500, 8.0, seed=seed
                )
            else:
                matrix = graphs.power_law_graph(
                    2000, exponent=2.2, seed=seed
                )
            online.decide(matrix)
        assert online.retrain_count >= 2

    def test_spmv_stays_correct_while_learning(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        online = OnlineSmat(forced, retrain_every=2)
        for seed in range(4):
            matrix = random_sparse.uniform_random(800, 800, 6.0, seed=seed)
            x = np.ones(800)
            y, _ = online.spmv(matrix, x)
            np.testing.assert_allclose(y, matrix.spmv(x), atol=1e-9)

    def test_validation(self, smat) -> None:
        with pytest.raises(ValueError, match="retrain_every"):
            OnlineSmat(smat, retrain_every=0)

    def test_delegates_to_wrapped_smat(self, smat) -> None:
        online = OnlineSmat(smat)
        assert online.kernels is smat.kernels


class TestOnlineSmatConcurrency:
    """ISSUE satellite: threads sharing one OnlineSmat (e.g. through a
    serving engine) must not corrupt the record store or observe a
    half-retrained model."""

    def test_concurrent_decides_lose_no_records(self, smat) -> None:
        import threading

        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        online = OnlineSmat(forced, retrain_every=10)
        per_thread, threads_n = 20, 4
        errors = []

        def worker(slot: int) -> None:
            try:
                for i in range(per_thread):
                    matrix = random_sparse.uniform_random(
                        600, 600, 6.0, seed=1000 * slot + i
                    )
                    online.decide(matrix)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        # Every fallback observation survived: no lost updates.
        assert online.observations == per_thread * threads_n
        records = online.records_snapshot()
        assert len(records) == per_thread * threads_n
        assert all(r.best_format is not None for r in records)

    def test_reads_during_concurrent_retrain(self, smat) -> None:
        import threading

        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        online = OnlineSmat(forced, retrain_every=5)
        stop = threading.Event()
        errors = []

        def reader() -> None:
            try:
                previous = 0
                while not stop.is_set():
                    snapshot = online.records_snapshot()
                    # Monotone growth, never a torn read.
                    assert len(snapshot) >= previous
                    previous = len(snapshot)
                    # The model reference is always a complete model.
                    assert online.smat.model.grouped is not None
            except BaseException as exc:
                errors.append(exc)

        def writer(slot: int) -> None:
            try:
                for i in range(12):
                    if slot % 2 == 0:
                        matrix = random_sparse.uniform_random(
                            700, 700, 7.0, seed=300 * slot + i
                        )
                    else:
                        matrix = graphs.power_law_graph(
                            900, exponent=2.2, seed=300 * slot + i
                        )
                    online.decide(matrix)
            except BaseException as exc:
                errors.append(exc)

        reader_thread = threading.Thread(target=reader)
        writers = [
            threading.Thread(target=writer, args=(slot,))
            for slot in range(2)
        ]
        reader_thread.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        reader_thread.join()

        assert not errors
        assert online.observations == 24
        assert online.retrain_count >= 2


class TestRetrainTrigger:
    """ISSUE satellite: a retrain skipped for a single-class dataset must
    re-fire as soon as a second class appears — the old exact-multiple
    trigger (``len % retrain_every == 0``) stayed silent until the next
    boundary."""

    def test_refires_after_single_class_skip(self, smat) -> None:
        config = SmatConfig(always_measure=True)
        forced = SMAT(smat.model, smat.kernels, smat.backend, config)
        online = OnlineSmat(forced, retrain_every=3)
        # Three dense uniform matrices all label CSR: the scheduled
        # retrain at record 3 skips (one class) and must stay armed.
        for seed in range(3):
            online.decide(
                random_sparse.uniform_random(1200, 1200, 8.0, seed=seed)
            )
        assert online.retrain_count == 0
        labels = {r.best_format for r in online.records_snapshot()}
        assert len(labels) == 1
        # Record 4 brings a second class.  4 % 3 != 0, so the buggy
        # trigger would wait until record 6; the fixed one fires now.
        online.decide(graphs.power_law_graph(2000, exponent=2.2, seed=5))
        assert len({r.best_format for r in online.records_snapshot()}) == 2
        assert online.retrain_count == 1
        assert online.model_epoch == 1

    def test_model_epoch_tracks_every_swap(self, smat) -> None:
        online = OnlineSmat(smat, retrain_every=1000)
        assert online.model_epoch == 0
        assert online.install_model(smat.model) == 1
        assert online.install_model(smat.model) == 2
        assert online.model_epoch == 2
        # install_model is a push, not a retrain.
        assert online.retrain_count == 0


class TestSpmvRebuild:
    """ISSUE satellite: re-materializing a decision's missing conversion
    must honour the configured fill budget (it used to pass
    ``fill_budget=None`` and happily pay pathological blow-ups)."""

    def fake_dia_decision(self, smat):
        from repro.tuner.runtime import Decision
        from repro.types import FormatName

        return Decision(
            format_name=FormatName.DIA,
            kernel=smat.kernels.kernel_for(FormatName.DIA),
            confidence=0.9,
            matched_rule=None,
            used_fallback=False,
            predicted_format=FormatName.DIA,
        )

    def test_blown_budget_degrades_to_csr(self, smat) -> None:
        from repro.types import FormatName

        tuner = SMAT(smat.model, smat.kernels, smat.backend, SmatConfig())
        online = OnlineSmat(tuner, retrain_every=1000)
        # A uniform random matrix's DIA fill blows any sane budget; with
        # the old fill_budget=None rebuild this would materialize it.
        matrix = random_sparse.uniform_random(800, 800, 6.0, seed=2)
        tuner.decide = lambda m, deadline=None: self.fake_dia_decision(
            smat
        )
        x = np.ones(800)
        y, decision = online.spmv(matrix, x)
        np.testing.assert_allclose(y, matrix.spmv(x), atol=1e-9)
        assert decision.format_name is FormatName.CSR
        assert decision.degraded_to_csr
        assert decision.predicted_format is FormatName.DIA

    def test_feasible_rebuild_converts_under_budget(self, smat) -> None:
        from repro.collection import banded
        from repro.types import FormatName

        tuner = SMAT(smat.model, smat.kernels, smat.backend, SmatConfig())
        online = OnlineSmat(tuner, retrain_every=1000)
        matrix = banded.banded_matrix(2500, 7, seed=3, spread=3)
        tuner.decide = lambda m, deadline=None: self.fake_dia_decision(
            smat
        )
        x = np.ones(matrix.n_cols)
        y, decision = online.spmv(matrix, x)
        np.testing.assert_allclose(y, matrix.spmv(x), atol=1e-9)
        assert decision.format_name is FormatName.DIA
        assert decision.matrix is not None
        assert not decision.degraded_to_csr


class TestCalibration:
    def test_calibrated_architecture_sane(self) -> None:
        result = calibrate_host(repeats=2)
        arch = result.architecture
        assert arch.memory_bandwidth_gbs > 0
        assert arch.cache_bandwidth_gbs >= arch.memory_bandwidth_gbs
        assert result.small_seconds < result.large_seconds
        assert "calibrated" in result.describe()

    def test_calibrated_backend_ranks_formats(self) -> None:
        import math

        from repro.features.parameters import FeatureVector
        from repro.kernels.strategies import Strategy, strategy_set
        from repro.machine import estimate_spmv_time
        from repro.types import FormatName

        result = calibrate_host(repeats=2)
        fv = FeatureVector(
            m=50_000, n=50_000, ndiags=5, ntdiags_ratio=1.0, nnz=250_000,
            aver_rd=5.0, max_rd=5, var_rd=0.1, er_dia=1.0, er_ell=1.0,
            r=math.inf,
        )
        strategies = strategy_set(Strategy.VECTORIZE)
        dia = estimate_spmv_time(
            result.architecture, FormatName.DIA, fv,
            Precision.DOUBLE, strategies,
        )
        csr = estimate_spmv_time(
            result.architecture, FormatName.CSR, fv,
            Precision.DOUBLE, strategies,
        )
        # On any host the calibrated model keeps DIA ahead on banded input,
        # matching the measured wall-clock ordering.
        assert dia < csr
