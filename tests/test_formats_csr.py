"""Unit tests for the CSR format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix


class TestConstruction:
    def test_paper_example_arrays(self, paper_csr: CSRMatrix) -> None:
        # Exactly the arrays printed in Figure 2a.
        assert paper_csr.ptr.tolist() == [0, 2, 4, 7, 9]
        assert paper_csr.indices.tolist() == [0, 1, 1, 2, 0, 2, 3, 1, 3]
        assert paper_csr.data.tolist() == [1, 5, 2, 6, 8, 3, 7, 9, 4]

    def test_shape_and_nnz(self, paper_csr: CSRMatrix) -> None:
        assert paper_csr.shape == (4, 4)
        assert paper_csr.nnz == 9

    def test_round_trip_dense(self, paper_dense: np.ndarray) -> None:
        csr = CSRMatrix.from_dense(paper_dense)
        np.testing.assert_array_equal(csr.to_dense(), paper_dense)

    def test_from_triplets_unordered(self) -> None:
        csr = CSRMatrix.from_triplets(
            rows=[2, 0, 1, 0], cols=[1, 3, 0, 0], data=[4.0, 3.0, 2.0, 1.0],
            shape=(3, 4),
        )
        expected = np.zeros((3, 4))
        expected[2, 1], expected[0, 3], expected[1, 0], expected[0, 0] = 4, 3, 2, 1
        np.testing.assert_array_equal(csr.to_dense(), expected)

    def test_from_triplets_sums_duplicates(self) -> None:
        csr = CSRMatrix.from_triplets(
            rows=[1, 1, 1], cols=[2, 2, 0], data=[1.0, 2.0, 5.0], shape=(3, 3)
        )
        assert csr.nnz == 2
        assert csr.to_dense()[1, 2] == 3.0

    def test_unsorted_rows_are_canonicalised(self) -> None:
        # Row 0 given with columns out of order.
        csr = CSRMatrix(
            ptr=[0, 3, 3],
            indices=[2, 0, 1],
            data=[30.0, 10.0, 20.0],
            shape=(2, 3),
        )
        assert csr.indices.tolist() == [0, 1, 2]
        assert csr.data.tolist() == [10.0, 20.0, 30.0]

    def test_empty_matrix(self) -> None:
        csr = CSRMatrix(ptr=[0, 0, 0], indices=[], data=np.zeros(0), shape=(2, 5))
        assert csr.nnz == 0
        np.testing.assert_array_equal(csr.spmv(np.ones(5)), np.zeros(2))

    def test_single_precision_dtype_kept(self, paper_dense: np.ndarray) -> None:
        csr = CSRMatrix.from_dense(paper_dense.astype(np.float32))
        assert csr.dtype == np.float32
        assert csr.spmv(np.ones(4, dtype=np.float32)).dtype == np.float32


class TestValidation:
    def test_bad_ptr_length(self) -> None:
        with pytest.raises(FormatError, match="ptr"):
            CSRMatrix(ptr=[0, 1], indices=[0], data=[1.0], shape=(2, 2))

    def test_ptr_not_starting_at_zero(self) -> None:
        with pytest.raises(FormatError, match="ptr"):
            CSRMatrix(ptr=[1, 1, 1], indices=[], data=np.zeros(0), shape=(2, 2))

    def test_decreasing_ptr(self) -> None:
        with pytest.raises(FormatError, match="non-decreasing"):
            CSRMatrix(
                ptr=[0, 2, 1, 3], indices=[0, 1, 0], data=[1.0, 2.0, 3.0],
                shape=(3, 2),
            )

    def test_column_index_out_of_range(self) -> None:
        with pytest.raises(FormatError, match="out of range"):
            CSRMatrix(ptr=[0, 1], indices=[5], data=[1.0], shape=(1, 3))

    def test_mismatched_data_length(self) -> None:
        with pytest.raises(FormatError, match="equal length"):
            CSRMatrix(ptr=[0, 2], indices=[0, 1], data=[1.0], shape=(1, 2))

    def test_nonpositive_shape(self) -> None:
        with pytest.raises(FormatError, match="positive"):
            CSRMatrix(ptr=[0], indices=[], data=np.zeros(0), shape=(0, 3))

    def test_integer_dtype_rejected(self) -> None:
        with pytest.raises(ValueError, match="dtype"):
            CSRMatrix(
                ptr=[0, 1], indices=[0], data=np.array([1], dtype=np.int32),
                shape=(1, 1),
            )


class TestSpmv:
    def test_matches_dense(self, paper_csr: CSRMatrix, paper_dense) -> None:
        x = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(paper_csr.spmv(x), paper_dense @ x)

    def test_dimension_mismatch(self, paper_csr: CSRMatrix) -> None:
        with pytest.raises(FormatError, match="mismatch"):
            paper_csr.spmv(np.ones(5))

    def test_matrix_operand_rejected(self, paper_csr: CSRMatrix) -> None:
        with pytest.raises(FormatError, match="vector"):
            paper_csr.spmv(np.ones((4, 1)))


class TestStructureQueries:
    def test_row_degrees(self, paper_csr: CSRMatrix) -> None:
        assert paper_csr.row_degrees().tolist() == [2, 2, 3, 2]

    def test_diagonal_offsets(self, paper_csr: CSRMatrix) -> None:
        # Figure 2c: offsets are [-2, 0, 1].
        assert paper_csr.diagonal_offsets().tolist() == [-2, 0, 1]

    def test_memory_bytes_counts_all_arrays(self, paper_csr: CSRMatrix) -> None:
        expected = (
            paper_csr.ptr.nbytes
            + paper_csr.indices.nbytes
            + paper_csr.data.nbytes
        )
        assert paper_csr.memory_bytes() == expected

    def test_flop_count(self, paper_csr: CSRMatrix) -> None:
        assert paper_csr.flop_count() == 2 * paper_csr.nnz


class TestReferenceOracles:
    """The vectorized to_dense/spmv defaults vs their loop oracles.

    The duplicate-entry matrices go through ``from_triplets``, which sums
    duplicates at construction; values are small integers, so both code
    paths are exact and the comparison can be bitwise (``np.array_equal``).
    """

    def _duplicate_matrix(self) -> CSRMatrix:
        rows = np.array([0, 0, 0, 1, 2, 2, 3, 3, 3, 3])
        cols = np.array([1, 1, 3, 2, 0, 0, 3, 3, 3, 0])
        data = np.array([1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 3.0, 5.0, 7.0, 9.0])
        return CSRMatrix.from_triplets(rows, cols, data, (4, 4))

    def test_to_dense_matches_reference(self) -> None:
        matrix = self._duplicate_matrix()
        assert np.array_equal(
            matrix.to_dense(), matrix.to_dense(reference=True)
        )

    def test_to_dense_sums_duplicates(self) -> None:
        matrix = self._duplicate_matrix()
        dense = matrix.to_dense()
        assert dense[0, 1] == 3.0   # 1 + 2 summed at construction
        assert dense[2, 0] == 48.0  # 16 + 32
        assert dense[3, 3] == 15.0  # 3 + 5 + 7

    def test_spmv_matches_reference(self) -> None:
        matrix = self._duplicate_matrix()
        x = np.array([1.0, 2.0, 4.0, 8.0])
        assert np.array_equal(
            matrix.spmv(x), matrix.spmv(x, reference=True)
        )

    def test_spmv_empty_rows_and_zero_nnz(self) -> None:
        empty = CSRMatrix.from_dense(np.zeros((3, 3)))
        x = np.ones(3)
        assert np.array_equal(empty.spmv(x), np.zeros(3))
        assert np.array_equal(empty.spmv(x), empty.spmv(x, reference=True))
        assert np.array_equal(
            empty.to_dense(), empty.to_dense(reference=True)
        )
