"""I/O tests: Matrix Market and the feature database."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.features import extract_features
from repro.io import (
    FeatureDatabase,
    FeatureRecord,
    read_matrix_market,
    write_matrix_market,
)
from repro.types import FormatName
from tests.conftest import random_csr


class TestMatrixMarket:
    def test_round_trip(self, rng, tmp_path) -> None:
        matrix = random_csr(rng, 15, 12, 0.2)
        path = tmp_path / "m.mtx"
        write_matrix_market(matrix, path)
        loaded = read_matrix_market(path)
        np.testing.assert_allclose(
            loaded.to_dense(), matrix.to_dense(), atol=1e-15
        )

    def test_reads_symmetric(self, tmp_path) -> None:
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% a comment line\n"
            "3 3 4\n"
            "1 1 2.0\n"
            "2 1 -1.0\n"
            "2 2 2.0\n"
            "3 3 2.0\n"
        )
        matrix = read_matrix_market(path)
        dense = matrix.to_dense()
        assert dense[0, 1] == dense[1, 0] == -1.0
        assert matrix.nnz == 5

    def test_reads_pattern(self, tmp_path) -> None:
        path = tmp_path / "pat.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 2\n"
            "2 1\n"
        )
        matrix = read_matrix_market(path)
        assert matrix.to_dense()[0, 1] == 1.0

    def test_rejects_array_format(self, tmp_path) -> None:
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n")
        with pytest.raises(FormatError, match="coordinate"):
            read_matrix_market(path)

    def test_rejects_missing_header(self, tmp_path) -> None:
        path = tmp_path / "noheader.mtx"
        path.write_text("3 3 0\n")
        with pytest.raises(FormatError, match="header"):
            read_matrix_market(path)

    def test_rejects_truncated_entries(self, tmp_path) -> None:
        path = tmp_path / "trunc.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 5.0\n"
        )
        with pytest.raises(FormatError, match="truncated"):
            read_matrix_market(path)


class TestFeatureDatabase:
    def make_record(self, rng, name="mat", domain="graph") -> FeatureRecord:
        matrix = random_csr(rng, 20, 20, 0.2)
        features = extract_features(matrix).with_label(FormatName.CSR)
        return FeatureRecord(name=name, domain=domain, features=features)

    def test_append_and_iterate(self, rng, tmp_path) -> None:
        db = FeatureDatabase(tmp_path / "db.jsonl")
        db.append(self.make_record(rng, "a"))
        db.append(self.make_record(rng, "b", domain="structural"))
        records = list(db)
        assert [r.name for r in records] == ["a", "b"]
        assert records[1].domain == "structural"

    def test_round_trip_features(self, rng, tmp_path) -> None:
        db = FeatureDatabase(tmp_path / "db.jsonl")
        record = self.make_record(rng)
        db.write_all([record])
        loaded = next(iter(db))
        assert loaded.features == record.features

    def test_to_dataset(self, rng, tmp_path) -> None:
        db = FeatureDatabase(tmp_path / "db.jsonl")
        db.write_all([self.make_record(rng, str(i)) for i in range(5)])
        dataset = db.to_dataset()
        assert len(dataset) == 5

    def test_domain_counts(self, rng, tmp_path) -> None:
        db = FeatureDatabase(tmp_path / "db.jsonl")
        db.write_all(
            [
                self.make_record(rng, "a", "graph"),
                self.make_record(rng, "b", "graph"),
                self.make_record(rng, "c", "thermal"),
            ]
        )
        assert db.domain_counts() == {"graph": 2, "thermal": 1}

    def test_missing_file_iterates_empty(self, tmp_path) -> None:
        assert list(FeatureDatabase(tmp_path / "nope.jsonl")) == []
