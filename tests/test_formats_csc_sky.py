"""Tests for the CSC and SKY extension formats (Figure 5's remaining
MKL routines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConversionError, FormatError
from repro.formats import CSCMatrix, CSRMatrix, SKYMatrix, convert
from repro.formats.convert import (
    csc_to_csr,
    csr_to_csc,
    csr_to_sky,
    sky_to_csr,
)
from repro.kernels import find_kernel, kernels_for, strategy_set, Strategy
from repro.types import FormatName
from tests.conftest import random_csr


class TestCSC:
    def test_from_csr_layout(self, paper_csr) -> None:
        csc = CSCMatrix.from_csr(paper_csr)
        # Column 0 holds rows {0, 2}; column 1 holds rows {0, 1, 3}.
        assert csc.ptr.tolist() == [0, 2, 5, 7, 9]
        assert csc.indices[:2].tolist() == [0, 2]
        assert csc.data[:2].tolist() == [1.0, 8.0]

    def test_round_trip(self, rng) -> None:
        csr = random_csr(rng, 20, 14, 0.25)
        csc, _ = csr_to_csc(csr)
        back, _ = csc_to_csr(csc)
        np.testing.assert_array_equal(back.to_dense(), csr.to_dense())

    def test_spmv_matches_dense(self, rng) -> None:
        csr = random_csr(rng, 17, 23, 0.2)
        csc = CSCMatrix.from_csr(csr)
        x = rng.standard_normal(23)
        np.testing.assert_allclose(csc.spmv(x), csr.to_dense() @ x, atol=1e-9)

    def test_column_degrees(self, paper_csr) -> None:
        csc = CSCMatrix.from_csr(paper_csr)
        assert csc.column_degrees().tolist() == [2, 3, 2, 2]

    def test_bad_ptr_length(self) -> None:
        with pytest.raises(FormatError, match="n_cols"):
            CSCMatrix(ptr=[0, 1], indices=[0], data=[1.0], shape=(2, 3))

    def test_unsorted_rows_rejected(self) -> None:
        with pytest.raises(FormatError, match="increasing"):
            CSCMatrix(
                ptr=[0, 2], indices=[1, 0], data=[1.0, 2.0], shape=(2, 1)
            )

    def test_kernels_match_reference(self, rng) -> None:
        csr = random_csr(rng, 30, 30, 0.15)
        csc = CSCMatrix.from_csr(csr)
        x = rng.standard_normal(30)
        expected = csr.to_dense() @ x
        for kernel in kernels_for(FormatName.CSC):
            np.testing.assert_allclose(
                kernel(csc, x), expected, atol=1e-9, err_msg=kernel.name
            )

    def test_generic_convert_roundtrip(self, rng) -> None:
        csr = random_csr(rng, 12, 19, 0.3)
        csc, cost = convert(csr, FormatName.CSC)
        assert cost.csr_spmv_units() > 0
        np.testing.assert_array_equal(csc.to_dense(), csr.to_dense())


class TestSKY:
    def banded(self, n: int = 30) -> CSRMatrix:
        dense = np.zeros((n, n))
        for k in (-2, -1, 0, 1):
            idx = np.arange(max(0, -k), min(n, n - k))
            dense[idx, idx + k] = 1.0 + k * 0.1
        return CSRMatrix.from_dense(dense)

    def test_profile_widths(self) -> None:
        sky = SKYMatrix.from_csr(self.banded(10))
        widths = np.diff(sky.pointers)
        # Row 0 holds only the diagonal; interior rows reach 2 left.
        assert widths[0] == 1
        assert widths[5] == 3

    def test_round_trip(self, rng) -> None:
        csr = self.banded(25)
        sky, _ = csr_to_sky(csr)
        back, _ = sky_to_csr(sky)
        np.testing.assert_allclose(back.to_dense(), csr.to_dense())

    def test_round_trip_with_scattered_upper(self, rng) -> None:
        dense = self.banded(20).to_dense()
        dense[2, 15] = 7.0
        dense[0, 19] = -3.0
        csr = CSRMatrix.from_dense(dense)
        sky, _ = csr_to_sky(csr, fill_budget=None)
        assert sky.upper is not None
        np.testing.assert_allclose(sky.to_dense(), dense)

    def test_spmv_matches_dense(self, rng) -> None:
        csr = self.banded(40)
        sky, _ = csr_to_sky(csr)
        x = rng.standard_normal(40)
        np.testing.assert_allclose(sky.spmv(x), csr.to_dense() @ x, atol=1e-9)

    def test_kernels_match_reference(self, rng) -> None:
        dense = self.banded(30).to_dense()
        dense[1, 20] = 4.0  # force an upper remainder
        csr = CSRMatrix.from_dense(dense)
        sky, _ = csr_to_sky(csr, fill_budget=None)
        x = rng.standard_normal(30)
        expected = dense @ x
        for kernel in kernels_for(FormatName.SKY):
            np.testing.assert_allclose(
                kernel(sky, x), expected, atol=1e-9, err_msg=kernel.name
            )

    def test_rectangular_rejected(self, rng) -> None:
        with pytest.raises(ConversionError, match="square"):
            csr_to_sky(random_csr(rng, 5, 7, 0.4))

    def test_fill_budget_guards_wide_profiles(self) -> None:
        # A first-column entry in the last row makes the profile O(n).
        n = 60
        dense = np.eye(n)
        dense[n - 1, 0] = 1.0
        with pytest.raises(ConversionError, match="refusing"):
            csr_to_sky(CSRMatrix.from_dense(dense), fill_budget=1.5)

    def test_fill_ratio_reflects_profile_zeros(self) -> None:
        n = 30
        dense = np.eye(n)
        dense[n - 1, n - 5] = 1.0  # one wide row: 4 padded slots
        sky, _ = csr_to_sky(CSRMatrix.from_dense(dense), fill_budget=None)
        assert sky.fill_ratio() < 1.0

    def test_mkl_routines_exposed(self, rng) -> None:
        from repro.baselines import mkl_xcscmv, mkl_xskymv

        csr = self.banded(15)
        x = rng.standard_normal(15)
        expected = csr.to_dense() @ x
        csc, _ = convert(csr, FormatName.CSC)
        np.testing.assert_allclose(mkl_xcscmv(csc, x), expected, atol=1e-9)
        sky, _ = convert(csr, FormatName.SKY)
        np.testing.assert_allclose(mkl_xskymv(sky, x), expected, atol=1e-9)


class TestCostModelCoverage:
    def test_cost_model_prices_all_formats(self) -> None:
        import math

        from repro.features.parameters import FeatureVector
        from repro.machine import INTEL_XEON_X5680, estimate_spmv_time

        fv = FeatureVector(
            m=1000, n=1000, ndiags=5, ntdiags_ratio=1.0, nnz=5000,
            aver_rd=5.0, max_rd=5, var_rd=0.1, er_dia=1.0, er_ell=1.0,
            r=math.inf,
        )
        for fmt in FormatName:
            seconds = estimate_spmv_time(INTEL_XEON_X5680, fmt, fv)
            assert seconds > 0.0, fmt

    def test_csc_never_beats_csr_on_plain_spmv(self, rng) -> None:
        import math

        from repro.features.parameters import FeatureVector
        from repro.kernels.strategies import Strategy, strategy_set
        from repro.machine import INTEL_XEON_X5680, cost_breakdown
        from repro.types import Precision

        strategies = strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
        fv = FeatureVector(
            m=50_000, n=50_000, ndiags=30_000, ntdiags_ratio=0.0,
            nnz=500_000, aver_rd=10.0, max_rd=40, var_rd=20.0,
            er_dia=0.0003, er_ell=0.25, r=math.inf,
        )
        csr_t = cost_breakdown(
            INTEL_XEON_X5680, FormatName.CSR, fv, Precision.DOUBLE,
            strategies,
        ).total_s
        csc_t = cost_breakdown(
            INTEL_XEON_X5680, FormatName.CSC, fv, Precision.DOUBLE,
            strategy_set(Strategy.VECTORIZE),
        ).total_s
        assert csc_t > csr_t
