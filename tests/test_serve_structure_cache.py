"""Tier-2 structure-cache tests: the structure key, the plan cache's
structure index, and the engine's value-refresh fast path.

The acceptance scenario: a value-churn workload — one sparsity structure,
>= 16 value updates — pays feature extraction and format conversion
exactly once; every later update is a tier-1 miss that resolves as a
tier-2 hit, refreshing the cached plan's value arrays in place of a full
rebuild.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection import banded, generate_collection
from repro.features.extract import EXTRACTION_EVENTS
from repro.formats.convert import CONVERSION_EVENTS
from repro.formats.csr import CSRMatrix
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import (
    CachedPlan,
    FaultPlan,
    FaultRule,
    PlanCache,
    ServeConfig,
    ServingEngine,
    StructureKey,
    fingerprint,
    structural_digest,
)
from repro.tuner import SMAT
from repro.tuner.runtime import Decision
from repro.types import FormatName, Precision

from tests.conftest import random_csr

#: The acceptance floor: a churn of at least this many value updates.
CHURN_UPDATES = 16


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


def _churn(matrix: CSRMatrix, updates: int, seed: int = 4):
    """``updates`` CSR variants sharing ``matrix``'s structure."""
    rng = np.random.default_rng(seed)
    out = [matrix]
    for _ in range(updates - 1):
        data = rng.standard_normal(matrix.nnz).astype(matrix.dtype)
        out.append(
            CSRMatrix(matrix.ptr, matrix.indices, data, matrix.shape)
        )
    return out


class TestStructureKey:
    def test_fork_matches_structural_digest(self, rng) -> None:
        matrix = random_csr(rng)
        fp = fingerprint(matrix)
        assert fp.structural == structural_digest(matrix)
        assert fp.structure_key == StructureKey(
            shape=matrix.shape,
            nnz=matrix.nnz,
            dtype=str(matrix.dtype),
            digest=fp.structural,
        )

    def test_same_structure_new_values_share_key(self, rng) -> None:
        base = random_csr(rng)
        churned = _churn(base, 2)[1]
        a, b = fingerprint(base), fingerprint(churned)
        assert a != b  # tier-1 keys diverge on values...
        assert a.structure_key == b.structure_key  # ...tier-2 keys agree

    def test_structure_change_changes_key(self, rng) -> None:
        base = random_csr(rng)
        dense = base.to_dense()
        r, c = np.argwhere(dense == 0)[0]
        dense[r, c] = 1.0
        other = CSRMatrix.from_dense(dense)
        assert (
            fingerprint(base).structure_key
            != fingerprint(other).structure_key
        )

    def test_structure_key_is_hashable_and_printable(self, rng) -> None:
        key = fingerprint(random_csr(rng)).structure_key
        assert key in {key}
        assert "/~" in str(key)  # the "~" marks a structure-only digest


def _plan(matrix: CSRMatrix, kernel) -> CachedPlan:
    decision = Decision(
        format_name=FormatName.CSR,
        kernel=kernel,
        confidence=1.0,
        matched_rule=None,
        used_fallback=False,
        predicted_format=FormatName.CSR,
        matrix=matrix,
    )
    return CachedPlan(
        key=fingerprint(matrix),
        decision=decision,
        matrix_bytes=matrix.memory_bytes(),
    )


@pytest.fixture(scope="module")
def csr_kernel():
    from repro.kernels.base import kernels_for

    return kernels_for(FormatName.CSR)[0]


class TestStructureIndex:
    def test_get_by_structure_finds_value_sibling(
        self, rng, csr_kernel
    ) -> None:
        cache = PlanCache(max_entries=4)
        base, churned = _churn(random_csr(rng), 2)
        plan = _plan(base, csr_kernel)
        cache.put(plan)
        skey = fingerprint(churned).structure_key
        assert cache.get(fingerprint(churned)) is None  # tier-1 miss
        assert cache.get_by_structure(skey) is plan  # tier-2 hit
        assert cache.stats()["structure_hits"] == 1
        assert cache.stats()["structure_entries"] == 1

    def test_latest_admission_wins_the_index_slot(
        self, rng, csr_kernel
    ) -> None:
        cache = PlanCache(max_entries=4)
        base, churned, probe = _churn(random_csr(rng), 3)
        first, second = _plan(base, csr_kernel), _plan(churned, csr_kernel)
        cache.put(first)
        cache.put(second)
        skey = fingerprint(probe).structure_key
        assert cache.get_by_structure(skey) is second
        assert cache.stats()["structure_entries"] == 1

    def test_eviction_unlinks_the_index(self, rng, csr_kernel) -> None:
        cache = PlanCache(max_entries=1)
        a = _plan(random_csr(rng, n_rows=30), csr_kernel)
        b = _plan(random_csr(rng, n_rows=31), csr_kernel)
        cache.put(a)
        cache.put(b)  # evicts a
        assert cache.get_by_structure(a.key.structure_key) is None
        assert cache.get_by_structure(b.key.structure_key) is b
        assert cache.stats()["structure_entries"] == 1

    def test_eviction_keeps_a_successors_index_entry(
        self, rng, csr_kernel
    ) -> None:
        """Evicting an old plan must not drop the index entry its value
        sibling took over."""
        cache = PlanCache(max_entries=2)
        base, churned = _churn(random_csr(rng), 2)
        old, new = _plan(base, csr_kernel), _plan(churned, csr_kernel)
        cache.put(old)
        cache.put(new)  # takes over the shared structure slot
        cache.put(_plan(random_csr(rng, n_rows=33), csr_kernel))  # evicts old
        assert cache.get_by_structure(old.key.structure_key) is new

    def test_invalidate_unlinks(self, rng, csr_kernel) -> None:
        cache = PlanCache(max_entries=4)
        plan = _plan(random_csr(rng), csr_kernel)
        cache.put(plan)
        assert cache.invalidate(plan.key)
        assert cache.get_by_structure(plan.key.structure_key) is None
        assert cache.stats()["structure_entries"] == 0

    def test_clear_empties_the_index(self, rng, csr_kernel) -> None:
        cache = PlanCache(max_entries=4)
        cache.put(_plan(random_csr(rng), csr_kernel))
        cache.clear()
        assert cache.stats()["structure_entries"] == 0

    def test_tier2_hit_refreshes_donor_recency(
        self, rng, csr_kernel
    ) -> None:
        """A churn workload must not evict its own structure donor."""
        cache = PlanCache(max_entries=2)
        donor = _plan(random_csr(rng, n_rows=30), csr_kernel)
        other = _plan(random_csr(rng, n_rows=31), csr_kernel)
        cache.put(donor)
        cache.put(other)  # donor is now LRU
        assert cache.get_by_structure(donor.key.structure_key) is donor
        cache.put(_plan(random_csr(rng, n_rows=32), csr_kernel))
        # ``other`` was evicted, not the freshly-used donor.
        assert cache.get(donor.key, record_stats=False) is donor
        assert cache.get(other.key, record_stats=False) is None


class TestEngineValueChurn:
    def test_churn_extracts_and_converts_exactly_once(self, smat) -> None:
        variants = _churn(banded.banded_matrix(3000, 7, seed=3),
                          CHURN_UPDATES + 1)
        x = np.ones(3000)
        with ServingEngine(smat, ServeConfig(workers=2)) as engine:
            extractions = EXTRACTION_EVENTS.count
            conversions = CONVERSION_EVENTS.count
            results = [engine.spmv(m, x) for m in variants]
            counters = engine.metrics.snapshot()["counters"]
            stats = engine.cache.stats()
        # The whole churn pays one feature extraction and one conversion:
        # the base build.  Every refresh reuses structure and rule walk.
        assert EXTRACTION_EVENTS.delta_since(extractions) == 1
        assert CONVERSION_EVENTS.delta_since(conversions) == 1
        assert counters["plans_built"] == 1
        assert counters["plans_refreshed"] == CHURN_UPDATES
        assert counters["structure_hits"] == CHURN_UPDATES
        assert counters["plan_refresh_failures"] == 0
        assert stats["structure_entries"] == 1
        assert not results[0].refreshed
        assert all(r.refreshed for r in results[1:])
        for matrix, result in zip(variants, results):
            np.testing.assert_allclose(
                result.y, matrix.spmv(x), atol=1e-9
            )

    def test_refreshed_products_bitwise_match_direct_tuning(
        self, smat
    ) -> None:
        variants = _churn(banded.banded_matrix(1000, 5, seed=8), 4)
        x = np.ones(1000)
        with ServingEngine(smat, ServeConfig(workers=2)) as engine:
            for matrix in variants:
                served = engine.spmv(matrix, x).y
                direct, _ = smat.spmv(matrix, x)
                assert np.array_equal(served, direct)

    def test_tier1_still_hits_after_refresh(self, smat) -> None:
        base, churned = _churn(banded.banded_matrix(1000, 5, seed=8), 2)
        x = np.ones(1000)
        with ServingEngine(smat, ServeConfig(workers=2)) as engine:
            engine.spmv(base, x)
            first = engine.spmv(churned, x)
            second = engine.spmv(churned, x)
            counters = engine.metrics.snapshot()["counters"]
        assert first.refreshed and not first.cache_hit
        assert second.cache_hit and not second.refreshed
        assert counters["plans_refreshed"] == 1

    def test_structure_cache_off_rebuilds_every_update(self, smat) -> None:
        variants = _churn(banded.banded_matrix(1000, 5, seed=8), 6)
        x = np.ones(1000)
        config = ServeConfig(workers=2, structure_cache=False)
        with ServingEngine(smat, config) as engine:
            extractions = EXTRACTION_EVENTS.count
            results = [engine.spmv(m, x) for m in variants]
            counters = engine.metrics.snapshot()["counters"]
        assert EXTRACTION_EVENTS.delta_since(extractions) == len(variants)
        assert counters["plans_built"] == len(variants)
        assert counters["plans_refreshed"] == 0
        assert not any(r.refreshed for r in results)

    def test_refresh_fault_falls_back_to_full_build(self, smat) -> None:
        faults = FaultPlan([FaultRule(site="refresh")])
        variants = _churn(banded.banded_matrix(1000, 5, seed=8), 4)
        x = np.ones(1000)
        with ServingEngine(
            smat, ServeConfig(workers=2), faults=faults
        ) as engine:
            results = [engine.spmv(m, x) for m in variants]
            counters = engine.metrics.snapshot()["counters"]
        # Every refresh attempt was injected with a fault; each fell back
        # to a full (correct) build and the request still succeeded.
        assert counters["plan_refresh_failures"] == len(variants) - 1
        assert counters["plans_refreshed"] == 0
        assert counters["plans_built"] == len(variants)
        for matrix, result in zip(variants, results):
            np.testing.assert_allclose(
                result.y, matrix.spmv(x), atol=1e-9
            )

    def test_scoreboard_reports_structure_hits(self, smat) -> None:
        variants = _churn(banded.banded_matrix(1000, 5, seed=8), 3)
        x = np.ones(1000)
        with ServingEngine(smat, ServeConfig(workers=2)) as engine:
            for matrix in variants:
                engine.spmv(matrix, x)
            board = engine.scoreboard()
        assert "structure hits 2" in board
