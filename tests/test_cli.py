"""CLI tests: the full offline pipeline driven through the command line."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.io import FeatureDatabase, write_matrix_market


@pytest.fixture(scope="module")
def db_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "features.jsonl"
    # Scale 0.05 (~120 matrices) is the smallest collection that trains a
    # reliable model for the demo predictions below.
    code = main([
        "build-db", "--out", str(path),
        "--scale", "0.05", "--size-scale", "0.35",
    ])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def model_dir(db_path, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli_model") / "smat"
    code = main(["train", "--db", str(db_path), "--out", str(out)])
    assert code == 0
    return out


class TestBuildDb:
    def test_database_has_labelled_records(self, db_path) -> None:
        records = list(FeatureDatabase(db_path))
        assert len(records) > 20
        assert all(r.features.best_format is not None for r in records)

    def test_domains_present(self, db_path) -> None:
        domains = {r.domain for r in FeatureDatabase(db_path)}
        assert "graph" in domains and "structural" in domains


class TestTrain:
    def test_artifacts_written(self, model_dir) -> None:
        assert (model_dir / "model.json").exists()
        assert (model_dir / "kernels.json").exists()

    def test_show_rules_prints_groups(self, db_path, tmp_path, capsys):
        out = tmp_path / "m2"
        main(["train", "--db", str(db_path), "--out", str(out),
              "--show-rules"])
        printed = capsys.readouterr().out
        assert "group]" in printed

    def test_empty_db_errors(self, tmp_path) -> None:
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["train", "--db", str(empty),
                     "--out", str(tmp_path / "m")])
        assert code == 1


class TestPredict:
    @pytest.mark.parametrize(
        "demo,expected",
        [("banded", "DIA"), ("powerlaw", "COO")],
    )
    def test_demo_predictions(self, model_dir, demo, expected, capsys):
        code = main(["predict", "--model", str(model_dir), "--demo", demo])
        assert code == 0
        printed = capsys.readouterr().out
        assert f"chosen     : {expected}" in printed

    def test_mtx_prediction(self, model_dir, tmp_path, capsys) -> None:
        from repro.collection import banded

        matrix = banded.banded_matrix(800, 5, seed=9)
        path = tmp_path / "m.mtx"
        write_matrix_market(matrix, path)
        code = main(["predict", "--model", str(model_dir),
                     "--mtx", str(path)])
        assert code == 0
        assert "800x800" in capsys.readouterr().out


class TestEvaluateAndStats:
    def test_evaluate_prints_confusion(self, model_dir, db_path, capsys):
        code = main(["evaluate", "--model", str(model_dir),
                     "--db", str(db_path)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "accuracy:" in printed
        assert "precision" in printed

    def test_stats_distribution(self, db_path, capsys) -> None:
        code = main(["stats", "--db", str(db_path)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "format affinity:" in printed
        assert "CSR" in printed

    def test_stats_empty_db(self, tmp_path) -> None:
        empty = tmp_path / "e.jsonl"
        empty.write_text("")
        assert main(["stats", "--db", str(empty)]) == 1


class TestVersion:
    def test_version_matches_pyproject(self, capsys) -> None:
        import re
        from pathlib import Path

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        printed = capsys.readouterr().out.strip()

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        declared = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        ).group(1)
        assert printed == f"repro {declared}"

    def test_dunder_version_matches_pyproject(self) -> None:
        import re
        from pathlib import Path

        import repro

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        declared = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        ).group(1)
        assert repro.__version__ == declared


class TestServeBench:
    def test_small_replay_succeeds(self, capsys) -> None:
        code = main([
            "serve-bench",
            "--matrices", "6", "--requests", "40",
            "--clients", "2", "--workers", "2",
            "--train-scale", "0.04",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "plan cache:" in printed
        assert "hit rate" in printed
        assert "cache_hits" in printed
        assert "40/40 products match" in printed

    def test_rejects_too_few_requests(self, capsys) -> None:
        code = main([
            "serve-bench", "--matrices", "10", "--requests", "5",
        ])
        assert code == 1
        assert "must be >=" in capsys.readouterr().err


class TestBenchPerf:
    def test_smoke_suite_writes_report(self, tmp_path, capsys) -> None:
        out = tmp_path / "BENCH_perf.json"
        code = main([
            "bench-perf", "--suite", "smoke", "--repeats", "1",
            "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "convert/csr_to_ell" in captured

        import json

        report = json.loads(out.read_text())
        ops = report["ops"]
        for op in ("convert/csr_to_ell", "convert/csr_to_dia", "spmv/csr"):
            assert ops[op]["median_s"] > 0
            assert "speedup_vs_python_loop" in ops[op]
        # smoke suite never runs the THREAD case — recorded as a skip.
        assert "skipped" in ops["spmv/csr_thread"]

    def test_assert_speedup_gate(self, tmp_path, capsys) -> None:
        out = tmp_path / "BENCH_perf.json"
        code = main([
            "bench-perf", "--suite", "smoke", "--repeats", "1",
            "--out", str(out), "--assert-speedup", "2",
        ])
        assert code == 0
        assert "speedup gate passed" in capsys.readouterr().out

    def test_impossible_gate_fails(self, tmp_path, capsys) -> None:
        out = tmp_path / "BENCH_perf.json"
        code = main([
            "bench-perf", "--suite", "smoke", "--repeats", "1",
            "--out", str(out), "--assert-speedup", "1000000",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_quick_conflicts_with_other_suite(self, capsys) -> None:
        code = main(["bench-perf", "--quick", "--suite", "full"])
        assert code == 1
        assert "conflicts" in capsys.readouterr().err
