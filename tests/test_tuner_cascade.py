"""Decision-cascade tests: interval-bound soundness, stage-0 equivalence
with the full walk, budget/deadline floors, and the serving engine's
conversion amortizer, cascade counters and ruleset hot-swap."""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.collection import (
    banded,
    generate_collection,
    graphs,
    random_sparse,
)
from repro.features.cheap import CENSUS_PARAMS, CheapFeatures
from repro.features.extract import extract_features
from repro.features.parameters import FEATURE_NAMES
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import ServeConfig, ServingEngine
from repro.serve.resilience import Deadline
from repro.tuner import SMAT, OnlineSmat, SmatConfig
from repro.tuner.runtime import Decision, cascade_select, full_select
from repro.types import FormatName, Precision


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


def contiguous_band(n: int, n_diags: int, seed: int):
    """A dense band whose occupied span equals max_RD — the shape the
    degree pass pins exactly without any census."""
    return banded.banded_matrix(
        n, n_diags, seed=seed, spread=(n_diags - 1) // 2
    )


def structure_corpus():
    """Shapes covering every cheap-tier path: contiguous band (analytic
    shortcut), spread band (narrow-band census), power-law and uniform
    random (census infeasible), half-empty diagonals, empty rows."""
    sparse = random_sparse.uniform_random(900, 900, 2.0, seed=6)
    return [
        contiguous_band(2000, 5, seed=1),
        banded.banded_matrix(2000, 5, seed=2),
        banded.banded_matrix(1500, 9, seed=5, occupancy=0.5),
        graphs.power_law_graph(1500, exponent=2.2, seed=3),
        random_sparse.uniform_random(1200, 1200, 6.0, seed=4),
        sparse,  # low density leaves some rows empty
    ]


class TestCheapBounds:
    def test_bounds_contain_exact_features(self) -> None:
        for matrix in structure_corpus():
            exact = extract_features(matrix)
            cheap = CheapFeatures(matrix)
            for name in FEATURE_NAMES:
                lo, hi = cheap.get_bound(name)
                value = exact.value(name)
                assert lo - 1e-9 <= value <= hi + 1e-9, (
                    f"{name} bound ({lo}, {hi}) excludes exact {value}"
                )

    def test_census_makes_census_params_exact(self) -> None:
        for matrix in structure_corpus():
            cheap = CheapFeatures(matrix)
            if not cheap.ensure_census():
                continue
            exact = extract_features(matrix)
            for name in CENSUS_PARAMS:
                lo, hi = cheap.get_bound(name)
                assert lo == hi
                assert lo == pytest.approx(exact.value(name))

    def test_degree_params_are_exact_without_census(self) -> None:
        matrix = graphs.power_law_graph(1500, exponent=2.2, seed=3)
        exact = extract_features(matrix)
        cheap = CheapFeatures(matrix)
        for name in ("m", "n", "nnz", "aver_rd", "max_rd", "var_rd",
                     "er_ell"):
            lo, hi = cheap.get_bound(name)
            assert lo == hi == pytest.approx(exact.value(name))
        assert not cheap.census_ran
        assert cheap.cost_units == pytest.approx(0.1)

    def test_contiguous_band_shortcut_skips_census(self) -> None:
        matrix = contiguous_band(3000, 9, seed=1)
        exact = extract_features(matrix)
        cheap = CheapFeatures(matrix)
        # The dense-band analytic bound pins all three census parameters
        # from the degree pass alone.
        for name in CENSUS_PARAMS:
            lo, hi = cheap.get_bound(name)
            assert lo == hi == pytest.approx(exact.value(name))
        assert not cheap.census_ran
        # ...which also makes the structure snapshot available for free.
        snapshot = cheap.structure_snapshot()
        assert snapshot is not None
        assert snapshot["ndiags"] == exact.ndiags

    def test_tightened_bound_spends_census_only_when_needed(self) -> None:
        matrix = banded.banded_matrix(2000, 5, seed=2)  # spread band
        cheap = CheapFeatures(matrix)
        assert cheap.get_bound("ndiags")[0] != cheap.get_bound("ndiags")[1]
        assert not cheap.census_ran
        lo, hi = cheap.tightened_bound("ndiags")
        assert cheap.census_ran and lo == hi
        assert cheap.cost_units == pytest.approx(0.5)

    def test_empty_matrix_bounds(self) -> None:
        from repro.formats.csr import CSRMatrix

        empty = CSRMatrix.from_triplets(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.float64),
            (4, 4),
        )
        cheap = CheapFeatures(empty)
        assert cheap.get_bound("ndiags") == (0.0, 0.0)
        assert cheap.structure_snapshot() is not None


class TestCascadeSelection:
    def test_stage0_formats_match_full_walk(self, smat) -> None:
        """The interval walk may only resolve when it can prove the full
        walk's answer — so the chosen formats always agree."""
        for matrix in structure_corpus():
            fast = cascade_select(matrix, smat.model, smat.config)
            full = full_select(matrix, smat.model)
            assert fast.format_name == full.format_name
            assert fast.confidence == pytest.approx(full.confidence)
            assert fast.stage in ("cheap", "full")

    def test_cheap_resolution_costs_a_tenth(self, smat) -> None:
        matrix = contiguous_band(3000, 9, seed=1)
        selection = cascade_select(matrix, smat.model, smat.config)
        if selection.stage == "cheap":
            assert selection.cost_units <= 0.5
            assert selection.cost_units < full_select(
                matrix, smat.model
            ).cost_units


class TestCascadeDecide:
    def tuner_with(self, smat, **config_changes) -> SMAT:
        return SMAT(
            smat.model,
            smat.kernels,
            smat.backend,
            replace(smat.config, **config_changes),
        )

    def test_unbudgeted_decide_has_no_stage(self, smat) -> None:
        decision = smat.decide(contiguous_band(2000, 5, seed=1))
        assert decision.cascade_stage is None

    def test_budgeted_decide_matches_unbudgeted_format(self, smat) -> None:
        tuner = self.tuner_with(smat, tune_budget_units=500.0)
        for matrix in structure_corpus():
            budgeted = tuner.decide(matrix)
            plain = smat.decide(matrix)
            assert budgeted.cascade_stage in (
                "cheap", "full", "measure", "floor"
            )
            # A huge budget never floors, so the choice is identical.
            assert budgeted.cascade_stage != "floor"
            assert budgeted.format_name == plain.format_name

    def test_tight_budget_floors_to_csr(self, smat) -> None:
        tuner = self.tuner_with(smat, tune_budget_units=0.05)
        matrix = contiguous_band(2500, 7, seed=2)
        decision = tuner.decide(matrix)
        assert decision.cascade_stage == "floor"
        assert decision.format_name is FormatName.CSR
        assert decision.degraded_to_csr == (
            decision.predicted_format is not FormatName.CSR
        )
        # The floor decision still serves correct products.
        x = np.ones(matrix.n_cols)
        np.testing.assert_allclose(
            decision.kernel(decision.matrix, x), matrix.spmv(x), atol=1e-9
        )

    def test_expired_deadline_floors(self, smat) -> None:
        matrix = graphs.power_law_graph(1500, exponent=2.2, seed=3)
        expired = Deadline(time.monotonic() - 1.0)
        decision = smat.decide(matrix, deadline=expired)
        assert decision.cascade_stage == "floor"
        assert decision.format_name is FormatName.CSR

    def test_roomy_deadline_escalates(self, smat) -> None:
        matrix = graphs.power_law_graph(1500, exponent=2.2, seed=3)
        decision = smat.decide(matrix, deadline=Deadline.after(60.0))
        assert decision.cascade_stage in ("cheap", "full", "measure")
        assert decision.format_name == smat.decide(matrix).format_name

    def test_low_confidence_with_budget_measures(self, smat) -> None:
        tuner = self.tuner_with(
            smat, confidence_threshold=1.0, tune_budget_units=1000.0
        )
        matrix = random_sparse.uniform_random(1200, 1200, 6.0, seed=4)
        decision = tuner.decide(matrix)
        assert decision.cascade_stage == "measure"
        assert decision.used_fallback and decision.measurements
        # The cheap pass's cost is charged, not dropped.
        assert decision.extraction_units >= 0.1

    def test_cascade_stage_serialization_round_trip(self, smat) -> None:
        tuner = self.tuner_with(smat, tune_budget_units=0.05)
        decision = tuner.decide(contiguous_band(2500, 7, seed=2))
        assert decision.cascade_stage == "floor"
        revived = Decision.from_dict(decision.to_dict())
        assert revived.cascade_stage == "floor"
        assert revived.format_name is decision.format_name
        # Pre-cascade records deserialize with no stage.
        payload = decision.to_dict()
        del payload["cascade_stage"]
        assert Decision.from_dict(payload).cascade_stage is None


class TestServingIntegration:
    def test_amortizer_defers_then_upgrades(self, smat) -> None:
        matrix = contiguous_band(2500, 7, seed=3)
        x = np.ones(matrix.n_cols)
        config = ServeConfig(workers=1, amortize_conversions=True)
        with ServingEngine(smat, config) as engine:
            first = engine.spmv(matrix, x)
            counters = engine.metrics.snapshot()["counters"]
            assert counters["conversions_deferred"] == 1
            assert counters["plans_upgraded"] == 0
            second = engine.spmv(matrix, x)
            counters = engine.metrics.snapshot()["counters"]
            assert counters["plans_upgraded"] == 1
            third = engine.spmv(matrix, x)
        reference = matrix.spmv(x)
        for result in (first, second, third):
            np.testing.assert_allclose(result.y, reference, atol=1e-9)

    def test_cascade_counters_partition_cold_builds(self, smat) -> None:
        tuner = SMAT(
            smat.model,
            smat.kernels,
            smat.backend,
            replace(smat.config, tune_budget_units=500.0),
        )
        pool = structure_corpus()
        with ServingEngine(tuner, ServeConfig(workers=1)) as engine:
            for matrix in pool:
                engine.spmv(matrix, np.ones(matrix.n_cols))
            counters = engine.metrics.snapshot()["counters"]
        staged = (
            counters["cascade_cheap_hits"]
            + counters["cascade_full_hits"]
            + counters["cascade_measure_decisions"]
            + counters["cascade_floor_decisions"]
        )
        assert staged == counters["plans_built"] == len(pool)

    def test_hot_swap_observed_by_engine(self, smat) -> None:
        online = OnlineSmat(
            SMAT(smat.model, smat.kernels, smat.backend, smat.config)
        )
        pool = structure_corpus()
        with ServingEngine(online, ServeConfig(workers=1)) as engine:
            engine.spmv(pool[0], np.ones(pool[0].n_cols))
            counters = engine.metrics.snapshot()["counters"]
            assert counters["ruleset_swaps"] == 0
            epoch = online.install_model(smat.model)
            assert epoch == 1
            # The swap is observed on the next cold build.
            engine.spmv(pool[1], np.ones(pool[1].n_cols))
            counters = engine.metrics.snapshot()["counters"]
            assert counters["ruleset_swaps"] == 1

    def test_concurrent_decides_race_hot_swap(self, smat) -> None:
        """ISSUE satellite: decide() threads racing install_model must
        never see a torn model or crash; every decision stays valid."""
        online = OnlineSmat(
            SMAT(smat.model, smat.kernels, smat.backend, smat.config)
        )
        errors: list = []
        decided: list = []
        installs = 6

        def worker(slot: int) -> None:
            try:
                for i in range(12):
                    matrix = random_sparse.uniform_random(
                        700, 700, 6.0, seed=100 * slot + i
                    )
                    decision = online.decide(matrix)
                    decided.append(decision)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(3)
        ]
        for t in threads:
            t.start()
        for _ in range(installs):
            online.install_model(smat.model)
        for t in threads:
            t.join()

        assert not errors
        assert len(decided) == 36
        assert all(d.kernel is not None for d in decided)
        # Installs all landed; racing decides never lost an epoch bump.
        assert online.model_epoch == installs
