"""Incremental feature maintenance: exact parity with re-extraction.

:class:`DeltaFeatures` promises the *same* Table 2 vector a cold
re-extraction of the mutated matrix would produce — not an
approximation — because format decisions ride on these values.  The
parity assertions here are exact equality (``==``), never ``allclose``:
the maintained state holds the identical degree array and diagonal
census the extractor would rebuild, so every derived float must match
bit for bit.

Also covers the :class:`LazyFeatures` extraction-cost ledger (the
cascade's budget currency): each step charges exactly once, however
often its values are re-read, and seeded steps never charge at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.extract import (
    extract_features,
    extract_powerlaw_feature,
    extract_structure_features,
)
from repro.features.incremental import (
    POWERLAW_COST_SPMV_UNITS,
    STRUCTURE_COST_SPMV_UNITS,
    DeltaFeatures,
    LazyFeatures,
)
from repro.formats.delta import DeltaEffect, apply_delta
from repro.types import INDEX_DTYPE

from tests.test_delta_formats import _random_delta
from tests.test_properties_differential import (
    _structure_for,
    with_dyadic_data,
)

#: Seeds for the parity sweep (one matrix family mix per seed).
PARITY_SEEDS = range(0, 48)


# ---------------------------------------------------------------------------
# DeltaFeatures parity
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", PARITY_SEEDS)
def test_single_delta_parity(seed: int) -> None:
    rng = np.random.default_rng(20_000 + seed)
    base = with_dyadic_data(_structure_for(seed), rng)
    kind = ("insert", "delete", "mixed")[seed % 3]
    delta = _random_delta(base, rng, kind)

    feats = DeltaFeatures(base)
    new_csr, effect = apply_delta(base, delta)
    feats.apply(effect)

    assert feats.snapshot() == extract_features(new_csr)


@pytest.mark.parametrize("seed", (7, 21, 33))
def test_delta_sequence_stays_exact(seed: int) -> None:
    """No drift over a chain of deltas — the maintained census is exact
    at every step, not just after one edit."""
    rng = np.random.default_rng(30_000 + seed)
    matrix = with_dyadic_data(_structure_for(seed), rng)
    feats = DeltaFeatures(matrix)
    for step in range(6):
        kind = ("insert", "delete", "mixed")[step % 3]
        delta = _random_delta(matrix, rng, kind)
        matrix, effect = apply_delta(matrix, delta)
        feats.apply(effect)
        assert feats.snapshot() == extract_features(matrix)
        assert feats.nnz == matrix.nnz

    # The maintained structure dict matches the extractor's key for key.
    assert feats.structure_snapshot() == extract_structure_features(matrix)
    assert feats.powerlaw() == extract_powerlaw_feature(matrix)


def test_shape_mismatch_rejected() -> None:
    base = _structure_for(1)
    feats = DeltaFeatures(base)
    wrong = DeltaEffect(
        shape=(base.n_rows + 1, base.n_cols),
        added_rows=np.zeros(0, dtype=INDEX_DTYPE),
        added_cols=np.zeros(0, dtype=INDEX_DTYPE),
        removed_rows=np.zeros(0, dtype=INDEX_DTYPE),
        removed_cols=np.zeros(0, dtype=INDEX_DTYPE),
        updated_rows=np.zeros(0, dtype=INDEX_DTYPE),
        updated_cols=np.zeros(0, dtype=INDEX_DTYPE),
    )
    with pytest.raises(ValueError):
        feats.apply(wrong)


def test_phantom_removal_rejected() -> None:
    """An effect that removes more entries from a row than it holds is
    corrupt input — the degree array must not silently go negative."""
    base = _structure_for(2)
    feats = DeltaFeatures(base)
    degrees = base.row_degrees()
    row = int(np.argmin(degrees))
    count = int(degrees[row]) + 1
    effect = DeltaEffect(
        shape=tuple(base.shape),
        added_rows=np.zeros(0, dtype=INDEX_DTYPE),
        added_cols=np.zeros(0, dtype=INDEX_DTYPE),
        removed_rows=np.full(count, row, dtype=INDEX_DTYPE),
        removed_cols=np.arange(count, dtype=INDEX_DTYPE),
        updated_rows=np.zeros(0, dtype=INDEX_DTYPE),
        updated_cols=np.zeros(0, dtype=INDEX_DTYPE),
    )
    with pytest.raises(ValueError):
        feats.apply(effect)


def test_seed_lazy_matches_and_charges_nothing() -> None:
    rng = np.random.default_rng(41)
    base = with_dyadic_data(_structure_for(10), rng)
    feats = DeltaFeatures(base)
    new_csr, effect = apply_delta(
        base, _random_delta(base, rng, "mixed")
    )
    feats.apply(effect)

    lazy = feats.seed_lazy(new_csr)
    reference = extract_features(new_csr)
    for name in ("m", "nnz", "aver_rd", "max_rd", "ndiags", "er_ell"):
        assert lazy.get(name) == getattr(reference, name)
    assert lazy.get("r") == reference.r
    # Every read above was pre-paid by delta maintenance.
    assert lazy.extraction_cost_spmv_units() == 0.0


# ---------------------------------------------------------------------------
# LazyFeatures cost ledger
# ---------------------------------------------------------------------------
class TestExtractionCostLedger:
    def test_powerlaw_charged_exactly_once(self) -> None:
        matrix = _structure_for(12)
        lazy = LazyFeatures(matrix)
        assert lazy.extraction_cost_spmv_units() == 0.0
        first = lazy.get("r")
        assert (
            lazy.extraction_cost_spmv_units() == POWERLAW_COST_SPMV_UNITS
        )
        # Re-reads are memoized: same value, no second charge.
        assert lazy.get("r") == first
        assert lazy.get("r") == first
        assert (
            lazy.extraction_cost_spmv_units() == POWERLAW_COST_SPMV_UNITS
        )

    def test_both_steps_charge_once_each(self) -> None:
        matrix = _structure_for(13)
        lazy = LazyFeatures(matrix)
        lazy.get("ndiags")
        lazy.get("max_rd")
        lazy.get("r")
        lazy.get("aver_rd")
        lazy.get("r")
        assert lazy.extraction_cost_spmv_units() == (
            STRUCTURE_COST_SPMV_UNITS + POWERLAW_COST_SPMV_UNITS
        )

    def test_cascade_seeded_structure_never_charges(self) -> None:
        """A cascade-seeded instance arrives with step one pre-paid;
        reading any structure parameter — repeatedly — stays free, and
        only an actual power-law extraction ever charges."""
        matrix = _structure_for(14)
        structure = extract_structure_features(matrix)
        lazy = LazyFeatures(matrix, structure=structure)
        for _ in range(3):
            for name in structure:
                assert lazy.get(name) == float(structure[name])
        assert lazy.extraction_cost_spmv_units() == 0.0
        lazy.get("r")
        assert (
            lazy.extraction_cost_spmv_units() == POWERLAW_COST_SPMV_UNITS
        )

    def test_seeded_r_never_charges(self) -> None:
        matrix = _structure_for(15)
        lazy = LazyFeatures(matrix, r=2.5)
        assert lazy.get("r") == 2.5
        assert lazy.extraction_cost_spmv_units() == 0.0

    def test_r_source_consulted_lazily_and_never_charges(self) -> None:
        matrix = _structure_for(16)
        calls = []

        def source() -> float:
            calls.append(1)
            return 3.25

        lazy = LazyFeatures(matrix, r_source=source)
        assert calls == []  # not consulted until a rule reads r
        assert lazy.get("r") == 3.25
        assert lazy.get("r") == 3.25
        assert calls == [1]  # materialised once, then memoized
        assert lazy.extraction_cost_spmv_units() == 0.0

    def test_unknown_parameter_rejected(self) -> None:
        lazy = LazyFeatures(_structure_for(17))
        with pytest.raises(KeyError):
            lazy.get("sparsity_index")
