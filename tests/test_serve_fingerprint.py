"""Fingerprint tests: identity, sensitivity, structural digests."""

from __future__ import annotations

import numpy as np

from repro.formats import CSRMatrix
from repro.serve import fingerprint, structural_digest

from tests.conftest import random_csr


class TestFingerprint:
    def test_deterministic(self, rng) -> None:
        matrix = random_csr(rng)
        assert fingerprint(matrix) == fingerprint(matrix)

    def test_equal_for_identical_copies(self, paper_dense) -> None:
        a = CSRMatrix.from_dense(paper_dense)
        b = CSRMatrix.from_dense(paper_dense.copy())
        assert fingerprint(a) == fingerprint(b)
        assert hash(fingerprint(a)) == hash(fingerprint(b))

    def test_value_change_changes_digest(self, paper_dense) -> None:
        a = CSRMatrix.from_dense(paper_dense)
        changed = paper_dense.copy()
        changed[0, 0] = 42.0
        b = CSRMatrix.from_dense(changed)
        # Same structure, different values: scalars agree, digest differs.
        assert fingerprint(a).shape == fingerprint(b).shape
        assert fingerprint(a).nnz == fingerprint(b).nnz
        assert fingerprint(a) != fingerprint(b)

    def test_structure_change_changes_digest(self, paper_dense) -> None:
        a = CSRMatrix.from_dense(paper_dense)
        moved = paper_dense.copy()
        moved[0, 1] = 0.0
        moved[0, 2] = 5.0  # same value set, different column
        b = CSRMatrix.from_dense(moved)
        assert fingerprint(a) != fingerprint(b)

    def test_dtype_distinguishes(self, paper_dense) -> None:
        a = CSRMatrix.from_dense(paper_dense.astype(np.float64))
        b = CSRMatrix.from_dense(paper_dense.astype(np.float32))
        assert fingerprint(a) != fingerprint(b)

    def test_distinct_across_random_pool(self, rng) -> None:
        prints = {
            fingerprint(random_csr(rng, n_rows=30 + i)) for i in range(25)
        }
        assert len(prints) == 25

    def test_is_usable_as_dict_key(self, rng) -> None:
        matrix = random_csr(rng)
        table = {fingerprint(matrix): "plan"}
        assert table[fingerprint(matrix)] == "plan"

    def test_str_is_compact(self, paper_csr) -> None:
        text = str(fingerprint(paper_csr))
        assert "4x4" in text and "9nnz" in text


class TestStructuralDigest:
    def test_values_do_not_matter(self, paper_dense) -> None:
        a = CSRMatrix.from_dense(paper_dense)
        scaled = CSRMatrix.from_dense(paper_dense * 3.5)
        assert structural_digest(a) == structural_digest(scaled)
        assert fingerprint(a) != fingerprint(scaled)

    def test_structure_matters(self, paper_dense) -> None:
        a = CSRMatrix.from_dense(paper_dense)
        moved = paper_dense.copy()
        moved[3, 0] = 1.0
        b = CSRMatrix.from_dense(moved)
        assert structural_digest(a) != structural_digest(b)
