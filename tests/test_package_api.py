"""Public-API surface tests: exports, lazy attributes, error hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    ConversionError,
    FormatError,
    KernelError,
    LearningError,
    SmatError,
    SolverError,
    TuningError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [FormatError, ConversionError, KernelError, LearningError,
         TuningError, SolverError],
    )
    def test_all_derive_from_smat_error(self, exc) -> None:
        assert issubclass(exc, SmatError)
        with pytest.raises(SmatError):
            raise exc("boom")

    def test_catching_base_covers_library_failures(self) -> None:
        from repro.formats import CSRMatrix

        with pytest.raises(SmatError):
            CSRMatrix(ptr=[0, 5], indices=[0], data=[1.0], shape=(1, 1))


class TestTopLevelApi:
    def test_version(self) -> None:
        assert repro.__version__ == "1.0.0"

    def test_eager_exports(self) -> None:
        assert repro.CSRMatrix is not None
        assert repro.FormatName.CSR.value == "CSR"
        assert len(repro.BASIC_FORMATS) == 4

    @pytest.mark.parametrize(
        "name",
        ["SMAT", "SmatConfig", "AMGSolver", "SimulatedBackend",
         "WallClockBackend", "extract_features", "generate_collection",
         "representatives", "smat_scsr_spmv", "smat_dcsr_spmv"],
    )
    def test_lazy_exports_resolve(self, name: str) -> None:
        assert getattr(repro, name) is not None

    def test_unknown_attribute(self) -> None:
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing

    def test_precision_helpers(self) -> None:
        from repro.types import Precision

        assert Precision.SINGLE.bytes_per_value == 4
        assert Precision.DOUBLE.bytes_per_value == 8
        assert Precision.from_dtype("float32") is Precision.SINGLE
        with pytest.raises(ValueError, match="dtype"):
            Precision.from_dtype("int32")

    def test_format_registry_covers_all_formats(self) -> None:
        from repro.formats import resolve_format
        from repro.types import FormatName

        for fmt in FormatName:
            assert resolve_format(fmt).format_name is fmt

    def test_unregistered_lookup_fails_cleanly(self) -> None:
        from repro.formats.base import _FORMAT_REGISTRY, resolve_format
        from repro.types import FormatName

        removed = _FORMAT_REGISTRY.pop(FormatName.HYB)
        try:
            with pytest.raises(FormatError, match="no format"):
                resolve_format(FormatName.HYB)
        finally:
            _FORMAT_REGISTRY[FormatName.HYB] = removed
