"""Tests for the BDIA (blocked diagonal) extension format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collection.grids import laplacian_5pt, laplacian_9pt
from repro.errors import ConversionError, FormatError
from repro.formats import BDIAMatrix, CSRMatrix, convert
from repro.formats.convert import bdia_to_csr, csr_to_bdia
from repro.kernels import kernels_for
from repro.types import FormatName
from tests.conftest import random_csr


class TestConstruction:
    def test_9pt_laplacian_bands(self) -> None:
        # The 9-point stencil's diagonals group into three bands:
        # {-n-1,-n,-n+1}, {-1,0,1}, {n-1,n,n+1}.
        bdia, _ = csr_to_bdia(laplacian_9pt(12))
        assert bdia.n_bands == 3
        assert bdia.num_diags == 9
        assert all(band.shape[0] == 3 for band in bdia.bands)

    def test_5pt_laplacian_bands(self) -> None:
        bdia, _ = csr_to_bdia(laplacian_5pt(10))
        assert bdia.n_bands == 3  # {-n}, {-1,0,1}, {n}
        assert bdia.num_diags == 5

    def test_band_gap_merging(self) -> None:
        # Offsets {-2, 0, 2}: gap 1 between consecutive diagonals.
        n = 12
        dense = np.zeros((n, n))
        for k in (-2, 0, 2):
            idx = np.arange(max(0, -k), min(n, n - k))
            dense[idx, idx + k] = 1.0
        csr = CSRMatrix.from_dense(dense)
        strict, _ = csr_to_bdia(csr, max_band_gap=0)
        merged, _ = csr_to_bdia(csr, max_band_gap=1)
        assert strict.n_bands == 3
        assert merged.n_bands == 1
        assert merged.num_diags == 5  # the 2 gap diagonals stored as zeros
        np.testing.assert_array_equal(merged.to_dense(), dense)

    def test_overlapping_bands_rejected(self) -> None:
        band = np.ones((2, 4))
        with pytest.raises(FormatError, match="disjoint"):
            BDIAMatrix(offsets=[0, 1], bands=[band, band], shape=(4, 4))

    def test_band_shape_validated(self) -> None:
        with pytest.raises(FormatError, match="width"):
            BDIAMatrix(offsets=[0], bands=[np.ones((2, 3))], shape=(4, 4))

    def test_empty_matrix_rejected(self) -> None:
        empty = CSRMatrix(np.zeros(5, np.int64), [], np.zeros(0), (4, 4))
        with pytest.raises(ConversionError, match="empty"):
            csr_to_bdia(empty)

    def test_fill_budget(self, rng) -> None:
        scattered = random_csr(rng, 60, 60, 0.03)
        with pytest.raises(ConversionError, match="refusing"):
            csr_to_bdia(scattered, fill_budget=2.0)


class TestSpmvAndRoundTrip:
    def test_round_trip(self) -> None:
        matrix = laplacian_9pt(10)
        bdia, _ = csr_to_bdia(matrix)
        back, _ = bdia_to_csr(bdia)
        np.testing.assert_allclose(back.to_dense(), matrix.to_dense())

    def test_all_kernels_match_reference(self, rng) -> None:
        matrix = laplacian_9pt(11)
        bdia, _ = csr_to_bdia(matrix)
        x = rng.standard_normal(matrix.n_cols)
        expected = matrix.spmv(x)
        for kernel in kernels_for(FormatName.BDIA):
            np.testing.assert_allclose(
                kernel(bdia, x), expected, atol=1e-10, err_msg=kernel.name
            )

    def test_generic_convert_roundtrip(self) -> None:
        matrix = laplacian_5pt(9)
        bdia, _ = convert(matrix, FormatName.BDIA)
        back, _ = convert(bdia, FormatName.CSR)
        np.testing.assert_allclose(back.to_dense(), matrix.to_dense())

    def test_fill_ratio_reflects_boundary_padding(self) -> None:
        bdia, _ = csr_to_bdia(laplacian_5pt(8))
        assert 0.5 < bdia.fill_ratio() < 1.0


class TestCostModel:
    def test_bdia_beats_dia_on_many_banded_diagonals(self) -> None:
        """The per-band amortisation: for a matrix with many contiguous
        diagonals, BDIA's loop overhead is ~1/3 of DIA's."""
        import math

        from repro.features.parameters import FeatureVector
        from repro.kernels.strategies import Strategy, strategy_set
        from repro.machine import INTEL_XEON_X5680, cost_breakdown
        from repro.types import Precision

        fv = FeatureVector(
            m=20_000, n=20_000, ndiags=30, ntdiags_ratio=1.0,
            nnz=580_000, aver_rd=29.0, max_rd=30, var_rd=0.5,
            er_dia=0.97, er_ell=0.97, r=math.inf,
        )
        strategies = strategy_set(Strategy.VECTORIZE)
        dia = cost_breakdown(
            INTEL_XEON_X5680, FormatName.DIA, fv, Precision.DOUBLE,
            strategies,
        )
        bdia = cost_breakdown(
            INTEL_XEON_X5680, FormatName.BDIA, fv, Precision.DOUBLE,
            strategies,
        )
        assert bdia.overhead_s < dia.overhead_s
