"""Tests for CG and AMG-preconditioned CG."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amg import AMGSolver
from repro.amg.krylov import amg_preconditioner, conjugate_gradient
from repro.collection.grids import laplacian_5pt, laplacian_7pt
from repro.errors import SolverError
from repro.formats import CSRMatrix


@pytest.fixture(scope="module")
def system():
    a = laplacian_5pt(24)
    rng = np.random.default_rng(3)
    x_true = rng.standard_normal(a.n_rows)
    return a, x_true, a.spmv(x_true)


class TestPlainCG:
    def test_solves_spd_system(self, system) -> None:
        a, x_true, b = system
        x, report = conjugate_gradient(a, b, tol=1e-10, max_iterations=3000)
        assert report.converged
        np.testing.assert_allclose(x, x_true, atol=1e-5)

    def test_residuals_monotone_overall(self, system) -> None:
        a, _, b = system
        _, report = conjugate_gradient(a, b, tol=1e-10, max_iterations=3000)
        assert report.residual_norms[-1] < report.residual_norms[0] * 1e-8

    def test_rejects_indefinite(self) -> None:
        a = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, -1.0]]))
        with pytest.raises(SolverError, match="positive definite"):
            conjugate_gradient(a, np.array([0.0, 1.0]))

    def test_validation(self, system) -> None:
        a, _, b = system
        with pytest.raises(SolverError, match="rhs"):
            conjugate_gradient(a, np.ones(3))


class TestAmgPcg:
    def test_preconditioning_cuts_iterations(self, system) -> None:
        a, _, b = system
        _, plain = conjugate_gradient(a, b, tol=1e-8, max_iterations=3000)
        solver = AMGSolver(a)
        precond = amg_preconditioner(solver)
        _, pcg = conjugate_gradient(
            a, b, tol=1e-8, max_iterations=3000, preconditioner=precond
        )
        assert pcg.converged
        assert pcg.iterations < plain.iterations / 2

    def test_pcg_solution_correct(self, system) -> None:
        a, x_true, b = system
        solver = AMGSolver(a)
        x, report = conjugate_gradient(
            a, b, tol=1e-10, preconditioner=amg_preconditioner(solver)
        )
        assert report.converged
        np.testing.assert_allclose(x, x_true, atol=1e-6)

    def test_3d_problem(self) -> None:
        a = laplacian_7pt(8)
        rng = np.random.default_rng(5)
        x_true = rng.standard_normal(a.n_rows)
        b = a.spmv(x_true)
        solver = AMGSolver(a)
        x, report = conjugate_gradient(
            a, b, tol=1e-10, preconditioner=amg_preconditioner(solver)
        )
        assert report.converged
        assert report.iterations < 30
        np.testing.assert_allclose(x, x_true, atol=1e-6)

    def test_custom_spmv_backend(self, system) -> None:
        a, x_true, b = system
        calls = []

        def counting(x):
            calls.append(1)
            return a.spmv(x)

        _, report = conjugate_gradient(a, b, tol=1e-8, spmv=counting)
        assert len(calls) == report.iterations + 1  # +1 initial residual

    def test_bad_cycle_count(self, system) -> None:
        a, _, _ = system
        with pytest.raises(SolverError, match="cycles"):
            amg_preconditioner(AMGSolver(a), cycles=0)
