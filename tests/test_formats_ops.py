"""Sparse-ops tests: transpose, matmul, Galerkin triple product."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import CSRMatrix
from repro.formats.ops import (
    diagonal,
    extract_columns,
    matmul,
    scale_rows,
    transpose,
    triple_product,
)
from tests.conftest import random_csr


class TestTranspose:
    def test_matches_dense(self, rng) -> None:
        a = random_csr(rng, 20, 15, 0.2)
        np.testing.assert_array_equal(
            transpose(a).to_dense(), a.to_dense().T
        )

    def test_double_transpose_identity(self, rng) -> None:
        a = random_csr(rng, 12, 30, 0.15)
        np.testing.assert_array_equal(
            transpose(transpose(a)).to_dense(), a.to_dense()
        )

    def test_empty(self) -> None:
        a = CSRMatrix(np.zeros(4, np.int64), [], np.zeros(0), (3, 5))
        t = transpose(a)
        assert t.shape == (5, 3)
        assert t.nnz == 0


class TestMatmul:
    def test_matches_dense(self, rng) -> None:
        a = random_csr(rng, 12, 20, 0.25)
        b = random_csr(rng, 20, 9, 0.25)
        np.testing.assert_allclose(
            matmul(a, b).to_dense(), a.to_dense() @ b.to_dense(), atol=1e-12
        )

    def test_identity(self, rng) -> None:
        a = random_csr(rng, 10, 10, 0.3)
        eye = CSRMatrix.from_dense(np.eye(10))
        np.testing.assert_allclose(
            matmul(a, eye).to_dense(), a.to_dense(), atol=1e-12
        )

    def test_dimension_mismatch(self, rng) -> None:
        with pytest.raises(FormatError, match="mismatch"):
            matmul(random_csr(rng, 4, 5, 0.5), random_csr(rng, 4, 5, 0.5))

    def test_empty_operand(self, rng) -> None:
        a = random_csr(rng, 6, 8, 0.3)
        empty = CSRMatrix(np.zeros(9, np.int64), [], np.zeros(0), (8, 4))
        out = matmul(a, empty)
        assert out.shape == (6, 4)
        assert out.nnz == 0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_random_products(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        a = random_csr(rng, int(rng.integers(1, 15)), int(rng.integers(1, 15)),
                       0.3)
        b = random_csr(rng, a.n_cols, int(rng.integers(1, 15)), 0.3)
        np.testing.assert_allclose(
            matmul(a, b).to_dense(), a.to_dense() @ b.to_dense(), atol=1e-10
        )


class TestTripleProduct:
    def test_galerkin_matches_dense(self, rng) -> None:
        a = random_csr(rng, 16, 16, 0.25)
        p = random_csr(rng, 16, 6, 0.3)
        expected = p.to_dense().T @ a.to_dense() @ p.to_dense()
        np.testing.assert_allclose(
            triple_product(p, a).to_dense(), expected, atol=1e-10
        )


class TestHelpers:
    def test_diagonal(self, rng) -> None:
        a = random_csr(rng, 10, 10, 0.4)
        np.testing.assert_array_equal(diagonal(a), np.diag(a.to_dense()))

    def test_diagonal_rectangular(self, rng) -> None:
        a = random_csr(rng, 8, 5, 0.4)
        np.testing.assert_array_equal(
            diagonal(a), np.diag(a.to_dense())
        )

    def test_scale_rows(self, rng) -> None:
        a = random_csr(rng, 7, 9, 0.4)
        f = rng.standard_normal(7)
        np.testing.assert_allclose(
            scale_rows(a, f).to_dense(), np.diag(f) @ a.to_dense(),
            atol=1e-12,
        )

    def test_scale_rows_bad_length(self, rng) -> None:
        with pytest.raises(FormatError, match="factors"):
            scale_rows(random_csr(rng, 7, 9, 0.4), np.ones(3))

    def test_extract_columns(self, rng) -> None:
        a = random_csr(rng, 8, 10, 0.4)
        keep = np.zeros(10, dtype=bool)
        keep[[1, 4, 7]] = True
        restricted, col_map = extract_columns(a, keep)
        np.testing.assert_array_equal(
            restricted.to_dense(), a.to_dense()[:, [1, 4, 7]]
        )
        assert col_map[4] == 1
        assert col_map[0] == -1

    def test_extract_columns_bad_mask(self, rng) -> None:
        with pytest.raises(FormatError, match="mask"):
            extract_columns(random_csr(rng, 5, 5, 0.5), np.ones(3, bool))
