"""Matrix-collection tests: generators produce the structures they claim."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.collection import (
    DOMAIN_PROFILES,
    TOTAL_COLLECTION_SIZE,
    collection_size,
    domain,
    generate_collection,
    representatives,
)
from repro.collection import banded, blocks, graphs, grids, random_sparse
from repro.features import extract_features


class TestGrids:
    def test_laplacian_1d_structure(self) -> None:
        m = grids.laplacian_1d(50)
        fv = extract_features(m)
        assert fv.ndiags == 3
        assert fv.ntdiags_ratio == 1.0
        np.testing.assert_allclose(m.to_dense()[1, :3], [-1.0, 2.0, -1.0])

    def test_laplacian_5pt_no_wraparound(self) -> None:
        m = grids.laplacian_5pt(8, 8)
        dense = m.to_dense()
        # Node (0, 7) must not couple to node (1, 0).
        assert dense[7, 8] == 0.0
        assert extract_features(m).ndiags == 5

    def test_laplacian_9pt_diagonal_count(self) -> None:
        assert extract_features(grids.laplacian_9pt(10, 10)).ndiags == 9

    def test_laplacian_7pt_diagonal_count(self) -> None:
        assert extract_features(grids.laplacian_7pt(6, 6, 6)).ndiags == 7

    def test_laplacians_are_weakly_diagonally_dominant(self) -> None:
        for m in (grids.laplacian_5pt(6), grids.laplacian_7pt(4),
                  grids.laplacian_9pt(6)):
            dense = m.to_dense()
            diag = np.abs(np.diag(dense))
            off = np.abs(dense).sum(axis=1) - diag
            assert np.all(diag >= off - 1e-12)

    def test_grid_shape_for_rows(self) -> None:
        assert grids.grid_shape_for_rows(10000, 2) == (100, 100)
        nx, ny, nz = grids.grid_shape_for_rows(27000, 3)
        assert nx * ny * nz == pytest.approx(27000, rel=0.2)


class TestBanded:
    def test_banded_diag_count(self, rng) -> None:
        m = banded.banded_matrix(400, 9, seed=rng)
        fv = extract_features(m)
        assert fv.ndiags == 9
        assert fv.ntdiags_ratio > 0.9

    def test_low_occupancy_breaks_true_diagonals(self, rng) -> None:
        m = banded.banded_matrix(400, 9, seed=rng, occupancy=0.3)
        assert extract_features(m).ntdiags_ratio < 0.3

    def test_perturbed_band_lowers_ratio(self, rng) -> None:
        clean = banded.banded_matrix(500, 5, seed=1)
        noisy = banded.perturbed_band_matrix(500, 5, noise_nnz=800, seed=1)
        assert (
            extract_features(noisy).ntdiags_ratio
            < extract_features(clean).ntdiags_ratio
        )
        assert extract_features(noisy).ndiags > 100

    def test_invalid_diag_count(self) -> None:
        with pytest.raises(ValueError, match="n_diags"):
            banded.banded_matrix(100, 0)


class TestGraphs:
    def test_power_law_graph_is_scale_free(self) -> None:
        m = graphs.power_law_graph(8000, exponent=2.2, seed=42)
        fv = extract_features(m)
        assert math.isfinite(fv.r)
        assert 1.0 <= fv.r <= 4.0

    def test_uniform_bipartite_zero_variance(self) -> None:
        m = graphs.uniform_bipartite(500, 300, 4, seed=7)
        fv = extract_features(m)
        assert fv.var_rd == 0.0
        assert fv.max_rd == 4
        assert fv.er_ell == 1.0

    def test_road_network_low_degree(self) -> None:
        fv = extract_features(graphs.road_network(5000, seed=3))
        assert fv.aver_rd < 4.0
        assert fv.max_rd <= 6

    def test_small_world_has_local_structure(self) -> None:
        m = graphs.small_world_graph(1000, base_degree=6, seed=5)
        fv = extract_features(m)
        assert fv.aver_rd == pytest.approx(6.0, rel=0.15)

    def test_circuit_has_hub_rows(self) -> None:
        fv = extract_features(graphs.circuit_matrix(3000, seed=11))
        assert fv.max_rd > 10 * fv.aver_rd


class TestRandomAndBlocks:
    def test_uniform_random_degree(self) -> None:
        fv = extract_features(
            random_sparse.uniform_random(3000, 3000, 8.0, seed=1)
        )
        assert fv.aver_rd == pytest.approx(8.0, rel=0.15)

    def test_lp_not_scale_free(self) -> None:
        fv = extract_features(
            random_sparse.lp_constraint_matrix(3000, 3500, seed=2)
        )
        # The dense coupling rows must NOT register as a power law.
        assert not (math.isfinite(fv.r) and 1.0 <= fv.r <= 4.0)

    def test_economics_has_full_diagonal(self) -> None:
        m = random_sparse.economics_matrix(800, seed=4)
        assert np.all(np.diag(m.to_dense()) != 0.0)

    def test_block_structured_heavy_rows(self) -> None:
        fv = extract_features(
            blocks.block_structured(1200, block_size=6, seed=6)
        )
        assert fv.aver_rd > 10

    def test_wide_rows(self) -> None:
        fv = extract_features(
            blocks.wide_row_matrix(800, aver_degree=60, seed=9)
        )
        assert fv.aver_rd > 25


class TestCollection:
    def test_total_size_matches_table1(self) -> None:
        assert TOTAL_COLLECTION_SIZE == 2376  # Table 1 rows as printed
        assert collection_size(1.0) == 2376

    def test_scaled_generation(self) -> None:
        pairs = list(generate_collection(scale=0.01, size_scale=0.2))
        assert len(pairs) == collection_size(0.01)
        domains = {spec.domain for spec, _ in pairs}
        assert len(domains) == len(DOMAIN_PROFILES)

    def test_generation_is_deterministic(self) -> None:
        first = [
            (s.name, m.nnz)
            for s, m in generate_collection(
                seed=99, scale=0.005, size_scale=0.2
            )
        ]
        second = [
            (s.name, m.nnz)
            for s, m in generate_collection(
                seed=99, scale=0.005, size_scale=0.2
            )
        ]
        assert first == second

    def test_max_matrices_truncates(self) -> None:
        pairs = list(
            generate_collection(scale=1.0, size_scale=0.1, max_matrices=5)
        )
        assert len(pairs) == 5

    def test_domain_lookup(self) -> None:
        assert domain("graph").count == 334
        with pytest.raises(KeyError, match="unknown"):
            domain("astrology")


class TestRepresentatives:
    def test_sixteen_matrices_with_figure8_names(self) -> None:
        reps = representatives(size_scale=0.05)
        assert len(reps) == 16
        names = [spec.name for spec, _ in reps]
        assert names[0] == "pcrystk02"
        assert names[15] == "roadNet-CA"
        assert [spec.index for spec, _ in reps] == list(range(1, 17))

    def test_affinity_grouping_features(self) -> None:
        reps = representatives(size_scale=0.05)
        # No.1-4 are DIA stand-ins: strong true diagonals.
        for spec, matrix in reps[:4]:
            fv = extract_features(matrix)
            assert fv.ntdiags_ratio > 0.6, spec.name
        # No.5-8 are ELL stand-ins: zero row-degree variance.
        for spec, matrix in reps[4:8]:
            fv = extract_features(matrix)
            assert fv.var_rd == 0.0, spec.name
        # No.13-16 are COO stand-ins: scale-free or heavy-tailed rows.
        for spec, matrix in reps[12:]:
            fv = extract_features(matrix)
            assert math.isfinite(fv.r), spec.name
