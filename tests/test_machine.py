"""Cost-model tests: the qualitative rules of Section 4 must fall out."""

from __future__ import annotations

import math

import pytest

from repro.features.parameters import FeatureVector
from repro.kernels.strategies import Strategy
from repro.machine import (
    AMD_OPTERON_6168,
    INTEL_XEON_X5680,
    SimulatedBackend,
    cost_breakdown,
    estimate_gflops,
    estimate_spmv_time,
    gflops,
    platform,
)
from repro.types import BASIC_FORMATS, FormatName, Precision

FULL = frozenset({Strategy.VECTORIZE, Strategy.PARALLEL})


def features(**overrides) -> FeatureVector:
    base = dict(
        m=100_000, n=100_000, ndiags=50_000, ntdiags_ratio=0.0,
        nnz=1_000_000, aver_rd=10.0, max_rd=40, var_rd=30.0,
        er_dia=0.0002, er_ell=0.25, r=math.inf,
    )
    base.update(overrides)
    return FeatureVector(**base)


BANDED = features(
    ndiags=9, ntdiags_ratio=1.0, aver_rd=9.0, max_rd=9, var_rd=0.2,
    er_dia=0.99, er_ell=0.99, nnz=900_000,
)
UNIFORM = features(
    ndiags=60_000, ntdiags_ratio=0.0, aver_rd=4.0, max_rd=4, var_rd=0.0,
    er_dia=0.00002, er_ell=1.0, nnz=400_000,
)
POWER_LAW = features(
    aver_rd=3.0, max_rd=5_000, var_rd=10_000.0, er_ell=0.0006,
    nnz=300_000, r=2.1,
)
IRREGULAR = features()


def best_format(fv: FeatureVector, arch=INTEL_XEON_X5680) -> FormatName:
    return min(
        BASIC_FORMATS,
        key=lambda f: estimate_spmv_time(
            arch, f, fv, Precision.SINGLE, FULL
        ),
    )


class TestFormatAffinity:
    def test_banded_prefers_dia(self) -> None:
        assert best_format(BANDED) is FormatName.DIA

    def test_uniform_rows_prefer_ell(self) -> None:
        assert best_format(UNIFORM) is FormatName.ELL

    def test_power_law_prefers_coo(self) -> None:
        assert best_format(POWER_LAW) is FormatName.COO

    def test_irregular_prefers_csr(self) -> None:
        assert best_format(IRREGULAR) is FormatName.CSR

    def test_affinities_hold_on_amd_too(self) -> None:
        assert best_format(BANDED, AMD_OPTERON_6168) is FormatName.DIA
        assert best_format(POWER_LAW, AMD_OPTERON_6168) is FormatName.COO


class TestMonotonicity:
    """Each Table 2 arrow: the parameter moves performance as documented."""

    def test_more_diagonals_hurt_dia(self) -> None:
        fast = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.DIA, BANDED, Precision.SINGLE, FULL
        )
        worse = features(
            ndiags=900, ntdiags_ratio=1.0, er_dia=0.0099, nnz=900_000,
            aver_rd=9.0, max_rd=9, var_rd=0.2,
        )
        slow = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.DIA, worse, Precision.SINGLE, FULL
        )
        assert slow > fast

    def test_larger_max_rd_hurts_ell(self) -> None:
        fast = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.ELL, UNIFORM, Precision.SINGLE, FULL
        )
        worse = features(
            ndiags=60_000, aver_rd=4.0, max_rd=400, var_rd=800.0,
            er_ell=0.01, nnz=400_000,
        )
        slow = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.ELL, worse, Precision.SINGLE, FULL
        )
        assert slow > fast

    def test_variance_hurts_parallel_csr_not_coo(self) -> None:
        # Compare jitter-free breakdowns: the imbalance factor is the
        # quantity under test.
        skewed = features(var_rd=10_000.0, aver_rd=3.0, nnz=300_000, r=2.1)
        balanced = features(var_rd=0.5, aver_rd=3.0, nnz=300_000, r=2.1)
        csr_ratio = cost_breakdown(
            INTEL_XEON_X5680, FormatName.CSR, skewed, Precision.SINGLE, FULL
        ).total_s / cost_breakdown(
            INTEL_XEON_X5680, FormatName.CSR, balanced, Precision.SINGLE, FULL
        ).total_s
        coo_ratio = cost_breakdown(
            INTEL_XEON_X5680, FormatName.COO, skewed, Precision.SINGLE, FULL
        ).total_s / cost_breakdown(
            INTEL_XEON_X5680, FormatName.COO, balanced, Precision.SINGLE, FULL
        ).total_s
        assert csr_ratio > 1.5
        assert coo_ratio == pytest.approx(1.0)


class TestStrategies:
    def test_vectorize_speeds_up_every_format(self) -> None:
        for fmt in BASIC_FORMATS:
            plain = estimate_spmv_time(
                INTEL_XEON_X5680, fmt, IRREGULAR, Precision.SINGLE,
                frozenset({Strategy.PARALLEL}),
            )
            vec = estimate_spmv_time(
                INTEL_XEON_X5680, fmt, IRREGULAR, Precision.SINGLE, FULL
            )
            assert vec <= plain, fmt

    def test_parallel_speeds_up(self) -> None:
        serial = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.CSR, IRREGULAR, Precision.SINGLE,
            frozenset({Strategy.VECTORIZE}),
        )
        par = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.CSR, IRREGULAR, Precision.SINGLE, FULL
        )
        assert par < serial

    def test_prefetch_has_no_effect(self) -> None:
        base = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.CSR, IRREGULAR, Precision.SINGLE, FULL
        )
        with_prefetch = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.CSR, IRREGULAR, Precision.SINGLE,
            FULL | {Strategy.PREFETCH},
        )
        assert with_prefetch == pytest.approx(base)

    def test_row_block_helps_unblocked_dia(self) -> None:
        plain = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.DIA, BANDED, Precision.SINGLE, FULL
        )
        blocked = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.DIA, BANDED, Precision.SINGLE,
            FULL | {Strategy.ROW_BLOCK},
        )
        assert blocked <= plain


class TestMagnitudes:
    def test_intel_sp_peak_in_paper_range(self) -> None:
        # The paper's headline: up to ~51 GFLOPS SP on Intel.
        g = estimate_gflops(
            INTEL_XEON_X5680, FormatName.DIA,
            features(
                m=14_000, n=14_000, ndiags=40, ntdiags_ratio=0.95,
                nnz=491_000, aver_rd=35.0, max_rd=40, var_rd=4.0,
                er_dia=0.87, er_ell=0.87,
            ),
            Precision.SINGLE, FULL,
        )
        assert 35.0 < g < 70.0

    def test_double_precision_slower(self) -> None:
        for fmt in BASIC_FORMATS:
            sp = estimate_spmv_time(
                INTEL_XEON_X5680, fmt, BANDED, Precision.SINGLE, FULL
            )
            dp = estimate_spmv_time(
                INTEL_XEON_X5680, fmt, BANDED, Precision.DOUBLE, FULL
            )
            assert dp > sp, fmt

    def test_gflops_helper(self) -> None:
        assert gflops(1_000_000, 1e-3) == pytest.approx(2.0)
        assert gflops(100, 0.0) == 0.0


class TestBackendAndPresets:
    def test_simulated_backend_uses_cost_model(self) -> None:
        from repro.kernels import find_kernel, strategy_set

        backend = SimulatedBackend(INTEL_XEON_X5680, Precision.SINGLE)
        kernel = find_kernel(
            FormatName.CSR, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
        )
        measured = backend.measure(kernel, None, IRREGULAR)
        expected = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.CSR, IRREGULAR,
            Precision.SINGLE, FULL,
        )
        assert measured == pytest.approx(expected)

    def test_platform_lookup(self) -> None:
        assert platform("intel") is INTEL_XEON_X5680
        assert platform("AMD") is AMD_OPTERON_6168
        with pytest.raises(KeyError, match="unknown platform"):
            platform("sparc")

    def test_cost_breakdown_components_positive(self) -> None:
        bd = cost_breakdown(
            INTEL_XEON_X5680, FormatName.CSR, IRREGULAR,
            Precision.DOUBLE, FULL,
        )
        assert bd.memory_s > 0 and bd.compute_s > 0 and bd.overhead_s > 0
        assert bd.imbalance >= 1.0
        assert bd.total_s >= max(bd.memory_s, bd.compute_s)
