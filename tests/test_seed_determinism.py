"""Seed-determinism sweep: the whole tuning pipeline is a pure function
of its seed.

Feature extraction and the tuning decision are run *twice* for every
corpus matrix under the same seed and must produce identical results —
the property the failure-replay workflow (re-running a logged seed)
depends on.  A third pass runs with tracing enabled, because
observability must never perturb the decisions it observes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.collection import banded, generate_collection, graphs, random_sparse
from repro.features import extract_features
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.tuner import SMAT
from repro.types import Precision


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


def _corpus(seed: int):
    yield banded.banded_matrix(60, 5, seed=seed)
    yield graphs.power_law_graph(80, exponent=2.2, seed=seed)
    yield random_sparse.uniform_random(50, 50, 4.0, seed=seed)
    rng = np.random.default_rng(seed)
    dense = np.where(
        rng.random((40, 40)) < 0.1, rng.standard_normal((40, 40)), 0.0
    )
    from repro.formats.csr import CSRMatrix

    yield CSRMatrix.from_dense(dense)


@pytest.mark.parametrize("seed", [2013, 7, 4242])
class TestSeedDeterminism:
    def test_generators_are_seed_deterministic(self, seed: int) -> None:
        for first, second in zip(_corpus(seed), _corpus(seed)):
            assert first.shape == second.shape
            assert np.array_equal(first.ptr, second.ptr)
            assert np.array_equal(first.indices, second.indices)
            assert np.array_equal(first.data, second.data)

    def test_feature_extraction_is_deterministic(self, seed: int) -> None:
        for matrix in _corpus(seed):
            assert (
                extract_features(matrix).as_dict()
                == extract_features(matrix).as_dict()
            )

    def test_decisions_are_deterministic(self, smat, seed: int) -> None:
        for matrix in _corpus(seed):
            first = smat.decide(matrix).to_dict()
            second = smat.decide(matrix).to_dict()
            assert first == second

    def test_tracing_does_not_change_decisions(self, smat, seed: int) -> None:
        obs.uninstall()
        try:
            for matrix in _corpus(seed):
                untraced = smat.decide(matrix).to_dict()
                with obs.installed(obs.Tracer()) as tracer:
                    traced = smat.decide(matrix).to_dict()
                assert traced == untraced
                assert tracer.roots(), "decision produced no trace"
        finally:
            obs.uninstall()


def test_training_is_seed_deterministic() -> None:
    """Two trainings from the same collection seed agree rule for rule."""
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)

    def train():
        return SMAT.train(
            generate_collection(scale=0.04, size_scale=0.3, seed=11),
            backend=backend,
        )

    a, b = train(), train()
    assert a.model.grouped.describe() == b.model.grouped.describe()
    matrix = banded.banded_matrix(60, 5, seed=3)
    assert a.decide(matrix).to_dict() == b.decide(matrix).to_dict()
