"""Unit tests for the COO format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix


class TestConstruction:
    def test_paper_example_arrays(self, paper_dense: np.ndarray) -> None:
        coo = COOMatrix.from_dense(paper_dense)
        # Figure 2b arrays.
        assert coo.rows.tolist() == [0, 0, 1, 1, 2, 2, 2, 3, 3]
        assert coo.cols.tolist() == [0, 1, 1, 2, 0, 2, 3, 1, 3]
        assert coo.data.tolist() == [1, 5, 2, 6, 8, 3, 7, 9, 4]

    def test_unsorted_input_is_sorted_row_major(self) -> None:
        coo = COOMatrix(
            rows=[2, 0, 1], cols=[0, 1, 2], data=[3.0, 1.0, 2.0], shape=(3, 3)
        )
        assert coo.rows.tolist() == [0, 1, 2]
        assert coo.data.tolist() == [1.0, 2.0, 3.0]

    def test_round_trip_dense(self, paper_dense: np.ndarray) -> None:
        np.testing.assert_array_equal(
            COOMatrix.from_dense(paper_dense).to_dense(), paper_dense
        )

    def test_row_out_of_range(self) -> None:
        with pytest.raises(FormatError, match="out of range"):
            COOMatrix(rows=[3], cols=[0], data=[1.0], shape=(3, 3))

    def test_col_out_of_range(self) -> None:
        with pytest.raises(FormatError, match="out of range"):
            COOMatrix(rows=[0], cols=[-1], data=[1.0], shape=(3, 3))

    def test_length_mismatch(self) -> None:
        with pytest.raises(FormatError, match="equal length"):
            COOMatrix(rows=[0, 1], cols=[0], data=[1.0], shape=(3, 3))


class TestSpmv:
    def test_matches_dense(self, paper_dense: np.ndarray) -> None:
        coo = COOMatrix.from_dense(paper_dense)
        x = np.array([4.0, 3.0, 2.0, 1.0])
        np.testing.assert_allclose(coo.spmv(x), paper_dense @ x)

    def test_duplicates_accumulate(self) -> None:
        # The format definition allows duplicate coordinates; SpMV must sum.
        coo = COOMatrix(
            rows=[0, 0], cols=[1, 1], data=[2.0, 3.0], shape=(2, 2)
        )
        np.testing.assert_allclose(coo.spmv(np.array([0.0, 1.0])), [5.0, 0.0])

    def test_empty(self) -> None:
        coo = COOMatrix(rows=[], cols=[], data=np.zeros(0), shape=(3, 3))
        assert coo.nnz == 0
        np.testing.assert_array_equal(coo.spmv(np.ones(3)), np.zeros(3))

    def test_memory_bytes(self, paper_dense: np.ndarray) -> None:
        coo = COOMatrix.from_dense(paper_dense)
        # rows + cols (8 bytes each) + data (8 bytes) per nnz.
        assert coo.memory_bytes() == coo.nnz * 24
