"""Scoreboard algorithm and kernel-search tests (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.errors import TuningError
from repro.kernels import Strategy, kernels_for, strategy_set
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.tuner import (
    PerformanceTable,
    probe_matrix,
    run_scoreboard,
    search_kernels,
)
from repro.types import BASIC_FORMATS, FormatName, Precision

V, P, B, U, F = (
    Strategy.VECTORIZE,
    Strategy.PARALLEL,
    Strategy.ROW_BLOCK,
    Strategy.UNROLL,
    Strategy.PREFETCH,
)


def table_from(times: dict) -> PerformanceTable:
    table = PerformanceTable(format_name=FormatName.CSR)
    for strategies, seconds in times.items():
        table.record(frozenset(strategies), seconds)
    return table


class TestScoreboard:
    def test_single_strategy_gain_scores_plus_one(self) -> None:
        result = run_scoreboard(table_from({(): 1.0, (V,): 0.5}))
        assert result.strategy_scores[V] == 1
        assert result.best_strategies == {V}

    def test_single_strategy_loss_scores_minus_one(self) -> None:
        result = run_scoreboard(table_from({(): 1.0, (U,): 1.4}))
        assert result.strategy_scores[U] == -1
        assert result.best_strategies == frozenset()

    def test_sub_one_percent_gap_neglected(self) -> None:
        # The paper: "performance gap ... less than 0.01 ... neglect it".
        result = run_scoreboard(table_from({(): 1.0, (F,): 0.995}))
        assert result.strategy_scores[F] == 0

    def test_multi_strategy_compares_one_less(self) -> None:
        result = run_scoreboard(
            table_from({(): 1.0, (V,): 0.5, (V, P): 0.1})
        )
        # PARALLEL is judged by (V, P) vs (V,).
        assert result.strategy_scores[P] == 1
        assert result.best_strategies == {V, P}

    def test_implementation_score_sums_strategies(self) -> None:
        result = run_scoreboard(
            table_from({(): 1.0, (V,): 0.5, (P,): 0.7, (V, P): 0.2})
        )
        assert result.score_of(frozenset({V, P})) == 2

    def test_harmful_strategy_excluded_from_winner(self) -> None:
        result = run_scoreboard(
            table_from({(): 1.0, (V,): 0.5, (U,): 1.5, (V, U): 0.8})
        )
        assert result.best_strategies == {V}

    def test_tie_breaks_toward_fastest(self) -> None:
        # F is neglected (gap < 1%), so {V} and {V, F} tie on score; the
        # faster measurement wins.
        result = run_scoreboard(
            table_from({(): 1.0, (V,): 0.500, (F,): 1.0, (V, F): 0.501})
        )
        assert result.best_strategies == {V}

    def test_empty_table_rejected(self) -> None:
        with pytest.raises(TuningError, match="empty"):
            run_scoreboard(PerformanceTable(format_name=FormatName.CSR))

    def test_non_positive_measurement_rejected(self) -> None:
        table = PerformanceTable(format_name=FormatName.CSR)
        with pytest.raises(TuningError, match="non-positive"):
            table.record(frozenset(), 0.0)

    def test_fastest_lookup(self) -> None:
        table = table_from({(): 1.0, (V,): 0.25})
        strategies, seconds = table.fastest()
        assert strategies == {V}
        assert seconds == 0.25


class TestKernelSearch:
    @pytest.fixture(scope="class")
    def result(self):
        backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
        return search_kernels(backend)

    def test_one_kernel_per_basic_format(self, result) -> None:
        assert set(result.kernels) == set(BASIC_FORMATS)

    def test_winners_use_vectorize_and_parallel(self, result) -> None:
        for fmt in BASIC_FORMATS:
            winner = result.kernel_for(fmt)
            assert Strategy.VECTORIZE in winner.strategies, fmt
            assert Strategy.PARALLEL in winner.strategies, fmt

    def test_prefetch_never_wins(self, result) -> None:
        # PREFETCH has no effect; the neglect rule must keep it out.
        for fmt in BASIC_FORMATS:
            assert Strategy.PREFETCH not in result.kernel_for(fmt).strategies

    def test_tables_cover_all_registered_kernels(self, result) -> None:
        for fmt in BASIC_FORMATS:
            assert len(result.tables[fmt].times) == len(kernels_for(fmt))

    def test_probe_matrices_match_format_structure(self) -> None:
        from repro.features import extract_features

        dia_probe = extract_features(probe_matrix(FormatName.DIA))
        assert dia_probe.ntdiags_ratio > 0.5
        ell_probe = extract_features(probe_matrix(FormatName.ELL))
        assert ell_probe.var_rd == 0.0
