"""Unit tests for the BCSR and HYB extension formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix, CSRMatrix, ELLMatrix, HYBMatrix
from repro.formats.convert import csr_to_bcsr, csr_to_hyb


def block_dense() -> np.ndarray:
    """A 6x6 matrix made of three dense 2x2 blocks."""
    dense = np.zeros((6, 6))
    dense[0:2, 0:2] = [[1.0, 2.0], [3.0, 4.0]]
    dense[2:4, 4:6] = [[5.0, 6.0], [7.0, 8.0]]
    dense[4:6, 2:4] = [[9.0, 1.0], [2.0, 3.0]]
    return dense


class TestBCSR:
    def test_block_extraction(self) -> None:
        csr = CSRMatrix.from_dense(block_dense())
        bcsr, _ = csr_to_bcsr(csr, block_shape=(2, 2))
        assert bcsr.n_blocks == 3
        assert bcsr.fill_ratio() == 1.0

    def test_round_trip(self) -> None:
        dense = block_dense()
        bcsr, _ = csr_to_bcsr(CSRMatrix.from_dense(dense), block_shape=(2, 2))
        np.testing.assert_array_equal(bcsr.to_dense(), dense)

    def test_spmv_matches_dense(self) -> None:
        dense = block_dense()
        bcsr, _ = csr_to_bcsr(CSRMatrix.from_dense(dense), block_shape=(2, 2))
        x = np.arange(6.0)
        np.testing.assert_allclose(bcsr.spmv(x), dense @ x)

    def test_unaligned_shape_pads_edge_blocks(self) -> None:
        dense = np.zeros((5, 5))
        dense[4, 4] = 2.0
        dense[0, 0] = 1.0
        bcsr, _ = csr_to_bcsr(CSRMatrix.from_dense(dense), block_shape=(2, 2))
        np.testing.assert_array_equal(bcsr.to_dense(), dense)
        np.testing.assert_allclose(bcsr.spmv(np.ones(5)), dense @ np.ones(5))

    def test_partial_blocks_lower_fill(self, rng) -> None:
        dense = np.diag(np.ones(8))
        bcsr, _ = csr_to_bcsr(CSRMatrix.from_dense(dense), block_shape=(2, 2))
        # Diagonal hits 4 blocks of 4 slots each with 2 non-zeros apiece.
        assert bcsr.n_blocks == 4
        assert bcsr.fill_ratio() == pytest.approx(0.5)

    def test_bad_block_shape(self) -> None:
        csr = CSRMatrix.from_dense(block_dense())
        with pytest.raises(FormatError, match="positive"):
            csr_to_bcsr(csr, block_shape=(0, 2))


class TestHYB:
    def test_split_widths(self) -> None:
        dense = np.zeros((4, 8))
        dense[0, :8] = 1.0  # a heavy row
        dense[1, 0] = 2.0
        dense[2, 1] = 3.0
        dense[3, 2] = 4.0
        hyb, _ = csr_to_hyb(CSRMatrix.from_dense(dense), ell_width=1)
        assert hyb.ell_width == 1
        assert hyb.ell_part.nnz == 4
        assert hyb.coo_part.nnz == 7

    def test_round_trip(self) -> None:
        dense = block_dense()
        hyb, _ = csr_to_hyb(CSRMatrix.from_dense(dense), ell_width=1)
        np.testing.assert_array_equal(hyb.to_dense(), dense)

    def test_spmv_matches_dense(self) -> None:
        dense = block_dense()
        hyb, _ = csr_to_hyb(CSRMatrix.from_dense(dense), ell_width=1)
        x = np.arange(6.0) - 3.0
        np.testing.assert_allclose(hyb.spmv(x), dense @ x)

    def test_default_width_covers_most_rows(self) -> None:
        dense = np.eye(10)
        dense[0, :] = 1.0
        hyb, _ = csr_to_hyb(CSRMatrix.from_dense(dense))
        frac_ell, frac_coo = hyb.split_fractions()
        assert frac_ell + frac_coo == pytest.approx(1.0)
        assert frac_coo > 0  # the heavy row overflows

    def test_mismatched_parts_rejected(self) -> None:
        ell = ELLMatrix.from_dense(np.eye(3))
        coo = COOMatrix.from_dense(np.eye(4))
        with pytest.raises(FormatError, match="shape"):
            HYBMatrix(ell, coo)
