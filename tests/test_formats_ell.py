"""Unit tests for the ELL format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import ELLMatrix


class TestConstruction:
    def test_paper_example_layout(self, paper_dense: np.ndarray) -> None:
        ell = ELLMatrix.from_dense(paper_dense)
        assert ell.max_row_degree == 3
        # Column-major packed storage: slot 0 holds the first non-zero of
        # every row -> values [1, 2, 8, 9] at columns [0, 1, 0, 1].
        assert ell.data[0].tolist() == [1, 2, 8, 9]
        assert ell.indices[0].tolist() == [0, 1, 0, 1]
        # Slot 2 only row 2 has a third non-zero (7 at column 3).
        assert ell.data[2].tolist() == [0, 0, 7, 0]

    def test_round_trip_dense(self, paper_dense: np.ndarray) -> None:
        np.testing.assert_array_equal(
            ELLMatrix.from_dense(paper_dense).to_dense(), paper_dense
        )

    def test_nnz_excludes_padding(self, paper_dense: np.ndarray) -> None:
        ell = ELLMatrix.from_dense(paper_dense)
        assert ell.nnz == 9
        assert ell.padded_size == 12
        assert ell.fill_ratio() == pytest.approx(0.75)

    def test_shape_mismatch(self) -> None:
        with pytest.raises(FormatError, match="mismatch"):
            ELLMatrix(
                indices=np.zeros((2, 3), dtype=np.int64),
                data=np.zeros((2, 4)),
                shape=(3, 3),
                nnz=0,
            )

    def test_row_major_layout_rejected(self) -> None:
        # Arrays must be (max_RD, n_rows); a (n_rows, max_RD) array with a
        # different row count is a layout error.
        with pytest.raises(FormatError, match="column-major"):
            ELLMatrix(
                indices=np.zeros((4, 3), dtype=np.int64),
                data=np.zeros((4, 3)),
                shape=(4, 4),
                nnz=0,
            )

    def test_bad_nnz(self) -> None:
        with pytest.raises(FormatError, match="nnz"):
            ELLMatrix(
                indices=np.zeros((1, 2), dtype=np.int64),
                data=np.zeros((1, 2)),
                shape=(2, 2),
                nnz=5,
            )

    def test_index_out_of_range(self) -> None:
        with pytest.raises(FormatError, match="out of range"):
            ELLMatrix(
                indices=np.full((1, 2), 7, dtype=np.int64),
                data=np.ones((1, 2)),
                shape=(2, 2),
                nnz=2,
            )


class TestSpmv:
    def test_matches_dense(self, paper_dense: np.ndarray) -> None:
        ell = ELLMatrix.from_dense(paper_dense)
        x = np.array([2.0, 0.0, -1.0, 3.0])
        np.testing.assert_allclose(ell.spmv(x), paper_dense @ x)

    def test_padding_is_harmless(self) -> None:
        # One long row forces heavy padding; results must be exact anyway.
        dense = np.zeros((4, 6))
        dense[0] = np.arange(1.0, 7.0)
        dense[2, 3] = 5.0
        ell = ELLMatrix.from_dense(dense)
        x = np.arange(6.0)
        np.testing.assert_allclose(ell.spmv(x), dense @ x)

    def test_uniform_rows_no_padding(self) -> None:
        dense = np.eye(5) * 3.0
        ell = ELLMatrix.from_dense(dense)
        assert ell.fill_ratio() == 1.0
        np.testing.assert_allclose(ell.spmv(np.ones(5)), np.full(5, 3.0))

    def test_empty_matrix(self) -> None:
        ell = ELLMatrix.from_dense(np.zeros((3, 3)))
        assert ell.max_row_degree == 0
        np.testing.assert_array_equal(ell.spmv(np.ones(3)), np.zeros(3))
