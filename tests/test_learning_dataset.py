"""Tests for training datasets and persistence."""

from __future__ import annotations

import math

import pytest

from repro.errors import LearningError
from repro.features.parameters import FeatureVector
from repro.learning import TrainingDataset
from repro.types import FormatName


def record(
    label: FormatName, aver_rd: float = 5.0, r: float = math.inf
) -> FeatureVector:
    return FeatureVector(
        m=1000, n=1000, ndiags=100, ntdiags_ratio=0.1, nnz=5000,
        aver_rd=aver_rd, max_rd=int(aver_rd * 3), var_rd=2.0,
        er_dia=0.05, er_ell=0.33, r=r, best_format=label,
    )


def small_dataset(n_per_class: int = 10) -> TrainingDataset:
    records = []
    for i in range(n_per_class):
        records.append(record(FormatName.CSR, aver_rd=10 + i))
        records.append(record(FormatName.COO, aver_rd=2 + 0.01 * i, r=2.0))
    return TrainingDataset(tuple(records))


class TestDataset:
    def test_unlabelled_record_rejected(self) -> None:
        bad = record(FormatName.CSR)
        unlabelled = FeatureVector(**{**bad.as_dict(), "m": 10, "n": 10,
                                      "nnz": 10, "ndiags": 1, "max_rd": 1})
        with pytest.raises(LearningError, match="label"):
            TrainingDataset((unlabelled,))

    def test_class_counts_and_majority(self) -> None:
        ds = TrainingDataset(
            tuple([record(FormatName.CSR)] * 3 + [record(FormatName.DIA)])
        )
        assert ds.class_counts()[FormatName.CSR] == 3
        assert ds.majority_class() is FormatName.CSR

    def test_split_partitions_everything(self) -> None:
        ds = small_dataset()
        train, test = ds.split(0.25, seed=3)
        assert len(train) + len(test) == len(ds)
        assert len(test) == 5

    def test_split_fraction_validation(self) -> None:
        with pytest.raises(LearningError, match="test_fraction"):
            small_dataset().split(1.5)

    def test_folds_cover_all_records_once(self) -> None:
        ds = small_dataset()
        folds = ds.folds(4, seed=0)
        assert len(folds) == 4
        total_test = sum(len(test) for _, test in folds)
        assert total_test == len(ds)
        for train, test in folds:
            assert len(train) + len(test) == len(ds)

    def test_folds_validation(self) -> None:
        with pytest.raises(LearningError, match="folds"):
            small_dataset().folds(1)

    def test_round_trip_persistence(self, tmp_path) -> None:
        ds = small_dataset()
        path = tmp_path / "features.jsonl"
        ds.save(path)
        loaded = TrainingDataset.load(path)
        assert len(loaded) == len(ds)
        assert loaded.records[0] == ds.records[0]

    def test_persistence_preserves_inf_r(self, tmp_path) -> None:
        ds = TrainingDataset((record(FormatName.CSR, r=math.inf),))
        path = tmp_path / "inf.jsonl"
        ds.save(path)
        assert math.isinf(TrainingDataset.load(path).records[0].r)

    def test_majority_of_empty_rejected(self) -> None:
        with pytest.raises(LearningError, match="empty"):
            TrainingDataset(()).majority_class()
