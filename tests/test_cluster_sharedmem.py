"""SharedArena allocator and SegmentCache tests (repro.cluster)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.cluster.sharedmem import (
    ALIGNMENT,
    SegmentCache,
    SharedArena,
    SharedArrayRef,
    SharedMemoryError,
)


class TestSharedArrayRef:
    def test_nbytes(self) -> None:
        ref = SharedArrayRef("seg", 0, (3, 4), "<f8")
        assert ref.nbytes == 3 * 4 * 8

    def test_pickles_small_regardless_of_array_size(self) -> None:
        # The descriptor is what rides in messages; its pickle must not
        # scale with the array it points at.
        huge = SharedArrayRef("seg", 0, (10_000_000,), "<f8")
        assert len(pickle.dumps(huge)) < 500


class TestSharedArena:
    def test_alloc_is_aligned(self) -> None:
        with SharedArena(64 * 1024) as arena:
            refs = [arena.alloc((n,), np.float64) for n in (1, 3, 17, 100)]
            assert all(ref.offset % ALIGNMENT == 0 for ref in refs)

    def test_place_view_roundtrip(self) -> None:
        rng = np.random.default_rng(5)
        with SharedArena(64 * 1024) as arena:
            array = rng.standard_normal(250)
            ref = arena.place(array)
            assert np.array_equal(arena.view(ref), array)

    def test_free_coalesces_neighbours(self) -> None:
        with SharedArena(4096) as arena:
            a = arena.alloc((256,), np.float64)  # 2048 B
            b = arena.alloc((128,), np.float64)  # 1024 B
            c = arena.alloc((128,), np.float64)  # 1024 B, arena now full
            with pytest.raises(SharedMemoryError):
                arena.alloc((1,), np.float64)
            arena.free(a)
            arena.free(c)
            arena.free(b)  # the middle block bridges a and c
            # Only a fully coalesced free list can satisfy this.
            full = arena.alloc((512,), np.float64)
            assert full.offset == 0

    def test_double_free_raises(self) -> None:
        with SharedArena(4096) as arena:
            ref = arena.alloc((8,), np.float64)
            arena.free(ref)
            with pytest.raises(SharedMemoryError, match="double free"):
                arena.free(ref)

    def test_foreign_ref_raises(self) -> None:
        with SharedArena(4096) as arena:
            foreign = SharedArrayRef("not-this-segment", 0, (8,), "<f8")
            with pytest.raises(SharedMemoryError, match="belongs to"):
                arena.free(foreign)

    def test_accounting(self) -> None:
        with SharedArena(8192) as arena:
            assert arena.bytes_free == arena.capacity
            ref = arena.alloc((100,), np.float64)
            assert arena.bytes_allocated == 832  # 800 B aligned up
            arena.free(ref)
            assert arena.bytes_allocated == 0
            assert arena.bytes_free == arena.capacity

    def test_alloc_after_close_raises(self) -> None:
        arena = SharedArena(4096)
        arena.close()
        arena.close()  # idempotent
        with pytest.raises(SharedMemoryError, match="closed"):
            arena.alloc((8,), np.float64)

    def test_tiny_capacity_rejected(self) -> None:
        with pytest.raises(ValueError):
            SharedArena(1)


class TestSegmentCache:
    def test_view_sees_owner_writes(self) -> None:
        cache = SegmentCache()
        with SharedArena(16 * 1024) as arena:
            array = np.arange(64, dtype=np.float64)
            ref = arena.place(array)
            try:
                view = cache.view(ref)
                assert np.array_equal(view, array)
                # Writes through the attached view land in the segment.
                view[0] = -1.0
                assert arena.view(ref)[0] == -1.0
            finally:
                del view
                cache.close()

    def test_detach(self) -> None:
        cache = SegmentCache()
        with SharedArena(16 * 1024) as arena:
            ref = arena.place(np.ones(8))
            view = cache.view(ref)
            del view
            assert cache.detach(ref.segment) is True
            assert cache.detach(ref.segment) is False
            cache.close()

    def test_missing_segment_raises(self) -> None:
        cache = SegmentCache()
        ghost = SharedArrayRef("smat-test-no-such-segment", 0, (4,), "<f8")
        with pytest.raises(SharedMemoryError, match="does not exist"):
            cache.view(ghost)
