"""Property-based tests on the runtime decision procedure.

Whatever matrix comes in, the tuner must produce a usable decision: a
format the matrix was actually converted to, a kernel matching that format,
non-negative overhead accounting, and a numerically correct product.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import banded, generate_collection, graphs, random_sparse
from repro.formats.csr import CSRMatrix
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.tuner import SMAT
from repro.types import Precision


@pytest.fixture(scope="module")
def smat():
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


@st.composite
def arbitrary_matrices(draw):
    """Random small matrices spanning every structural family."""
    kind = draw(st.sampled_from(
        ["banded", "uniform", "powerlaw", "random", "road", "circuit"]
    ))
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(min_value=60, max_value=900))
    if kind == "banded":
        return banded.banded_matrix(
            n, draw(st.integers(1, 9)), seed=seed,
            occupancy=draw(st.floats(0.3, 1.0)),
        )
    if kind == "uniform":
        return graphs.uniform_bipartite(
            n, max(16, n // 2), draw(st.integers(1, 6)), seed=seed
        )
    if kind == "powerlaw":
        return graphs.power_law_graph(
            n, exponent=draw(st.floats(1.6, 3.0)), seed=seed
        )
    if kind == "road":
        return graphs.road_network(n, seed=seed)
    if kind == "circuit":
        return graphs.circuit_matrix(n, seed=seed)
    return random_sparse.uniform_random(
        n, n, draw(st.floats(1.0, 20.0)), seed=seed
    )


@given(arbitrary_matrices())
@settings(max_examples=40, deadline=None)
def test_decision_is_always_usable(smat, matrix: CSRMatrix) -> None:
    decision = smat.decide(matrix)
    assert decision.matrix is not None
    assert decision.matrix.format_name is decision.format_name
    assert decision.kernel.format_name is decision.format_name
    assert decision.overhead_units >= 0.0
    assert 0.0 <= decision.confidence <= 1.0
    # The converted matrix is the same logical operator.
    assert decision.matrix.nnz == matrix.nnz
    assert decision.matrix.shape == matrix.shape


@given(arbitrary_matrices(), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_tuned_spmv_always_correct(smat, matrix: CSRMatrix, seed: int) -> None:
    x = np.random.default_rng(seed).standard_normal(matrix.n_cols)
    y, _ = smat.spmv(matrix, x)
    np.testing.assert_allclose(y, matrix.spmv(x), atol=1e-8)


@given(arbitrary_matrices())
@settings(max_examples=25, deadline=None)
def test_decisions_are_deterministic(smat, matrix: CSRMatrix) -> None:
    first = smat.decide(matrix)
    second = smat.decide(matrix)
    assert first.format_name is second.format_name
    assert first.used_fallback == second.used_fallback
    assert first.overhead_units == pytest.approx(second.overhead_units)
