"""Multi-process metrics aggregation: merge_snapshots and fork-safety.

The contract under test is the one ``repro.cluster`` relies on: workers
ship *cumulative* registry snapshots, the aggregator keeps the latest
per worker incarnation and merges those — so repeats, replays and
crashed-then-respawned workers can never double count.
"""

from __future__ import annotations

import pytest

from repro.serve.metrics import (
    Histogram,
    MetricsRegistry,
    format_snapshot,
    merge_snapshots,
)


def _registry(counts: dict, observations=()) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name, value in counts.items():
        registry.counter(name).inc(value)
    for value in observations:
        registry.histogram("total_seconds").observe(value)
    return registry


class TestCountersAndGauges:
    def test_counters_sum(self) -> None:
        merged = merge_snapshots(
            [
                _registry({"hits": 3, "misses": 1}).snapshot(),
                _registry({"hits": 5}).snapshot(),
            ]
        )
        assert merged["counters"] == {"hits": 8, "misses": 1}

    def test_gauges_are_fleet_additive(self) -> None:
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("queue_depth").set(2)
        b.gauge("queue_depth").set(5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["gauges"]["queue_depth"] == 7.0

    def test_empty_and_falsy_snapshots_skipped(self) -> None:
        merged = merge_snapshots([{}, None, _registry({"a": 1}).snapshot()])
        assert merged["counters"] == {"a": 1}
        assert merge_snapshots([])["counters"] == {}

    def test_latest_cumulative_per_incarnation_never_double_counts(self):
        # The dispatcher's aggregation pattern: a worker heartbeats
        # cumulative snapshots; only the LATEST per (shard, generation)
        # is kept.  A crashed incarnation's final snapshot keeps
        # contributing alongside its replacement, which restarts at zero.
        latest: dict = {}
        worker = _registry({"served": 5})
        latest[(0, 1)] = worker.snapshot()
        worker.counter("served").inc(3)  # same incarnation, newer beat
        latest[(0, 1)] = worker.snapshot()
        respawned = _registry({"served": 2})  # generation 2, from zero
        latest[(0, 2)] = respawned.snapshot()
        merged = merge_snapshots(list(latest.values()))
        assert merged["counters"]["served"] == 8 + 2


class TestHistogramMerge:
    def test_same_bounds_merge_bucket_exact(self) -> None:
        a = Histogram("t", buckets=(0.1, 1.0, 10.0))
        b = Histogram("t", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5):
            a.observe(v)
        for v in (0.5, 5.0):
            b.observe(v)
        merged = merge_snapshots(
            [
                {"histograms": {"t": a.snapshot()}},
                {"histograms": {"t": b.snapshot()}},
            ]
        )["histograms"]["t"]
        assert merged["count"] == 5
        assert merged["max"] == 5.0
        assert merged["counts"] == [1, 3, 1, 0]
        # Quantiles re-interpolated from merged buckets, exactly as one
        # registry holding all five observations would estimate them.
        reference = Histogram("t", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 0.5, 5.0):
            reference.observe(v)
        assert merged["p50"] == pytest.approx(reference.quantile(0.5))
        assert merged["p99"] == pytest.approx(reference.quantile(0.99))

    def test_mismatched_bounds_fall_back_to_pessimistic_max(self) -> None:
        a = Histogram("t", buckets=(0.1, 1.0))
        b = Histogram("t", buckets=(0.2, 2.0))
        a.observe(0.05)
        b.observe(1.5)
        merged = merge_snapshots(
            [
                {"histograms": {"t": a.snapshot()}},
                {"histograms": {"t": b.snapshot()}},
            ]
        )["histograms"]["t"]
        assert merged["count"] == 2
        assert merged["p99"] == max(
            a.snapshot()["p99"], b.snapshot()["p99"]
        )
        assert "counts" not in merged

    def test_snapshot_exports_raw_buckets(self) -> None:
        h = Histogram("t", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(3.0)
        snap = h.snapshot()
        assert snap["bounds"] == [1.0, 2.0]
        assert snap["counts"] == [1, 0, 1]  # trailing +inf bucket


class TestFormatSnapshot:
    def test_renders_merged_snapshot(self) -> None:
        a = _registry({"served": 2}, observations=[0.01])
        b = _registry({"served": 1}, observations=[0.5])
        text = format_snapshot(merge_snapshots([a.snapshot(), b.snapshot()]))
        assert "served" in text and "total_seconds" in text
        assert "n=2" in text

    def test_report_round_trips_through_format_snapshot(self) -> None:
        registry = _registry({"served": 4}, observations=[0.1])
        assert registry.report() == format_snapshot(registry.snapshot())

    def test_empty_snapshot_renders_placeholder(self) -> None:
        assert format_snapshot({}) == "no metrics recorded"
