"""AMG substrate tests: strength, coarsening, interpolation, solve."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amg import (
    AMGSolver,
    CsrEngine,
    cljp_coarsen,
    coarsen,
    direct_interpolation,
    gauss_seidel,
    jacobi,
    ruge_stueben_coarsen,
    setup_hierarchy,
    strength_graph,
)
from repro.collection.grids import laplacian_1d, laplacian_5pt, laplacian_7pt
from repro.errors import SolverError
from repro.formats import CSRMatrix


@pytest.fixture
def lap2d() -> CSRMatrix:
    return laplacian_5pt(16)


class TestStrength:
    def test_laplacian_all_offdiag_strong(self, lap2d) -> None:
        s = strength_graph(lap2d, theta=0.25)
        # Every off-diagonal -1 ties for the strongest coupling.
        assert s.nnz == lap2d.nnz - lap2d.n_rows

    def test_theta_filters_weak_links(self) -> None:
        dense = np.array([
            [4.0, -2.0, -0.1],
            [-2.0, 4.0, -2.0],
            [-0.1, -2.0, 4.0],
        ])
        s = strength_graph(CSRMatrix.from_dense(dense), theta=0.5)
        assert s.to_dense()[0, 2] == 0.0  # -0.1 is weak
        assert s.to_dense()[0, 1] == 1.0

    def test_invalid_theta(self, lap2d) -> None:
        with pytest.raises(ValueError, match="theta"):
            strength_graph(lap2d, theta=0.0)

    def test_positive_offdiagonal_handled(self) -> None:
        dense = np.array([[2.0, 0.5], [0.5, 2.0]])
        s = strength_graph(CSRMatrix.from_dense(dense))
        # Magnitude fallback: the positive coupling still registers.
        assert s.nnz == 2


class TestCoarsening:
    @pytest.mark.parametrize("method", ["rugeL", "cljp"])
    def test_splitting_is_nontrivial(self, lap2d, method) -> None:
        s = strength_graph(lap2d)
        mask = coarsen(s, method=method, seed=1)
        n_coarse = int(mask.sum())
        assert 0 < n_coarse < lap2d.n_rows
        # 2-D Laplacian coarsening keeps roughly 1/4 to 1/2 of the points.
        assert 0.15 < n_coarse / lap2d.n_rows < 0.65

    def test_rs_fine_points_have_coarse_neighbour(self, lap2d) -> None:
        s = strength_graph(lap2d)
        mask = ruge_stueben_coarsen(s, seed=0)
        dense_s = s.to_dense()
        for i in np.nonzero(~mask)[0]:
            neighbours = np.nonzero(dense_s[i])[0]
            assert mask[neighbours].any(), f"fine point {i} stranded"

    def test_cljp_coarse_points_not_adjacent_mostly(self, lap2d) -> None:
        s = strength_graph(lap2d)
        mask = cljp_coarsen(s, seed=0)
        dense_s = s.to_dense()
        coarse = np.nonzero(mask)[0]
        adjacent_pairs = sum(
            1
            for i in coarse
            for j in np.nonzero(dense_s[i])[0]
            if mask[j]
        )
        # The independent-set construction keeps C-C adjacency rare.
        assert adjacent_pairs <= len(coarse)

    def test_unknown_method(self, lap2d) -> None:
        with pytest.raises(KeyError, match="unknown coarsening"):
            coarsen(strength_graph(lap2d), method="aggressive")

    def test_deterministic_given_seed(self, lap2d) -> None:
        s = strength_graph(lap2d)
        a = ruge_stueben_coarsen(s, seed=7)
        b = ruge_stueben_coarsen(s, seed=7)
        np.testing.assert_array_equal(a, b)


class TestInterpolation:
    def test_coarse_rows_are_identity(self, lap2d) -> None:
        s = strength_graph(lap2d)
        mask = ruge_stueben_coarsen(s, seed=0)
        p = direct_interpolation(lap2d, s, mask)
        dense = p.to_dense()
        coarse_rows = dense[mask]
        # Each coarse row has exactly one unit entry.
        assert np.all(coarse_rows.sum(axis=1) == 1.0)
        assert np.all((coarse_rows == 0) | (coarse_rows == 1))

    def test_interpolates_constants_exactly(self, lap2d) -> None:
        # Interior rows of the Laplacian have zero row sum, so direct
        # interpolation must reproduce the constant vector there.
        s = strength_graph(lap2d)
        mask = ruge_stueben_coarsen(s, seed=0)
        p = direct_interpolation(lap2d, s, mask)
        ones = p.spmv(np.ones(p.n_cols))
        row_sums = lap2d.to_dense().sum(axis=1)
        interior = row_sums == 0.0
        np.testing.assert_allclose(ones[interior], 1.0, atol=1e-12)

    def test_shape(self, lap2d) -> None:
        s = strength_graph(lap2d)
        mask = ruge_stueben_coarsen(s, seed=0)
        p = direct_interpolation(lap2d, s, mask)
        assert p.shape == (lap2d.n_rows, int(mask.sum()))

    def test_bad_mask_length(self, lap2d) -> None:
        with pytest.raises(SolverError, match="mask"):
            direct_interpolation(
                lap2d, strength_graph(lap2d), np.ones(3, bool)
            )


class TestSmoothers:
    def test_jacobi_reduces_residual(self, lap2d, rng) -> None:
        engine = CsrEngine()
        op = engine.prepare(lap2d)
        from repro.formats.ops import diagonal

        b = rng.standard_normal(lap2d.n_rows)
        x = np.zeros_like(b)
        r0 = np.linalg.norm(b - op(x))
        x = jacobi(op, diagonal(lap2d), x, b, sweeps=5)
        assert np.linalg.norm(b - op(x)) < r0

    def test_gauss_seidel_reduces_residual(self, rng) -> None:
        a = laplacian_1d(40)
        b = rng.standard_normal(40)
        x = gauss_seidel(a, np.zeros(40), b, sweeps=5)
        assert np.linalg.norm(b - a.spmv(x)) < np.linalg.norm(b)

    def test_jacobi_zero_diagonal_rejected(self, rng) -> None:
        engine = CsrEngine()
        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(SolverError, match="diagonal"):
            jacobi(engine.prepare(a), np.array([0.0, 0.0]),
                   np.zeros(2), np.ones(2))


class TestHierarchy:
    def test_levels_shrink(self, lap2d) -> None:
        h = setup_hierarchy(lap2d, min_coarse=10)
        sizes = [level.matrix.n_rows for level in h.levels]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] <= max(10, sizes[0])
        assert h.n_levels >= 3

    def test_operator_complexity_reasonable(self, lap2d) -> None:
        h = setup_hierarchy(lap2d, min_coarse=10)
        assert 1.0 < h.operator_complexity() < 4.0

    def test_rectangular_rejected(self, rng) -> None:
        from tests.conftest import random_csr

        with pytest.raises(SolverError, match="square"):
            setup_hierarchy(random_csr(rng, 10, 12, 0.3))

    def test_format_by_level_report(self, lap2d) -> None:
        h = setup_hierarchy(lap2d, min_coarse=10)
        rows = h.format_by_level()
        assert rows[0]["rows"] == lap2d.n_rows
        assert all(r["a_format"] == "CSR" for r in rows)


class TestSolver:
    @pytest.mark.parametrize("method", ["rugeL", "cljp"])
    def test_solves_2d_poisson(self, method, rng) -> None:
        a = laplacian_5pt(20)
        x_true = rng.standard_normal(a.n_rows)
        b = a.spmv(x_true)
        solver = AMGSolver(a, coarsen_method=method)
        x, report = solver.solve(b, tol=1e-9, max_cycles=80)
        assert report.converged
        rel_err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
        assert rel_err < 1e-6

    def test_solves_3d_poisson(self, rng) -> None:
        a = laplacian_7pt(8)
        x_true = rng.standard_normal(a.n_rows)
        b = a.spmv(x_true)
        x, report = AMGSolver(a).solve(b, tol=1e-9)
        assert report.converged
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-6

    def test_convergence_factor_well_below_one(self, rng) -> None:
        a = laplacian_5pt(24)
        b = rng.standard_normal(a.n_rows)
        _, report = AMGSolver(a).solve(b, tol=1e-10, max_cycles=80)
        assert report.convergence_factor() < 0.6

    def test_mismatched_rhs(self, lap2d) -> None:
        with pytest.raises(SolverError, match="rhs"):
            AMGSolver(lap2d).solve(np.ones(5))

    def test_initial_guess_respected(self, lap2d, rng) -> None:
        x_true = rng.standard_normal(lap2d.n_rows)
        b = lap2d.spmv(x_true)
        # Starting at the solution converges immediately.
        x, report = AMGSolver(lap2d).solve(b, x0=x_true, tol=1e-8)
        assert report.iterations <= 2
