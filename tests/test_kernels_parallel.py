"""Tests for the chunked thread-parallel SpMV executor (Strategy.THREAD)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.collection import banded, graphs, random_sparse
from repro.features.parameters import FeatureVector
from repro.formats.csr import CSRMatrix
from repro.kernels.base import find_kernel
from repro.kernels.parallel import (
    MIN_PARALLEL_NNZ,
    chunk_ranges,
    csr_spmv_thread,
    default_workers,
    nnz_balanced_chunks,
    shared_executor,
)
from repro.kernels.strategies import Strategy, strategy_set
from repro.machine import INTEL_XEON_X5680, estimate_spmv_time
from repro.types import INDEX_DTYPE, FormatName, Precision


def _csr(dense) -> CSRMatrix:
    return CSRMatrix.from_dense(np.asarray(dense, dtype=np.float64))


class TestNnzBalancedChunks:
    def test_bounds_shape_and_endpoints(self) -> None:
        matrix = banded.banded_matrix(100, 5, seed=1)
        bounds = nnz_balanced_chunks(matrix.ptr, 4)
        assert bounds.shape == (5,)
        assert bounds[0] == 0
        assert bounds[-1] == matrix.n_rows
        assert np.all(np.diff(bounds) >= 0)

    def test_chunks_cover_all_rows_exactly_once(self) -> None:
        matrix = graphs.power_law_graph(500, exponent=2.2, seed=3)
        for n_chunks in (1, 2, 3, 7, 16, 600):
            ranges = chunk_ranges(matrix.ptr, n_chunks)
            covered = np.concatenate(
                [np.arange(lo, hi) for lo, hi in ranges]
            )
            assert np.array_equal(
                covered, np.arange(matrix.n_rows)
            ), n_chunks

    def test_chunks_are_nnz_balanced(self) -> None:
        matrix = random_sparse.uniform_random(2000, 2000, 8.0, seed=5)
        bounds = nnz_balanced_chunks(matrix.ptr, 8)
        per_chunk = np.diff(matrix.ptr[bounds])
        target = matrix.nnz / 8
        max_degree = int(matrix.row_degrees().max())
        # Each chunk is within one row's worth of nnz of the ideal split.
        assert np.all(per_chunk <= target + max_degree)

    def test_one_huge_row_collapses_other_chunks(self) -> None:
        # 10 rows; row 3 holds nearly all nnz: boundaries must stay monotone
        # and still cover every row even when searchsorted collides.
        dense = np.zeros((10, 200))
        dense[3, :150] = 1.0
        dense[0, 0] = dense[9, 5] = 1.0
        matrix = _csr(dense)
        bounds = nnz_balanced_chunks(matrix.ptr, 6)
        assert np.all(np.diff(bounds) >= 0)
        assert bounds[0] == 0 and bounds[-1] == 10

    def test_zero_nnz_splits_rows(self) -> None:
        matrix = _csr(np.zeros((12, 12)))
        bounds = nnz_balanced_chunks(matrix.ptr, 4)
        assert bounds[0] == 0 and bounds[-1] == 12
        assert np.all(np.diff(bounds) >= 0)

    def test_empty_matrix(self) -> None:
        ptr = np.zeros(1, dtype=INDEX_DTYPE)  # zero rows
        bounds = nnz_balanced_chunks(ptr, 3)
        assert np.all(bounds == 0)
        assert chunk_ranges(ptr, 3) == []


class TestThreadSpmv:
    def test_matches_basic_kernel_small(self) -> None:
        # Below MIN_PARALLEL_NNZ: falls back to the vectorized kernel but
        # must still agree with the reference loop.
        matrix = graphs.power_law_graph(300, exponent=2.1, seed=7)
        x = np.linspace(-1, 1, matrix.n_cols)
        basic = find_kernel(FormatName.CSR, strategy_set())
        np.testing.assert_allclose(
            csr_spmv_thread(matrix, x), basic(matrix, x), atol=1e-12
        )

    def test_matches_vectorized_above_threshold(self) -> None:
        matrix = banded.banded_matrix(30_000, 5, seed=2)
        assert matrix.nnz >= MIN_PARALLEL_NNZ
        x = np.random.default_rng(0).normal(size=matrix.n_cols)
        vec = find_kernel(
            FormatName.CSR, strategy_set(Strategy.VECTORIZE)
        )
        got = csr_spmv_thread(matrix, x, workers=4)
        np.testing.assert_allclose(got, vec(matrix, x), atol=1e-9)

    def test_forced_workers_cover_empty_rows(self) -> None:
        dense = np.zeros((64, 64))
        dense[::4, 1] = 2.0  # three of four rows empty
        matrix = _csr(dense)
        x = np.arange(64, dtype=np.float64)
        got = csr_spmv_thread(matrix, x, workers=8)
        np.testing.assert_allclose(got, matrix.spmv(x, reference=True))

    def test_registered_under_vectorize_thread(self) -> None:
        kernel = find_kernel(
            FormatName.CSR, strategy_set(Strategy.VECTORIZE, Strategy.THREAD)
        )
        assert kernel.name == "CSR/thread+vectorize"
        matrix = banded.banded_matrix(200, 3, seed=4)
        x = np.ones(matrix.n_cols)
        basic = find_kernel(FormatName.CSR, strategy_set())
        np.testing.assert_allclose(
            kernel(matrix, x), basic(matrix, x), atol=1e-12
        )

    def test_shared_executor_is_singleton(self) -> None:
        assert shared_executor() is shared_executor()

    def test_default_workers_positive(self) -> None:
        assert 1 <= default_workers() <= 16


class TestThreadCostModel:
    def test_thread_scales_like_parallel(self) -> None:
        fv = FeatureVector(
            m=200_000, n=200_000, ndiags=9, ntdiags_ratio=1.0,
            nnz=1_800_000, aver_rd=9.0, max_rd=9, var_rd=0.1,
            er_dia=0.99, er_ell=0.99, r=math.inf,
        )
        single = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.CSR, fv, Precision.DOUBLE,
            strategy_set(Strategy.VECTORIZE),
        )
        threaded = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.CSR, fv, Precision.DOUBLE,
            strategy_set(Strategy.VECTORIZE, Strategy.THREAD),
        )
        parallel = estimate_spmv_time(
            INTEL_XEON_X5680, FormatName.CSR, fv, Precision.DOUBLE,
            strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL),
        )
        assert threaded < single
        assert threaded == pytest.approx(parallel)
