"""Decision-tree learner tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import LearningError
from repro.features.parameters import FeatureVector
from repro.learning import TrainingDataset, TreeLearner
from repro.learning.tree import _pessimistic_errors
from repro.types import FormatName


def make_record(**overrides) -> FeatureVector:
    base = dict(
        m=1000, n=1000, ndiags=200, ntdiags_ratio=0.1, nnz=8000,
        aver_rd=8.0, max_rd=20, var_rd=4.0, er_dia=0.04, er_ell=0.4,
        r=math.inf, best_format=FormatName.CSR,
    )
    base.update(overrides)
    return FeatureVector(**base)


def separable_dataset(n: int = 40) -> TrainingDataset:
    """DIA iff ntdiags_ratio > 0.5; CSR otherwise."""
    rng = np.random.default_rng(0)
    records = []
    for _ in range(n):
        ratio = float(rng.uniform(0.6, 1.0))
        records.append(
            make_record(ntdiags_ratio=ratio, best_format=FormatName.DIA)
        )
        ratio = float(rng.uniform(0.0, 0.4))
        records.append(
            make_record(ntdiags_ratio=ratio, best_format=FormatName.CSR)
        )
    return TrainingDataset(tuple(records))


class TestTreeLearning:
    def test_learns_separable_boundary(self) -> None:
        tree = TreeLearner(min_leaf=2).fit(separable_dataset())
        assert tree.accuracy(separable_dataset()) == 1.0
        root = tree.root
        assert root.attribute == "ntdiags_ratio"
        assert root.threshold is not None and 0.4 <= root.threshold <= 0.6

    def test_pure_dataset_yields_single_leaf(self) -> None:
        ds = TrainingDataset(tuple(make_record() for _ in range(10)))
        tree = TreeLearner().fit(ds)
        assert tree.root.is_leaf
        assert tree.root.prediction is FormatName.CSR

    def test_min_leaf_limits_growth(self) -> None:
        ds = separable_dataset(20)
        big_leaf = TreeLearner(min_leaf=50).fit(ds)
        assert big_leaf.root.is_leaf  # cannot split 40 records at min 50

    def test_max_depth_respected(self) -> None:
        rng = np.random.default_rng(1)
        records = []
        for _ in range(200):
            # Noisy labels force deep growth if unbounded.
            records.append(
                make_record(
                    aver_rd=float(rng.uniform(1, 100)),
                    var_rd=float(rng.uniform(0, 50)),
                    best_format=rng.choice(
                        [FormatName.CSR, FormatName.COO]
                    ),
                )
            )
        tree = TreeLearner(max_depth=3, prune=False).fit(
            TrainingDataset(tuple(records))
        )
        assert tree.root.depth() <= 4  # depth counts nodes, root included

    def test_pruning_shrinks_noisy_tree(self) -> None:
        rng = np.random.default_rng(2)
        records = []
        for _ in range(150):
            # 15% label noise on the separable problem.
            ratio = float(rng.uniform(0, 1))
            label = FormatName.DIA if ratio > 0.5 else FormatName.CSR
            if rng.random() < 0.15:
                label = (
                    FormatName.CSR if label is FormatName.DIA else FormatName.DIA
                )
            records.append(
                make_record(ntdiags_ratio=ratio, best_format=label)
            )
        ds = TrainingDataset(tuple(records))
        unpruned = TreeLearner(min_leaf=2, prune=False).fit(ds)
        pruned = TreeLearner(min_leaf=2, prune=True).fit(ds)
        assert pruned.root.n_leaves() <= unpruned.root.n_leaves()

    def test_inf_r_routes_to_not_scale_free_branch(self) -> None:
        records = []
        for i in range(20):
            records.append(
                make_record(r=2.0 + 0.01 * i, best_format=FormatName.COO)
            )
            records.append(
                make_record(r=math.inf, best_format=FormatName.CSR)
            )
        tree = TreeLearner(min_leaf=2).fit(TrainingDataset(tuple(records)))
        assert tree.predict(make_record(r=2.5)) is FormatName.COO
        assert tree.predict(make_record(r=math.inf)) is FormatName.CSR

    def test_empty_dataset_rejected(self) -> None:
        with pytest.raises(LearningError, match="empty"):
            TreeLearner().fit(TrainingDataset(()))

    def test_bad_min_leaf_rejected(self) -> None:
        with pytest.raises(LearningError, match="min_leaf"):
            TreeLearner(min_leaf=0).fit(separable_dataset(5))

    def test_default_class_is_majority(self) -> None:
        ds = TrainingDataset(
            tuple([make_record()] * 5 + [make_record(best_format=FormatName.DIA)])
        )
        assert TreeLearner().fit(ds).default_class is FormatName.CSR


class TestPessimisticErrors:
    def test_zero_observed_errors_still_positive(self) -> None:
        assert _pessimistic_errors(10, 0) > 0.0

    def test_upper_bound_above_observed(self) -> None:
        assert _pessimistic_errors(100, 10) > 10.0

    def test_more_data_tightens_bound(self) -> None:
        loose = _pessimistic_errors(10, 1) / 10
        tight = _pessimistic_errors(1000, 100) / 1000
        assert tight < loose

    def test_empty_node(self) -> None:
        assert _pessimistic_errors(0, 0) == 0.0
