"""Worker-failure tests: crash detection, respawn, re-warm, zero drops.

The satellite acceptance for the sharded cluster: killing a worker
mid-replay must lose no request — the dispatcher detects the dead
process, respawns the shard under a new generation, re-warms its plans
from the structure index, and re-dispatches the in-flight requests,
all within the requests' deadline/retry semantics.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterDispatcher, WorkerSpec
from repro.collection import generate_collection
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import build_matrix_pool, fingerprint
from repro.tuner import SMAT
from repro.types import Precision


@pytest.fixture(scope="module")
def smat() -> SMAT:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    return SMAT.train(
        generate_collection(scale=0.02, size_scale=0.4, seed=77),
        backend=backend,
    )


@pytest.fixture(scope="module")
def pool():
    return build_matrix_pool(6, seed=11, size_scale=0.3)


@pytest.fixture(scope="module")
def operands(pool):
    rng = np.random.default_rng(42)
    return [rng.standard_normal(m.n_cols) for m in pool]


def _victim_shard(cluster) -> int:
    """The shard owning the most published structures."""
    assignments = cluster.shard_assignments()
    return max(assignments, key=lambda shard: len(assignments[shard]))


@pytest.mark.timeout(300)
def test_kill_worker_mid_replay_drops_nothing(smat, pool, operands):
    config = ClusterConfig(
        workers=2,
        heartbeat_interval=0.1,
        heartbeat_timeout=5.0,
        default_deadline=120.0,  # deadlines armed, never the failure mode
    )
    with ClusterDispatcher(WorkerSpec(tuner=smat), config) as cluster:
        # Warm phase: every structure served once, plans published.
        for matrix, x in zip(pool, operands):
            cluster.spmv(matrix, x)
        victim = _victim_shard(cluster)
        assert len(cluster.shard_assignments()[victim]) >= 1

        # Async wave with the victim's requests in flight when it dies.
        futures = [
            cluster.submit(pool[i % len(pool)], operands[i % len(pool)])
            for i in range(40)
        ]
        cluster.kill_worker(victim)
        results = [f.result(timeout=240) for f in futures]

        # Zero dropped: every submit resolved with a correct product.
        assert len(results) == 40
        for i, result in enumerate(results):
            matrix, x = pool[i % len(pool)], operands[i % len(pool)]
            assert np.allclose(result.y, matrix.spmv(x), atol=1e-9)

        counters = cluster.metrics.snapshot()["counters"]
        assert int(counters["worker_crashes"]) >= 1
        assert int(counters["workers_respawned"]) >= 1
        # Re-warm from the structure index restored the victim's plans.
        assert int(counters["plans_rewarmed"]) >= 1
        # Deadline/retry semantics preserved: nothing expired or failed.
        assert int(counters["requests_failed"]) == 0
        # And the replacement generation is visibly newer.
        assert cluster._shards[victim].generation >= 2

        # The respawned shard serves its old structures from cache again.
        survivor_fp = cluster.shard_assignments()[victim][0]
        index = next(
            i for i, m in enumerate(pool) if fingerprint(m) == survivor_fp
        )
        after = cluster.spmv(pool[index], operands[index])
        assert after.shard_id == victim
        assert np.allclose(
            after.y, pool[index].spmv(operands[index]), atol=1e-9
        )


@pytest.mark.timeout(300)
def test_respawn_exhaustion_degrades_locally(smat, pool, operands):
    config = ClusterConfig(
        workers=2,
        max_respawns=0,  # first crash declares the shard dead
        heartbeat_interval=0.1,
        heartbeat_timeout=5.0,
    )
    with ClusterDispatcher(WorkerSpec(tuner=smat), config) as cluster:
        for matrix, x in zip(pool, operands):
            cluster.spmv(matrix, x)
        victim = _victim_shard(cluster)
        victim_fp = cluster.shard_assignments()[victim][0]
        index = next(
            i for i, m in enumerate(pool) if fingerprint(m) == victim_fp
        )

        cluster.kill_worker(victim)
        deadline = time.monotonic() + 60.0
        while not cluster._shards[victim].dead:
            assert time.monotonic() < deadline, "shard never declared dead"
            time.sleep(0.05)

        # The dead shard's traffic is served locally by the degraded CSR
        # reference plan — correct answers, honestly labelled.
        result = cluster.spmv(pool[index], operands[index])
        assert result.degraded_local and result.degraded
        assert result.shard_id == victim
        assert np.allclose(
            result.y, pool[index].spmv(operands[index]), atol=1e-9
        )
        assert (
            int(cluster.metrics.snapshot()["counters"]["degraded_local"]) >= 1
        )

        # Structures on the surviving shard still serve normally.
        other = next(s for s in cluster.shard_assignments() if s != victim)
        for shard_fp in cluster.shard_assignments()[other][:1]:
            i = next(
                j for j, m in enumerate(pool) if fingerprint(m) == shard_fp
            )
            healthy = cluster.spmv(pool[i], operands[i])
            assert not healthy.degraded_local
            assert healthy.shard_id == other
