"""Direct tests of the AMG SpMV engines and their time accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amg import CsrEngine, SmatEngine
from repro.collection import generate_collection
from repro.collection.grids import laplacian_5pt
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.tuner import SMAT
from repro.types import FormatName, Precision


@pytest.fixture(scope="module")
def backend():
    return SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)


@pytest.fixture(scope="module")
def smat(backend):
    return SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=77),
        backend=backend,
    )


class TestCsrEngine:
    def test_always_csr(self, backend) -> None:
        op = CsrEngine(backend).prepare(laplacian_5pt(12))
        assert op.format_name is FormatName.CSR

    def test_apply_counts_and_simulated_time(self, backend) -> None:
        matrix = laplacian_5pt(12)
        op = CsrEngine(backend).prepare(matrix)
        assert op.applies == 0
        assert op.simulated_seconds == 0.0
        x = np.ones(matrix.n_cols)
        op(x)
        op(x)
        assert op.applies == 2
        assert op.simulated_seconds == pytest.approx(
            2 * op.seconds_per_apply
        )
        assert op.seconds_per_apply > 0.0

    def test_without_backend_no_time_model(self) -> None:
        op = CsrEngine().prepare(laplacian_5pt(8))
        assert op.seconds_per_apply == 0.0
        assert op.simulated_seconds == 0.0

    def test_product_correct(self, backend, rng) -> None:
        matrix = laplacian_5pt(10)
        op = CsrEngine(backend).prepare(matrix)
        x = rng.standard_normal(matrix.n_cols)
        np.testing.assert_allclose(op(x), matrix.spmv(x), atol=1e-12)


class TestSmatEngine:
    def test_picks_dia_for_fine_laplacian(self, smat) -> None:
        op = SmatEngine(smat).prepare(laplacian_5pt(40))
        assert op.format_name is FormatName.DIA

    def test_setup_units_recorded(self, smat) -> None:
        op = SmatEngine(smat).prepare(laplacian_5pt(40))
        assert op.setup_units > 0.0

    def test_tuned_apply_faster_than_csr(self, smat, backend) -> None:
        matrix = laplacian_5pt(40)
        tuned = SmatEngine(smat).prepare(matrix)
        plain = CsrEngine(backend).prepare(matrix)
        assert tuned.seconds_per_apply < plain.seconds_per_apply

    def test_product_correct_in_chosen_format(self, smat, rng) -> None:
        matrix = laplacian_5pt(20)
        op = SmatEngine(smat).prepare(matrix)
        x = rng.standard_normal(matrix.n_cols)
        np.testing.assert_allclose(op(x), matrix.spmv(x), atol=1e-9)
