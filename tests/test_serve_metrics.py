"""Metrics-registry tests: instruments, snapshots, the text report."""

from __future__ import annotations

import threading

import pytest

from repro.serve import MetricsRegistry
from repro.serve.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_monotonic(self) -> None:
        c = Counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_thread_safe(self) -> None:
        c = Counter("x")
        threads = [
            threading.Thread(
                target=lambda: [c.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_add(self) -> None:
        g = Gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7.0


class TestHistogram:
    def test_needs_sorted_buckets(self) -> None:
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", buckets=(3, 1, 2))
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", buckets=())

    def test_count_sum_mean_max(self) -> None:
        h = Histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
        for v in (0.0005, 0.005, 0.05, 0.5):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.5555)
        assert h.mean == pytest.approx(0.5555 / 4)
        assert h.snapshot()["max"] == pytest.approx(0.5)

    def test_quantiles_ordered(self) -> None:
        h = Histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
        for i in range(100):
            h.observe(0.0001 * (i + 1))
        assert 0.0 <= h.quantile(0.5) <= h.quantile(0.99)
        assert h.quantile(1.0) <= h.snapshot()["max"] + 1e-12

    def test_quantile_validation(self) -> None:
        h = Histogram("lat")
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(0.0)
        assert h.quantile(0.5) == 0.0  # empty histogram

    def test_overflow_bucket(self) -> None:
        h = Histogram("lat", buckets=(0.1,))
        h.observe(5.0)
        assert h.count == 1
        assert h.quantile(0.99) <= 5.0


class TestRegistry:
    def test_instruments_are_singletons(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_json_ready(self) -> None:
        import json

        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("total_seconds").observe(0.01)
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["depth"] == 2.0
        assert snap["histograms"]["total_seconds"]["count"] == 1
        json.dumps(snap)  # must not raise

    def test_report_sections(self) -> None:
        registry = MetricsRegistry()
        registry.counter("cache_hits").inc(7)
        registry.gauge("queue_depth").set(3)
        registry.histogram("total_seconds").observe(0.25)
        registry.histogram("batch_size", buckets=(1, 2, 4)).observe(2)
        text = registry.report()
        assert "cache_hits" in text and "7" in text
        assert "latency (seconds)" in text
        assert "distributions:" in text
        assert "batch_size" in text

    def test_empty_report(self) -> None:
        assert MetricsRegistry().report() == "no metrics recorded"
