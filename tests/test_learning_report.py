"""Evaluation-report tests: confusion matrix, per-class metrics, slowdown."""

from __future__ import annotations

import math

import pytest

from repro.features.parameters import FeatureVector
from repro.learning import TrainingDataset
from repro.learning.report import evaluate
from repro.types import FormatName


def record(label: FormatName, marker: float) -> FeatureVector:
    return FeatureVector(
        m=1000, n=1000, ndiags=10, ntdiags_ratio=0.5, nnz=5000,
        aver_rd=marker, max_rd=int(marker * 2) + 1, var_rd=1.0,
        er_dia=0.5, er_ell=0.5, r=math.inf, best_format=label,
    )


@pytest.fixture
def dataset() -> TrainingDataset:
    # 6 CSR (marker 10), 4 COO (marker 2).
    records = [record(FormatName.CSR, 10.0) for _ in range(6)]
    records += [record(FormatName.COO, 2.0) for _ in range(4)]
    return TrainingDataset(tuple(records))


def threshold_predictor(features: FeatureVector) -> FormatName:
    """Predicts COO below aver_rd 5 — but misses nothing by construction."""
    return FormatName.COO if features.aver_rd < 5 else FormatName.CSR


def broken_predictor(features: FeatureVector) -> FormatName:
    return FormatName.CSR


class TestEvaluate:
    def test_perfect_predictor(self, dataset) -> None:
        report = evaluate(threshold_predictor, dataset)
        assert report.accuracy == 1.0
        csr = report.metrics_for(FormatName.CSR)
        assert csr.precision == 1.0 and csr.recall == 1.0 and csr.f1 == 1.0
        assert csr.support == 6

    def test_all_csr_predictor(self, dataset) -> None:
        report = evaluate(broken_predictor, dataset)
        assert report.accuracy == pytest.approx(0.6)
        coo = report.metrics_for(FormatName.COO)
        assert coo.recall == 0.0
        assert coo.support == 4
        # CSR precision suffers from absorbing the COO records.
        csr = report.metrics_for(FormatName.CSR)
        assert csr.precision == pytest.approx(0.6)
        assert csr.recall == 1.0

    def test_confusion_counts(self, dataset) -> None:
        report = evaluate(broken_predictor, dataset)
        assert report.confusion[FormatName.COO][FormatName.CSR] == 4
        assert report.confusion[FormatName.CSR][FormatName.CSR] == 6

    def test_slowdown_with_cost_fn(self, dataset) -> None:
        def cost(features: FeatureVector, fmt: FormatName) -> float:
            # The wrong format costs 3x on COO records.
            if features.best_format is FormatName.COO:
                return 3.0 if fmt is FormatName.CSR else 1.0
            return 1.0

        report = evaluate(broken_predictor, dataset, cost_fn=cost)
        # 6 records at 1.0, 4 records at 3.0 -> mean 1.8.
        assert report.mean_slowdown == pytest.approx(1.8)

    def test_describe_renders_table(self, dataset) -> None:
        text = evaluate(threshold_predictor, dataset).describe()
        assert "accuracy: 100.0%" in text
        assert "precision" in text and "CSR" in text

    def test_unknown_class_lookup(self, dataset) -> None:
        report = evaluate(threshold_predictor, dataset)
        with pytest.raises(KeyError):
            report.metrics_for(FormatName.BCSR)

    def test_empty_dataset(self) -> None:
        report = evaluate(broken_predictor, TrainingDataset(()))
        assert report.accuracy == 1.0
        assert report.mean_slowdown is None

    def test_real_model_report(self) -> None:
        """Integration: evaluate a real trained model with a real cost fn."""
        from repro.collection import generate_collection
        from repro.machine import (
            INTEL_XEON_X5680,
            SimulatedBackend,
            estimate_spmv_time,
        )
        from repro.kernels.strategies import Strategy, strategy_set
        from repro.tuner import search_kernels
        from repro.tuner.smat import build_training_dataset
        from repro.learning import train_model
        from repro.types import Precision

        backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
        kernels = search_kernels(backend)
        ds = build_training_dataset(
            generate_collection(scale=0.05, size_scale=0.35, seed=17),
            kernels, backend,
        )
        train, test = ds.split(0.25, seed=2)
        model = train_model(train)
        strategies = strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)

        def cost(features, fmt):
            return estimate_spmv_time(
                INTEL_XEON_X5680, fmt, features, Precision.DOUBLE, strategies
            )

        report = evaluate(model.predict_format, test, cost_fn=cost)
        assert report.accuracy > 0.7
        assert report.mean_slowdown is not None
        # Misprediction cost stays mild: the model errs on near-ties.
        assert report.mean_slowdown < 1.6
