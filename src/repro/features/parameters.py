"""The feature vector of Table 2.

Eleven parameters abstract a sparse matrix's structure:

==============  =====================================================
paper name      meaning
==============  =====================================================
M               number of rows
N               number of columns
Ndiags          number of occupied diagonals
NTdiags_ratio   "true" (mostly-dense) diagonals / Ndiags
NNZ             number of non-zeros
aver_RD         NNZ / M (average row degree)
max_RD          maximum row degree
var_RD          population variance of row degrees
ER_DIA          NNZ / (Ndiags * M)   — DIA fill ratio
ER_ELL          NNZ / (max_RD * M)   — ELL fill ratio
R               power-law exponent of the row-degree distribution
==============  =====================================================

``R`` is ``inf`` when the matrix has no scale-free structure, matching the
paper's t2d_q9 example record ``{..., inf, DIA}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Optional

from repro.types import FormatName

#: Attribute order used for training records and model serialization.
FEATURE_NAMES = (
    "m",
    "n",
    "ndiags",
    "ntdiags_ratio",
    "nnz",
    "aver_rd",
    "max_rd",
    "var_rd",
    "er_dia",
    "er_ell",
    "r",
)

#: Mapping from our attribute names to the paper's parameter names.
PAPER_NAMES = {
    "m": "M",
    "n": "N",
    "ndiags": "Ndiags",
    "ntdiags_ratio": "NTdiags_ratio",
    "nnz": "NNZ",
    "aver_rd": "aver_RD",
    "max_rd": "max_RD",
    "var_rd": "var_RD",
    "er_dia": "ER_DIA",
    "er_ell": "ER_ELL",
    "r": "R",
}


@dataclass(frozen=True)
class FeatureVector:
    """One matrix's feature record; ``best_format`` is the target attribute
    present only on training records."""

    m: int
    n: int
    ndiags: int
    ntdiags_ratio: float
    nnz: int
    aver_rd: float
    max_rd: int
    var_rd: float
    er_dia: float
    er_ell: float
    r: float
    best_format: Optional[FormatName] = None

    def value(self, name: str) -> float:
        """Numeric value of one attribute (used by the decision tree)."""
        return float(getattr(self, name))

    def as_dict(self, paper_names: bool = False) -> Dict[str, float]:
        """The 11 numeric attributes as a dict (no target)."""
        if paper_names:
            return {PAPER_NAMES[name]: self.value(name) for name in FEATURE_NAMES}
        return {name: self.value(name) for name in FEATURE_NAMES}

    def with_label(self, best_format: FormatName) -> "FeatureVector":
        """A copy carrying the training label."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values["best_format"] = best_format
        return FeatureVector(**values)

    def is_finite(self, name: str) -> bool:
        """Whether attribute ``name`` has a usable (finite) value.

        ``R = inf`` encodes "no power-law structure"; C5.0 treats such
        records as having a missing value for that attribute, and our tree
        does the same.
        """
        return math.isfinite(self.value(name))
