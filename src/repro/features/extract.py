"""Feature extraction from a CSR matrix (Section 4 / Section 6 step one).

All parameters are computed *without running any SpMV*: one pass over the
structure collects the diagonal census and the row-degree distribution
together (the paper's "count the diagonals and nonzero distribution
together" optimization), and the power-law fit is a separate second step.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.features.parameters import FeatureVector
from repro.features.powerlaw import estimate_power_law_exponent
from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE
from repro.util.events import EventCounter
from repro.util.stats import gini_like_variance

#: Ticks once per step-one extraction pass (both the eager and the lazy
#: path funnel through :func:`extract_structure_features`).  The serving
#: layer reads this meter to prove plan-cache hits skip extraction.
EXTRACTION_EVENTS = EventCounter("feature_extractions")

#: A diagonal is "true" when at least this fraction of its in-matrix length
#: is occupied by non-zeros.  The paper defines a true diagonal as "occupied
#: mostly with non-zeros"; 0.6 reproduces its Figure 6(c) separation between
#: DIA-friendly banded matrices (ratio near 1) and incidental diagonals of
#: random matrices (ratio near 0).
TRUE_DIAGONAL_THRESHOLD = 0.6


def extract_structure_features(matrix: CSRMatrix) -> dict:
    """Step one: every Table 2 parameter except the power-law ``R``.

    Returns a plain dict so :class:`repro.features.incremental.LazyFeatures`
    can hold a partial record before deciding whether step two is needed.
    """
    EXTRACTION_EVENTS.increment()
    m, n = matrix.shape
    nnz = matrix.nnz
    with obs.span("features.structure", m=int(m), n=int(n), nnz=int(nnz)):
        return _structure_features(matrix, m, n, nnz)


def _structure_features(matrix: CSRMatrix, m: int, n: int, nnz: int) -> dict:
    degrees = matrix.row_degrees()

    aver_rd = nnz / m
    max_rd = int(degrees.max()) if degrees.size else 0
    var_rd = gini_like_variance(degrees, aver_rd)

    ndiags, n_true_diags = _diagonal_census(matrix)
    ntdiags_ratio = (n_true_diags / ndiags) if ndiags else 0.0

    er_dia = nnz / (ndiags * m) if ndiags else 1.0
    er_ell = nnz / (max_rd * m) if max_rd else 1.0

    return {
        "m": int(m),
        "n": int(n),
        "ndiags": int(ndiags),
        "ntdiags_ratio": float(ntdiags_ratio),
        "nnz": int(nnz),
        "aver_rd": float(aver_rd),
        "max_rd": int(max_rd),
        "var_rd": float(var_rd),
        "er_dia": float(er_dia),
        "er_ell": float(er_ell),
    }


def extract_powerlaw_feature(matrix: CSRMatrix) -> float:
    """Step two: the power-law exponent R (the expensive parameter)."""
    with obs.span("features.powerlaw", nnz=int(matrix.nnz)):
        return estimate_power_law_exponent(matrix.row_degrees())


def extract_features(matrix: CSRMatrix) -> FeatureVector:
    """Eagerly extract the full Table 2 feature vector."""
    structure = extract_structure_features(matrix)
    return FeatureVector(r=extract_powerlaw_feature(matrix), **structure)


def _diagonal_census(matrix: CSRMatrix) -> tuple:
    """(Ndiags, number of true diagonals) in one pass over the indices."""
    if matrix.nnz == 0:
        return 0, 0
    row_of = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    diag_of = matrix.indices - row_of
    offsets, counts = np.unique(diag_of, return_counts=True)

    # In-matrix length of each diagonal: how many (row, row+k) pairs exist.
    m, n = matrix.shape
    lengths = np.minimum(m, n - offsets) - np.maximum(0, -offsets)
    occupancy = counts / np.maximum(lengths, 1)
    n_true = int(np.count_nonzero(occupancy >= TRUE_DIAGONAL_THRESHOLD))
    return int(offsets.shape[0]), n_true
