"""Incremental feature maintenance (Section 6 + the structure-churn path).

Two layers live here:

* :class:`LazyFeatures` — the two-step lazy extraction of Section 6: the
  runtime procedure checks the DIA and ELL rule groups first; those rules
  only reference step-one parameters, so the expensive power-law fit runs
  only when the decision actually reaches the COO rules.

* :class:`DeltaFeatures` — maintenance of the full Table 2 vector under
  structure churn.  Attaching does one ordinary extraction-priced scan;
  after that, each :class:`repro.formats.delta.DeltaEffect` updates the
  degree distribution and diagonal census in O(delta) work, and
  :meth:`DeltaFeatures.structure_snapshot` /
  :meth:`DeltaFeatures.powerlaw` reproduce
  :func:`repro.features.extract.extract_structure_features` and
  :func:`repro.features.extract.extract_powerlaw_feature` *exactly* —
  same formulas on the same integers, so parity is bitwise, not
  approximate (asserted in ``tests/test_delta_features.py``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from repro.features.extract import (
    TRUE_DIAGONAL_THRESHOLD,
    extract_powerlaw_feature,
    extract_structure_features,
)
from repro.features.parameters import FEATURE_NAMES, FeatureVector
from repro.features.powerlaw import estimate_power_law_exponent
from repro.formats.csr import CSRMatrix
from repro.formats.delta import DeltaEffect
from repro.types import INDEX_DTYPE

#: Step-one parameters (everything except the power-law R).
STRUCTURE_PARAMS = frozenset(name for name in FEATURE_NAMES if name != "r")

#: Relative cost of each extraction step, in units of one CSR-SpMV.
#: Step one is a single fused pass over the index structure (~1 SpMV of
#: traffic); the power-law fit sorts the degree sequence and runs a
#: regression (~1.5 SpMVs for typical graph matrices, per our measurements
#: and consistent with the paper's "non-trivial time" remark).
STRUCTURE_COST_SPMV_UNITS = 1.0
POWERLAW_COST_SPMV_UNITS = 1.5


class LazyFeatures:
    """Feature vector materialised step by step.

    >>> lazy = LazyFeatures(matrix)          # nothing computed yet
    >>> lazy.get("ndiags")                   # runs step one only
    >>> lazy.get("r")                        # runs step two on demand
    >>> lazy.extraction_cost_spmv_units()    # what the accesses cost

    ``structure`` (and ``r``) seed the respective steps when a caller
    already holds exact values — the cascade's narrow-band census
    produces the full step-one set at bincount prices, and
    :meth:`DeltaFeatures.seed_lazy` supplies both steps from O(delta)
    maintenance.  ``r_source`` seeds step two *by reference*: the
    callable is consulted only if a rule actually reads ``r`` (a format
    walk that never tests R should not pay for a degree sort, even a
    maintained one).  A seeded step never re-runs and never charges its
    cost: accounting is tied to extractions *this instance performed*,
    not to which fields happen to be populated.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        structure: Optional[dict] = None,
        r: Optional[float] = None,
        r_source: Optional[Callable[[], float]] = None,
    ) -> None:
        self._matrix = matrix
        self._structure: Optional[dict] = structure
        self._r: Optional[float] = r
        self._r_source = r_source
        # Charged only when the corresponding extraction actually runs
        # here — seeded values arrive pre-paid, and memoized re-reads
        # must not charge twice.
        self._structure_charged = False
        self._powerlaw_charged = False

    @property
    def structure_extracted(self) -> bool:
        return self._structure is not None

    @property
    def powerlaw_extracted(self) -> bool:
        return self._r is not None

    def get(self, name: str) -> float:
        """Value of one parameter, extracting its step lazily."""
        if name == "r":
            if self._r is None:
                if self._r_source is not None:
                    # Pre-paid by whoever maintains the source (delta
                    # feature upkeep) — materialise without charging.
                    self._r = float(self._r_source())
                else:
                    self._r = extract_powerlaw_feature(self._matrix)
                    self._powerlaw_charged = True
            return self._r
        if name not in STRUCTURE_PARAMS:
            raise KeyError(f"unknown feature parameter: {name}")
        if self._structure is None:
            self._structure = extract_structure_features(self._matrix)
            self._structure_charged = True
        return float(self._structure[name])

    def snapshot(self) -> FeatureVector:
        """Force full extraction and return the complete vector."""
        for step_trigger in ("m", "r"):
            self.get(step_trigger)
        assert self._structure is not None and self._r is not None
        return FeatureVector(r=self._r, **self._structure)

    def partial_snapshot(self) -> FeatureVector:
        """The vector as currently known; un-extracted R reported as inf
        (treated as missing by the rule evaluator)."""
        if self._structure is None:
            self.get("m")
        assert self._structure is not None
        r = self._r if self._r is not None else math.inf
        return FeatureVector(r=r, **self._structure)

    def extraction_cost_spmv_units(self) -> float:
        """Extraction work done so far, in units of one CSR-SpMV.

        Seeded steps were computed (and charged) elsewhere, so only the
        passes this instance actually ran count — once each, however
        many times their values are re-read.
        """
        cost = 0.0
        if self._structure_charged:
            cost += STRUCTURE_COST_SPMV_UNITS
        if self._powerlaw_charged:
            cost += POWERLAW_COST_SPMV_UNITS
        return cost


class DeltaFeatures:
    """The Table 2 vector maintained under structure churn.

    The constructor pays one full scan (the same price as a cold
    extraction); every :meth:`apply` thereafter is O(delta): the degree
    array gets two scatter-adds and the diagonal census a handful of
    dictionary bumps.  No re-scan of the matrix ever happens, which is
    the whole point — the serving layer keeps one of these per live
    structure and re-decides formats from it at delta prices.
    """

    def __init__(self, matrix: CSRMatrix) -> None:
        m, n = matrix.shape
        self._shape = (int(m), int(n))
        self._degrees = matrix.row_degrees().astype(INDEX_DTYPE, copy=True)
        self._nnz = int(matrix.nnz)
        self._diag_counts: Dict[int, int] = {}
        if matrix.nnz:
            row_of = np.repeat(
                np.arange(matrix.n_rows, dtype=INDEX_DTYPE),
                matrix.row_degrees(),
            )
            offsets, counts = np.unique(
                matrix.indices - row_of, return_counts=True
            )
            self._diag_counts = dict(
                zip(offsets.tolist(), counts.tolist())
            )

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def shape(self):
        return self._shape

    def apply(self, effect: DeltaEffect) -> None:
        """Fold one delta's effect in — O(len(effect)) work."""
        if tuple(effect.shape) != self._shape:
            raise ValueError(
                f"delta effect for shape {effect.shape} applied to "
                f"features of shape {self._shape}"
            )
        if effect.removed_rows.size:
            np.subtract.at(self._degrees, effect.removed_rows, 1)
            self._bump(effect.removed_offsets(), -1)
            self._nnz -= int(effect.removed_rows.shape[0])
        if effect.added_rows.size:
            np.add.at(self._degrees, effect.added_rows, 1)
            self._bump(effect.added_offsets(), +1)
            self._nnz += int(effect.added_rows.shape[0])
        if self._degrees.size and int(self._degrees.min()) < 0:
            raise ValueError("delta effect drove a row degree negative")

    def _bump(self, offsets: np.ndarray, sign: int) -> None:
        uniq, counts = np.unique(offsets, return_counts=True)
        for off, cnt in zip(uniq.tolist(), counts.tolist()):
            total = self._diag_counts.get(off, 0) + sign * cnt
            if total > 0:
                self._diag_counts[off] = total
            elif total == 0:
                self._diag_counts.pop(off, None)
            else:
                raise ValueError(
                    f"diagonal census for offset {off} went negative"
                )

    def structure_snapshot(self) -> dict:
        """The step-one dict, formula-for-formula identical to
        :func:`repro.features.extract._structure_features`."""
        from repro.util.stats import gini_like_variance

        m, n = self._shape
        nnz = self._nnz
        degrees = self._degrees

        aver_rd = nnz / m
        max_rd = int(degrees.max()) if degrees.size else 0
        var_rd = gini_like_variance(degrees, aver_rd)

        ndiags, n_true = self._diagonal_census()
        ntdiags_ratio = (n_true / ndiags) if ndiags else 0.0

        er_dia = nnz / (ndiags * m) if ndiags else 1.0
        er_ell = nnz / (max_rd * m) if max_rd else 1.0

        return {
            "m": int(m),
            "n": int(n),
            "ndiags": int(ndiags),
            "ntdiags_ratio": float(ntdiags_ratio),
            "nnz": int(nnz),
            "aver_rd": float(aver_rd),
            "max_rd": int(max_rd),
            "var_rd": float(var_rd),
            "er_dia": float(er_dia),
            "er_ell": float(er_ell),
        }

    def _diagonal_census(self) -> tuple:
        if not self._diag_counts:
            return 0, 0
        m, n = self._shape
        offsets = np.fromiter(
            sorted(self._diag_counts), dtype=np.int64,
            count=len(self._diag_counts),
        )
        counts = np.fromiter(
            (self._diag_counts[int(k)] for k in offsets), dtype=np.int64,
            count=offsets.shape[0],
        )
        lengths = np.minimum(m, n - offsets) - np.maximum(0, -offsets)
        occupancy = counts / np.maximum(lengths, 1)
        n_true = int(
            np.count_nonzero(occupancy >= TRUE_DIAGONAL_THRESHOLD)
        )
        return int(offsets.shape[0]), n_true

    def powerlaw(self) -> float:
        """The step-two R from the maintained degree array — the same
        estimator :func:`extract_powerlaw_feature` runs on a fresh scan."""
        return estimate_power_law_exponent(self._degrees)

    def snapshot(self) -> FeatureVector:
        """The complete maintained vector."""
        return FeatureVector(r=self.powerlaw(), **self.structure_snapshot())

    def seed_lazy(self, matrix: CSRMatrix) -> LazyFeatures:
        """A fully-seeded :class:`LazyFeatures` over ``matrix``.

        Both steps arrive pre-paid from delta maintenance, so the
        instance charges zero extraction units no matter which
        parameters the rule walk reads.  Step two is seeded by
        reference: the maintained degree array is only sorted for the
        R estimate if a rule actually tests ``r``.
        """
        return LazyFeatures(
            matrix,
            structure=self.structure_snapshot(),
            r_source=self.powerlaw,
        )
