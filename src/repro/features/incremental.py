"""Two-step lazy feature extraction (Section 6, "Feature Extraction").

The runtime procedure checks the DIA and ELL rule groups first; those rules
only reference step-one parameters, so the expensive power-law fit runs only
when the decision actually reaches the COO rules.  ``LazyFeatures`` tracks
which steps have run and how much work they cost, feeding the Table 3
overhead accounting.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.features.extract import (
    extract_powerlaw_feature,
    extract_structure_features,
)
from repro.features.parameters import FEATURE_NAMES, FeatureVector
from repro.formats.csr import CSRMatrix

#: Step-one parameters (everything except the power-law R).
STRUCTURE_PARAMS = frozenset(name for name in FEATURE_NAMES if name != "r")

#: Relative cost of each extraction step, in units of one CSR-SpMV.
#: Step one is a single fused pass over the index structure (~1 SpMV of
#: traffic); the power-law fit sorts the degree sequence and runs a
#: regression (~1.5 SpMVs for typical graph matrices, per our measurements
#: and consistent with the paper's "non-trivial time" remark).
STRUCTURE_COST_SPMV_UNITS = 1.0
POWERLAW_COST_SPMV_UNITS = 1.5


class LazyFeatures:
    """Feature vector materialised step by step.

    >>> lazy = LazyFeatures(matrix)          # nothing computed yet
    >>> lazy.get("ndiags")                   # runs step one only
    >>> lazy.get("r")                        # runs step two on demand
    >>> lazy.extraction_cost_spmv_units()    # what the accesses cost

    ``structure`` seeds the step-one dict when a caller already holds
    exact values (the cascade's narrow-band census produces the full
    step-one set at bincount prices); a seeded instance never re-runs
    the structure pass and never charges its cost.
    """

    def __init__(
        self, matrix: CSRMatrix, structure: Optional[dict] = None
    ) -> None:
        self._matrix = matrix
        self._structure: Optional[dict] = structure
        self._seeded = structure is not None
        self._r: Optional[float] = None

    @property
    def structure_extracted(self) -> bool:
        return self._structure is not None

    @property
    def powerlaw_extracted(self) -> bool:
        return self._r is not None

    def get(self, name: str) -> float:
        """Value of one parameter, extracting its step lazily."""
        if name == "r":
            if self._r is None:
                self._r = extract_powerlaw_feature(self._matrix)
            return self._r
        if name not in STRUCTURE_PARAMS:
            raise KeyError(f"unknown feature parameter: {name}")
        if self._structure is None:
            self._structure = extract_structure_features(self._matrix)
        return float(self._structure[name])

    def snapshot(self) -> FeatureVector:
        """Force full extraction and return the complete vector."""
        for step_trigger in ("m", "r"):
            self.get(step_trigger)
        assert self._structure is not None and self._r is not None
        return FeatureVector(r=self._r, **self._structure)

    def partial_snapshot(self) -> FeatureVector:
        """The vector as currently known; un-extracted R reported as inf
        (treated as missing by the rule evaluator)."""
        if self._structure is None:
            self.get("m")
        assert self._structure is not None
        r = self._r if self._r is not None else math.inf
        return FeatureVector(r=r, **self._structure)

    def extraction_cost_spmv_units(self) -> float:
        """Extraction work done so far, in units of one CSR-SpMV.

        A seeded structure dict was computed (and charged) elsewhere, so
        only a structure pass this instance actually ran counts here.
        """
        cost = 0.0
        if self._structure is not None and not self._seeded:
            cost += STRUCTURE_COST_SPMV_UNITS
        if self._r is not None:
            cost += POWERLAW_COST_SPMV_UNITS
        return cost
