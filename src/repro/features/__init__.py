"""Sparse-structure feature extraction (Section 4, Table 2)."""

from repro.features.cheap import (
    CHEAP_CENSUS_COST_SPMV_UNITS,
    CHEAP_COST_SPMV_UNITS,
    CheapFeatures,
)
from repro.features.extract import (
    TRUE_DIAGONAL_THRESHOLD,
    extract_features,
    extract_powerlaw_feature,
    extract_structure_features,
)
from repro.features.incremental import LazyFeatures
from repro.features.parameters import FEATURE_NAMES, FeatureVector
from repro.features.powerlaw import estimate_power_law_exponent

__all__ = [
    "CHEAP_CENSUS_COST_SPMV_UNITS",
    "CHEAP_COST_SPMV_UNITS",
    "CheapFeatures",
    "FEATURE_NAMES",
    "FeatureVector",
    "LazyFeatures",
    "TRUE_DIAGONAL_THRESHOLD",
    "estimate_power_law_exponent",
    "extract_features",
    "extract_powerlaw_feature",
    "extract_structure_features",
]
