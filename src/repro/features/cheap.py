"""Stage-0 cheap features: degree statistics and diagonal *bounds*.

The decision cascade (Elafrou et al.'s lightweight-selection argument,
PAPERS.md) needs a feature tier strictly cheaper than the Table 2
structure pass: everything here derives from ``indptr`` diffs and two
O(rows) gathers — no sort, no ``np.unique`` census, no power-law fit.

The trick that keeps the cheap tier *sound* is interval arithmetic.
Every parameter is reported as a ``[lo, hi]`` bound:

* degree-derived parameters (m, n, nnz, aver_RD, max_RD, var_RD, ER_ELL)
  are exact — ``lo == hi``;
* ``Ndiags`` is bounded below by ``max_RD`` (one row's entries occupy
  distinct diagonals) and above by the occupied band span
  ``max_offset - min_offset + 1``;
* ``ER_DIA = nnz / (Ndiags * m)`` inherits the reciprocal bounds;
* ``NTdiags_ratio`` is ``[0, 1]`` and the power-law ``R`` is unbounded —
  rules over them simply cannot resolve cheaply.

A rule condition evaluated against bounds returns true/false only when
*provable*; the cascade escalates on "unknown", so a stage-0 answer is
always identical to what the full extraction would have produced.

For narrow bands there is a middle gear: when the occupied span fits
``census_max_diags``, :meth:`CheapFeatures.ensure_census` runs an exact
diagonal census with ``np.bincount`` over the span — O(nnz) with no sort,
unlike the general ``np.unique`` census — which makes every step-one
parameter exact at a fraction of the full pass's cost.  This is what lets
DIA-friendly banded matrices (whose rules need ``Ndiags``/``ER_DIA``)
still resolve at stage 0.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.features.extract import TRUE_DIAGONAL_THRESHOLD
from repro.features.parameters import FEATURE_NAMES
from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE
from repro.util.stats import gini_like_variance

#: Cost of the degree/band pass, in units of one CSR SpMV.  It touches
#: ``indptr`` (O(rows)) plus two O(rows) gathers into ``indices`` —
#: roughly a tenth of the fused structure pass's traffic.
CHEAP_COST_SPMV_UNITS = 0.1

#: Cost of the narrow-band exact census: one O(nnz) ``bincount`` pass,
#: no sort — cheaper than the ``np.unique`` (sort-based) census of the
#: full structure pass but real work all the same.
CHEAP_CENSUS_COST_SPMV_UNITS = 0.4

#: Parameters the narrow-band census makes exact.
CENSUS_PARAMS = frozenset({"ndiags", "ntdiags_ratio", "er_dia"})

_UNBOUNDED = (-np.inf, np.inf)


class CheapFeatures:
    """Interval bounds over the Table 2 parameters from O(rows) work.

    ``get_bound(name)`` returns ``(lo, hi)``; exact values have
    ``lo == hi``.  Accessing a census parameter while the occupied band
    span fits ``census_max_diags`` lazily runs the exact bincount census
    (and tightens those bounds to points).  ``cost_units`` reports the
    work actually done, in CSR-SpMV units, for the cascade's budget
    ledger.
    """

    def __init__(
        self, matrix: CSRMatrix, census_max_diags: int = 512
    ) -> None:
        self._matrix = matrix
        self.census_max_diags = census_max_diags
        self._census_ran = False
        self._bounds: Dict[str, Tuple[float, float]] = {}
        self._structure: Optional[dict] = None
        with obs.span(
            "features.cheap",
            rows=int(matrix.n_rows),
            nnz=int(matrix.nnz),
        ):
            self._degree_pass()

    # ------------------------------------------------------------------
    def _degree_pass(self) -> None:
        matrix = self._matrix
        m, n = matrix.shape
        nnz = int(matrix.nnz)
        degrees = matrix.row_degrees()
        aver_rd = nnz / m
        max_rd = int(degrees.max()) if degrees.size else 0
        var_rd = gini_like_variance(degrees, aver_rd)
        er_ell = nnz / (max_rd * m) if max_rd else 1.0

        bounds = self._bounds
        for name, value in (
            ("m", float(m)),
            ("n", float(n)),
            ("nnz", float(nnz)),
            ("aver_rd", aver_rd),
            ("max_rd", float(max_rd)),
            ("var_rd", var_rd),
            ("er_ell", er_ell),
        ):
            bounds[name] = (value, value)
        bounds["r"] = _UNBOUNDED

        if nnz == 0:
            # The empty matrix's step-one parameters are all fixed by
            # convention (see extract_structure_features); report them
            # exactly so rule walks never escalate over nothing.
            bounds["ndiags"] = (0.0, 0.0)
            bounds["ntdiags_ratio"] = (0.0, 0.0)
            bounds["er_dia"] = (1.0, 1.0)
            self._band = None
            return

        # Occupied band span from each non-empty row's first/last column:
        # two O(rows) gathers, no pass over the full index array.  The
        # every-row-occupied case (the common one) skips the boolean
        # masking, which otherwise costs as much as the gathers.
        ptr = matrix.ptr
        rows_idx = np.arange(m, dtype=INDEX_DTYPE)
        if int(degrees.min()) > 0:
            first = matrix.indices[ptr[:-1]] - rows_idx
            last = matrix.indices[ptr[1:] - 1] - rows_idx
        else:
            nz = degrees > 0
            rows_idx = rows_idx[nz]
            first = matrix.indices[ptr[:-1][nz]] - rows_idx
            last = matrix.indices[ptr[1:][nz] - 1] - rows_idx
        lo_off = int(first.min())
        hi_off = int(last.max())
        span = hi_off - lo_off + 1
        self._band = (lo_off, span)

        # Within one row, column indices are distinct, so its entries sit
        # on distinct diagonals: Ndiags >= max_RD.  The occupied span is
        # the upper bound.
        nd_lo = float(max(max_rd, 1))
        nd_hi = float(span)
        bounds["ndiags"] = (nd_lo, nd_hi)
        bounds["er_dia"] = (nnz / (nd_hi * m), nnz / (nd_lo * m))
        bounds["ntdiags_ratio"] = (0.0, 1.0)

        if span == max_rd:
            # Contiguous dense band.  A max-degree row has max_RD entries
            # on distinct offsets inside the span-wide window, and the
            # window is exactly max_RD slots — so every such row occupies
            # *every* offset in the band.  That pins Ndiags == span (and
            # ER_DIA) exactly, and counting max-degree rows lower-bounds
            # each diagonal's occupancy: diagonal k spans a contiguous
            # range of len_k rows, so at least full_rows - (m - len_k)
            # of its slots are filled.  No census, still sound.
            full_rows = int(np.count_nonzero(degrees == max_rd))
            offsets = np.arange(lo_off, hi_off + 1)
            lengths = np.maximum(
                np.minimum(m, n - offsets) - np.maximum(0, -offsets), 1
            )
            occ_lo = (full_rows - (m - lengths)) / lengths
            n_true_lo = int(
                np.count_nonzero(occ_lo >= TRUE_DIAGONAL_THRESHOLD)
            )
            bounds["ndiags"] = (nd_hi, nd_hi)
            er_dia = nnz / (nd_hi * m)
            bounds["er_dia"] = (er_dia, er_dia)
            bounds["ntdiags_ratio"] = (n_true_lo / nd_hi, 1.0)

    # ------------------------------------------------------------------
    @property
    def census_ran(self) -> bool:
        return self._census_ran

    @property
    def census_feasible(self) -> bool:
        """True when the occupied band span fits the census budget."""
        return (
            self._band is not None
            and self._band[1] <= self.census_max_diags
        )

    def ensure_census(self) -> bool:
        """Run the exact narrow-band census if feasible; True when the
        census parameters are exact afterwards."""
        if self._census_ran or self._matrix.nnz == 0:
            return True
        if not self.census_feasible:
            return False
        assert self._band is not None
        lo_off, span = self._band
        matrix = self._matrix
        m, n = matrix.shape
        nnz = int(matrix.nnz)
        with obs.span("features.cheap_census", span=span, nnz=nnz):
            row_of = np.repeat(
                np.arange(m, dtype=INDEX_DTYPE), matrix.row_degrees()
            )
            diag_of = matrix.indices - row_of
            counts_all = np.bincount(diag_of - lo_off, minlength=span)
            present = counts_all > 0
            offsets = np.nonzero(present)[0] + lo_off
            counts = counts_all[present]
            lengths = np.minimum(m, n - offsets) - np.maximum(0, -offsets)
            occupancy = counts / np.maximum(lengths, 1)
            n_true = int(
                np.count_nonzero(occupancy >= TRUE_DIAGONAL_THRESHOLD)
            )
            ndiags = int(offsets.shape[0])
        ntdiags_ratio = (n_true / ndiags) if ndiags else 0.0
        er_dia = nnz / (ndiags * m) if ndiags else 1.0
        self._bounds["ndiags"] = (float(ndiags), float(ndiags))
        self._bounds["ntdiags_ratio"] = (ntdiags_ratio, ntdiags_ratio)
        self._bounds["er_dia"] = (er_dia, er_dia)
        self._census_ran = True
        return True

    # ------------------------------------------------------------------
    def get_bound(self, name: str) -> Tuple[float, float]:
        """``(lo, hi)`` for one parameter from the work done so far.

        A pure read — never escalates.  Callers that fail to resolve a
        rule condition against an interval ask :meth:`tightened_bound`
        for the exact value instead.
        """
        if name not in FEATURE_NAMES:
            raise KeyError(f"unknown feature parameter: {name}")
        return self._bounds[name]

    def tightened_bound(self, name: str) -> Tuple[float, float]:
        """``get_bound`` after spending the narrow-band census (when it
        is feasible and would actually tighten ``name``)."""
        bound = self.get_bound(name)
        if (
            name in CENSUS_PARAMS
            and bound[0] != bound[1]
            and not self._census_ran
            and self.census_feasible
        ):
            self.ensure_census()
            bound = self._bounds[name]
        return bound

    @property
    def cost_units(self) -> float:
        """Work done so far, in units of one CSR SpMV."""
        cost = CHEAP_COST_SPMV_UNITS
        if self._census_ran:
            cost += CHEAP_CENSUS_COST_SPMV_UNITS
        return cost

    def structure_snapshot(self) -> Optional[dict]:
        """The full step-one dict when every structure parameter is
        exact — because the census ran, the dense-band shortcut pinned
        all three census parameters, or the matrix is empty.  Used to
        seed :class:`~repro.features.incremental.LazyFeatures` on
        escalation so the structure pass is never paid twice.  None when
        any census bound is still an interval.
        """
        b = self._bounds
        exact = self._census_ran or all(
            b[name][0] == b[name][1] for name in CENSUS_PARAMS
        )
        if self._matrix.nnz != 0 and not exact:
            return None
        return {
            "m": int(b["m"][0]),
            "n": int(b["n"][0]),
            "ndiags": int(b["ndiags"][0]),
            "ntdiags_ratio": float(b["ntdiags_ratio"][0]),
            "nnz": int(b["nnz"][0]),
            "aver_rd": float(b["aver_rd"][0]),
            "max_rd": int(b["max_rd"][0]),
            "var_rd": float(b["var_rd"][0]),
            "er_dia": float(b["er_dia"][0]),
            "er_ell": float(b["er_ell"][0]),
        }
