"""Power-law exponent estimation for the COO criterion.

Section 4 adopts the small-world/scale-free criterion of Yang et al.:
COO wins when the row-degree distribution follows ``P(k) ~ k^-R`` with
``R`` in ``[1, 4]``.  We estimate ``R`` by least-squares on the log-log
degree histogram — deliberately the "heavy computation" the paper defers to
the second extraction step.
"""

from __future__ import annotations

import math

import numpy as np

#: Minimum number of distinct positive degrees for a meaningful fit.
MIN_DISTINCT_DEGREES = 4

#: Minimum goodness of fit (R^2 of the log-log regression) to accept that
#: the distribution is a power law at all.
MIN_FIT_QUALITY = 0.5


def estimate_power_law_exponent(row_degrees: np.ndarray) -> float:
    """Estimate ``R`` of ``P(k) ~ k^-R`` from a row-degree sample.

    Returns ``inf`` when the matrix shows no scale-free structure (too few
    distinct degrees, or a bad log-log fit), matching the paper's convention
    of recording ``inf`` for non-graph matrices.
    """
    degrees = np.asarray(row_degrees)
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        return math.inf

    values, counts = np.unique(degrees, return_counts=True)
    if values.shape[0] < MIN_DISTINCT_DEGREES:
        return math.inf

    log_k = np.log(values.astype(np.float64))
    log_p = np.log(counts.astype(np.float64) / degrees.size)

    # Weight each distinct degree by (the square root of) its frequency:
    # otherwise a long tail of singleton degrees — a handful of dense rows
    # in an otherwise uniform matrix — fakes a steep slope and misclassifies
    # LP-style matrices as scale-free.
    weights = np.sqrt(counts.astype(np.float64))
    slope, intercept = np.polyfit(log_k, log_p, deg=1, w=weights)
    predicted = slope * log_k + intercept
    residual = np.sum(weights * (log_p - predicted) ** 2)
    mean_p = np.average(log_p, weights=weights)
    total = np.sum(weights * (log_p - mean_p) ** 2)
    if total <= 0.0:
        return math.inf
    fit_quality = 1.0 - residual / total
    if fit_quality < MIN_FIT_QUALITY:
        return math.inf

    exponent = -float(slope)
    if exponent <= 0.0:
        # Degree counts *increasing* with k is the opposite of scale-free.
        return math.inf
    return exponent


def is_power_law(exponent: float, low: float = 1.0, high: float = 4.0) -> bool:
    """The paper's COO rule-of-thumb: ``R`` in ``[1, 4]`` (Figure 6e)."""
    return math.isfinite(exponent) and low <= exponent <= high
