"""Shared-memory primitives for the sharded serving cluster.

The whole point of :mod:`repro.cluster` is that operand arrays cross the
process boundary **by reference, never by value**: a request message
carries a few dozen bytes of metadata (segment name, offset, shape,
dtype) while the array bytes live in a :class:`multiprocessing.shared_memory`
segment both sides map.  Three pieces make that workable:

* :class:`SharedArrayRef` — a picklable *descriptor* of one NumPy array
  inside a segment.  It contains no array payload by construction; the
  zero-copy guard test pickles request messages and asserts exactly that.
* :class:`SharedArena` — a bump-and-free-list allocator over one shared
  segment.  Allocation and free happen **only in the owning process**
  (the dispatcher), so the allocator needs no cross-process locking;
  workers are pure readers/writers of slots handed to them.
* :class:`SegmentCache` — the attach side.  Workers resolve a ref's
  segment name to a mapped :class:`~multiprocessing.shared_memory.SharedMemory`
  once and reuse the mapping for every later ref into the same segment.

Ownership is single-sided: the dispatcher creates, allocates and unlinks;
workers only attach (see :func:`attach_segment` for why the attach must
leave the shared resource tracker's registration alone).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ServeError

#: Allocation granularity.  64 bytes keeps every array cache-line aligned
#: and SIMD-load friendly regardless of what was freed before it.
ALIGNMENT = 64


class SharedMemoryError(ServeError):
    """An arena allocation or attach failed."""


@dataclass(frozen=True)
class SharedArrayRef:
    """A picklable pointer to one NumPy array inside a shared segment.

    This is what request messages carry instead of the array itself.
    ``nbytes`` is the array payload; the descriptor itself pickles to a
    few dozen bytes no matter how large the array is.
    """

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


def _align(nbytes: int) -> int:
    return -(-max(nbytes, 1) // ALIGNMENT) * ALIGNMENT


class SharedArena:
    """A single-owner allocator over one shared-memory segment.

    The *owner* (the process that created the arena) allocates and frees;
    attached processes only map slots.  Free blocks are kept as a sorted,
    coalesced ``(offset, size)`` list — first-fit is plenty for the plan
    store's population (tens to hundreds of arrays).

    All owner-side operations are thread-safe: the dispatcher allocates
    from client threads and frees from its collector thread.
    """

    def __init__(self, capacity: int, name: Optional[str] = None) -> None:
        if capacity < ALIGNMENT:
            raise ValueError(
                f"capacity must be >= {ALIGNMENT} bytes, got {capacity}"
            )
        self.capacity = _align(capacity)
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.capacity, name=name
        )
        self._lock = threading.Lock()
        self._free: List[Tuple[int, int]] = [(0, self.capacity)]
        self._allocated: Dict[int, int] = {}  # offset -> size
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def bytes_allocated(self) -> int:
        with self._lock:
            return sum(self._allocated.values())

    @property
    def bytes_free(self) -> int:
        with self._lock:
            return sum(size for _, size in self._free)

    # ------------------------------------------------------------------
    def alloc(self, shape: Tuple[int, ...], dtype) -> SharedArrayRef:
        """Reserve an aligned slot for an array; raises when full."""
        dtype = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= int(dim)
        size = _align(count * dtype.itemsize)
        with self._lock:
            if self._closed:
                raise SharedMemoryError("arena is closed")
            for i, (offset, free_size) in enumerate(self._free):
                if free_size >= size:
                    if free_size == size:
                        del self._free[i]
                    else:
                        self._free[i] = (offset + size, free_size - size)
                    self._allocated[offset] = size
                    return SharedArrayRef(
                        segment=self.name,
                        offset=offset,
                        shape=tuple(int(d) for d in shape),
                        dtype=dtype.str,
                    )
        raise SharedMemoryError(
            f"arena {self.name} cannot fit {size} bytes "
            f"({self.bytes_free} free of {self.capacity})"
        )

    def free(self, ref: SharedArrayRef) -> None:
        """Return a slot to the free list, coalescing neighbours."""
        if ref.segment != self.name:
            raise SharedMemoryError(
                f"ref belongs to segment {ref.segment}, not {self.name}"
            )
        with self._lock:
            size = self._allocated.pop(ref.offset, None)
            if size is None:
                raise SharedMemoryError(
                    f"double free at offset {ref.offset} in {self.name}"
                )
            self._free.append((ref.offset, size))
            self._free.sort()
            merged: List[Tuple[int, int]] = []
            for offset, block in self._free:
                if merged and merged[-1][0] + merged[-1][1] == offset:
                    merged[-1] = (merged[-1][0], merged[-1][1] + block)
                else:
                    merged.append((offset, block))
            self._free = merged

    def place(self, array: np.ndarray) -> SharedArrayRef:
        """Allocate a slot and copy ``array`` into it (the one cold copy)."""
        array = np.ascontiguousarray(array)
        ref = self.alloc(array.shape, array.dtype)
        self.view(ref)[...] = array
        return ref

    def view(self, ref: SharedArrayRef) -> np.ndarray:
        """Owner-side zero-copy view of a slot."""
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=self._shm.buf,
            offset=ref.offset,
        )

    # ------------------------------------------------------------------
    def close(self, unlink: bool = True) -> None:
        """Unmap (and, as owner, destroy) the segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._shm.close()
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without adopting ownership of it.

    Python 3.13 grew ``track=False`` for exactly this; earlier versions
    register every attach with the ``resource_tracker``.  That is benign
    here — cluster workers are ``multiprocessing``-spawned, so they
    *share* the dispatcher's tracker process (the fd rides in the spawn
    preparation data) and the attach-side register is a set no-op on a
    name the owner already registered.  Crucially we must NOT "helpfully"
    unregister after attaching: with a shared tracker that would delete
    the owner's sole registration, so the owner's later ``unlink`` fails
    to unregister (noisy tracker KeyError) and a dispatcher crash would
    leak the segment instead of having the tracker reap it.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        return shared_memory.SharedMemory(name=name)


class SegmentCache:
    """The attach side: resolves refs to views, one mapping per segment.

    Workers hold one of these for the life of the process; every
    :meth:`view` after the first for a given segment is a pure pointer
    computation, no syscalls.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.Lock()

    def view(self, ref: SharedArrayRef) -> np.ndarray:
        with self._lock:
            shm = self._segments.get(ref.segment)
            if shm is None:
                try:
                    shm = attach_segment(ref.segment)
                except FileNotFoundError:
                    raise SharedMemoryError(
                        f"shared segment {ref.segment} does not exist "
                        f"(was the arena closed?)"
                    ) from None
                self._segments[ref.segment] = shm
        return np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=shm.buf,
            offset=ref.offset,
        )

    def detach(self, segment: str) -> bool:
        """Drop one segment mapping (after the owner invalidated it)."""
        with self._lock:
            shm = self._segments.pop(segment, None)
        if shm is None:
            return False
        _close_quietly(shm)
        return True

    def close(self) -> None:
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
        for shm in segments:
            _close_quietly(shm)


def _close_quietly(shm: shared_memory.SharedMemory) -> None:
    """Unmap a segment, tolerating still-exported array views.

    A NumPy view created over ``shm.buf`` exports the buffer; releasing
    the mapping under it raises :class:`BufferError`.  That can happen
    transiently when a plan that references the segment has not been
    garbage-collected yet — the mapping is then simply left to die with
    the process instead of crashing the worker loop.
    """
    try:
        shm.close()
    except BufferError:  # pragma: no cover - GC-timing dependent
        pass
