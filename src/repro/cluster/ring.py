"""Consistent-hash request routing: one structure, one shard.

Plans are the expensive artifact, so the cluster routes every request
for a given sparsity *structure* to the same shard — that shard's plan
cache (and its tier-2 structure index) stays hot, and a structure's
converted operand exists exactly once across the fleet.

A classic consistent-hash ring does the mapping: each shard contributes
``replicas`` points (BLAKE2b of ``"shard:replica"``) on a 64-bit circle;
a key routes to the first point clockwise of its own hash.  Properties
the cluster relies on:

* **determinism** — routing is a pure function of (key, shard set), so
  dispatcher restarts and tests agree on placement;
* **stability** — removing one shard remaps only the keys that lived on
  it (~1/N of traffic); every other structure keeps its warm shard.
  (The dispatcher respawns crashed shards in place, so this matters for
  *resizes*, not crashes — a respawned shard keeps its ring position and
  is re-warmed from the dispatcher's structure index.)

Keys are strings; the dispatcher uses the request's
:class:`~repro.serve.fingerprint.StructureKey` rendering when available
(so value churn stays on the structure's shard) and the value-inclusive
digest otherwise.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for ``label``."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over integer shard ids."""

    def __init__(self, shards: Sequence[int], replicas: int = 64) -> None:
        if not shards:
            raise ValueError("ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard ids in {list(shards)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[Tuple[int, int]] = []  # (coordinate, shard)
        self._shards: List[int] = []
        for shard in shards:
            self.add_shard(int(shard))

    # ------------------------------------------------------------------
    @property
    def shards(self) -> List[int]:
        return sorted(self._shards)

    def add_shard(self, shard: int) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard} is already on the ring")
        self._shards.append(shard)
        for replica in range(self.replicas):
            self._points.append((_point(f"{shard}:{replica}"), shard))
        self._points.sort()

    def remove_shard(self, shard: int) -> None:
        if shard not in self._shards:
            raise ValueError(f"shard {shard} is not on the ring")
        self._shards.remove(shard)
        self._points = [p for p in self._points if p[1] != shard]

    # ------------------------------------------------------------------
    def route(self, key: str) -> int:
        """The shard owning ``key``: first ring point clockwise of it."""
        if not self._points:
            raise ValueError("cannot route on an empty ring")
        coordinate = _point(key)
        index = bisect.bisect_right(
            self._points, (coordinate, float("inf"))
        )
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._points[index][1]

    def spread(self, keys: Sequence[str]) -> Dict[int, int]:
        """Keys per shard (diagnostics: how balanced is this workload?)."""
        counts: Dict[int, int] = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
