"""Multi-process sharded serving with a shared-memory plan store.

The in-process :class:`~repro.serve.ServingEngine` scales across threads
but stays behind one GIL.  This package runs N engines in N ``spawn``-ed
worker processes behind a :class:`ClusterDispatcher`:

* requests route by the matrix's **structure key** over a consistent-hash
  ring, so each structure's plan is built and cached on exactly one shard
  (and value churn keeps hitting the shard that can tier-2-refresh it);
* operand arrays and request/response vectors live in
  ``multiprocessing.shared_memory`` segments managed by a
  :class:`SharedArena`; messages carry :class:`SharedArrayRef`
  descriptors only — **zero operand bytes are pickled on the hot path**,
  and the ``operand_bytes_pickled`` counter proves it;
* the dispatcher reuses the serving stack's resilience primitives at the
  shard boundary — deadlines travel as absolute monotonic expiries,
  crashed workers are respawned and re-warmed from the structure index,
  in-flight requests are re-dispatched, and a shard that keeps dying is
  fenced off behind a circuit breaker with local degraded serving.

>>> from repro.cluster import ClusterDispatcher, ClusterConfig, WorkerSpec
>>> with ClusterDispatcher(WorkerSpec(tuner=smat),
...                        ClusterConfig(workers=4)) as cluster:
...     y = cluster.spmv(matrix, x).y
"""

from repro.cluster.dispatcher import (
    ClusterConfig,
    ClusterDeltaResult,
    ClusterDispatcher,
    ClusterResult,
)
from repro.cluster.messages import (
    DeltaShardReply,
    DeltaShardRequest,
    Heartbeat,
    PlanHandle,
    ShardReply,
    ShardRequest,
    WarmRequest,
    ndarray_payload_bytes,
)
from repro.cluster.ring import HashRing
from repro.cluster.sharedmem import (
    SegmentCache,
    SharedArena,
    SharedArrayRef,
    SharedMemoryError,
)
from repro.cluster.worker import (
    WorkerRuntime,
    WorkerSpec,
    train_default_tuner,
    worker_main,
)

__all__ = [
    "ClusterConfig",
    "ClusterDeltaResult",
    "ClusterDispatcher",
    "ClusterResult",
    "DeltaShardReply",
    "DeltaShardRequest",
    "HashRing",
    "Heartbeat",
    "PlanHandle",
    "SegmentCache",
    "SharedArena",
    "SharedArrayRef",
    "SharedMemoryError",
    "ShardReply",
    "ShardRequest",
    "WarmRequest",
    "WorkerRuntime",
    "WorkerSpec",
    "ndarray_payload_bytes",
    "train_default_tuner",
    "worker_main",
]
