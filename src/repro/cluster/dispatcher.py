"""The cluster dispatcher: shard routing, shared-memory publishing, repair.

``ClusterDispatcher`` is the client-facing half of :mod:`repro.cluster`.
It owns everything the workers must agree on:

* the **ring** — requests route by the matrix's *structure key* (see
  :mod:`repro.cluster.ring`), so one structure's plan is built once, on
  exactly one shard, and value churn for that structure keeps hitting the
  shard whose tier-2 cache can refresh it;
* the **plan store** — operand CSR arrays are published once per
  fingerprint into :class:`~repro.cluster.sharedmem.SharedArena`
  segments; requests and re-warms reference them by descriptor.  Request
  (``x``) and response (``y``) vectors get per-request slots from the
  same arenas.  The zero-copy invariant is measured, not assumed: every
  outbound message is charged to the ``operand_bytes_pickled`` counter
  via :func:`~repro.cluster.messages.ndarray_payload_bytes`, and staying
  at zero is an acceptance gate;
* the **repair loop** — heartbeat staleness and dead processes are
  detected by a monitor thread; a crashed shard is respawned under a new
  *generation*, its plans re-warmed from the dispatcher's structure
  index, and its in-flight requests re-dispatched (bounded by
  ``max_redispatches``).  Replies are only accepted from the generation
  a request was last dispatched to, so a dead incarnation's late replies
  can neither resolve a request nor free shared slots the replacement
  incarnation is still going to write;
* the **shard boundary resilience** — the same primitives the in-process
  engine uses (:class:`~repro.serve.resilience.CircuitBreaker`,
  bounded outstanding windows raising
  :class:`~repro.errors.BackpressureError`, absolute deadlines carried as
  machine-wide ``CLOCK_MONOTONIC`` expiries) applied per shard.  A shard
  whose breaker opens is served *locally* by the degraded CSR reference
  plan — the cluster sheds to correctness, never to silence.

Metrics from workers arrive as cumulative snapshots on heartbeats and
exits; the dispatcher keeps the latest per (shard, generation) and merges
with :func:`repro.serve.metrics.merge_snapshots` (see that module's
fork-safety notes for why this cannot double count).
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.cluster.messages import (
    BatchShardRequest,
    DeltaShardReply,
    DeltaShardRequest,
    Heartbeat,
    InvalidateReply,
    InvalidateRequest,
    ModelUpdate,
    ModelUpdateReply,
    PlanHandle,
    ShardReply,
    ShardRequest,
    ShutdownRequest,
    WarmReply,
    WarmRequest,
    ndarray_payload_bytes,
)
from repro.cluster.ring import HashRing
from repro.cluster.sharedmem import SharedArena, SharedArrayRef, SharedMemoryError
from repro.cluster.worker import WorkerSpec, worker_main
from repro.errors import (
    BackpressureError,
    DeadlineExceededError,
    ServeError,
    TransientError,
)
from repro.formats.csr import CSRMatrix
from repro.formats.delta import StructureDelta, apply_delta
from repro.serve.fingerprint import Fingerprint, fingerprint
from repro.serve.metrics import MetricsRegistry, format_snapshot, merge_snapshots
from repro.serve.resilience import BuildTicket, CircuitBreaker, DegradedPlan
from repro.types import FormatName

#: Dispatcher-side instruments, pre-registered so the scoreboard always
#: shows the repair and zero-copy paths, fired or not.
_CLUSTER_COUNTERS = (
    "requests_submitted",
    "requests_served",
    "requests_failed",
    "requests_rejected",
    "operand_bytes_pickled",
    "plans_published",
    "plans_invalidated",
    "plans_rewarmed",
    "rewarm_failures",
    "worker_crashes",
    "workers_respawned",
    "workers_hung",
    "redispatches",
    "dispatch_batches_total",
    "dispatch_requests_batched",
    "stale_replies_ignored",
    "degraded_local",
    "shard_breaker_opened",
    "shard_breaker_probes",
    "shard_breaker_recovered",
    "model_pushes",
    "model_push_acks",
    "model_push_failures",
    "deltas_dispatched",
    "delta_migrations",
    "delta_rehomes",
    "delta_failures",
)


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing and repair policy of one sharded cluster."""

    #: Shard worker processes.
    workers: int = 2
    #: Virtual ring points per shard (routing smoothness).
    ring_replicas: int = 64
    #: Per-shard in-flight request window; beyond it submits raise
    #: :class:`BackpressureError` (the cluster's backpressure point).
    max_outstanding: int = 128
    #: Seconds between worker heartbeats.
    heartbeat_interval: float = 0.25
    #: A shard silent this long (while its process is alive) is hung:
    #: it is killed and respawned.
    heartbeat_timeout: float = 10.0
    #: Monitor thread poll period.
    monitor_interval: float = 0.05
    #: Seconds to wait for a spawned worker's ready heartbeat.
    spawn_timeout: float = 60.0
    #: Crash respawns per shard before it is declared dead (its traffic
    #: then degrades to local CSR serving).
    max_respawns: int = 3
    #: Times one request may be re-dispatched after worker crashes.
    max_redispatches: int = 2
    #: Default end-to-end deadline (seconds) per request; None = none.
    default_deadline: Optional[float] = None
    #: Consecutive shard failures (crashes/hangs) that open the shard's
    #: breaker; while open, requests degrade locally and every
    #: ``shard_breaker_probe_interval``-th is dispatched as a probe.
    shard_breaker_threshold: int = 2
    shard_breaker_probe_interval: int = 8
    #: Size of each shared-memory segment; the store grows by whole
    #: segments when one fills.
    arena_bytes: int = 16 * 1024 * 1024
    #: Soft budget over *published operand* bytes; publishing past it
    #: evicts least-recently-used idle structures (ack-gated, see
    #: ``invalidate``).  None = unbounded.
    store_bytes: Optional[int] = None
    #: Seconds a built request may linger in the dispatch buffer waiting
    #: for same-fingerprint company before it is sent alone.  With
    #: ``max_batch_rhs > 1`` and a window > 0, a same-structure fan-in
    #: burst leaves as one :class:`BatchShardRequest` the worker turns
    #: into a single SpMM; 0 sends every request immediately.
    batch_window: float = 0.0
    #: Most requests coalesced into one batched dispatch (and the
    #: ``max_batch_rhs`` the worker engines are configured with).  The
    #: default 1 disables dispatch coalescing, mirroring
    #: :class:`repro.serve.engine.ServeConfig` — multi-RHS stacking
    #: reassociates float summation, so fan-in workloads opt in.
    max_batch_rhs: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_outstanding < 1:
            raise ValueError(
                f"max_outstanding must be >= 1, got {self.max_outstanding}"
            )
        if self.heartbeat_interval <= 0.0:
            raise ValueError(
                f"heartbeat_interval must be > 0, "
                f"got {self.heartbeat_interval}"
            )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                f"heartbeat_timeout ({self.heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval})"
            )
        if self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.max_redispatches < 0:
            raise ValueError(
                f"max_redispatches must be >= 0, got {self.max_redispatches}"
            )
        if self.arena_bytes < 4096:
            raise ValueError(
                f"arena_bytes must be >= 4096, got {self.arena_bytes}"
            )
        if self.batch_window < 0.0:
            raise ValueError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )
        if self.max_batch_rhs < 1:
            raise ValueError(
                f"max_batch_rhs must be >= 1, got {self.max_batch_rhs}"
            )


@dataclass
class ClusterResult:
    """What the dispatcher hands back for one request.

    Duck-compatible with :class:`repro.serve.engine.ServeResult` where the
    workload driver cares (``y``, ``cache_hit``, timings), plus the
    cluster-only provenance: which shard and generation served it, whether
    it was re-dispatched across a crash, and whether the dispatcher had to
    degrade it locally because the shard was unavailable.
    """

    y: np.ndarray
    fingerprint: Fingerprint
    shard_id: int
    generation: int
    format_name: FormatName
    kernel_name: str
    cache_hit: bool
    used_fallback: bool
    queued_seconds: float
    plan_seconds: float
    execute_seconds: float
    #: Dispatcher-observed round trip (submit to accepted reply).
    dispatch_seconds: float
    degraded: bool = False
    #: Served by the dispatcher itself (shard breaker open / shard dead).
    degraded_local: bool = False
    refreshed: bool = False
    retries: int = 0
    #: Crash-driven re-dispatches this request survived.
    redispatches: int = 0

    @property
    def total_seconds(self) -> float:
        return self.dispatch_seconds


@dataclass
class ClusterDeltaResult:
    """Outcome of one dispatcher-level structure-delta migration.

    ``matrix`` is the post-delta CSR the caller must submit with from now
    on.  ``policy`` is the worker engine's migration choice ("patch",
    "refresh", "retune"), or "rehome" when the post-delta structure key
    routes to a *different* shard — the old shard's plan is invalidated
    and the new shard cold-builds on first request, so no migration
    message is sent at all.
    """

    matrix: CSRMatrix
    fingerprint: Fingerprint
    old_fingerprint: Fingerprint
    policy: str
    shard_id: int
    target_shard_id: int
    seconds: float


class _Pending:
    """One in-flight request: the future plus everything repair needs."""

    __slots__ = (
        "msg_id",
        "request",
        "future",
        "fingerprint",
        "shard_id",
        "expected_generation",
        "redispatches",
        "submitted_at",
        "trace_root",
    )

    def __init__(
        self,
        msg_id: int,
        request: ShardRequest,
        future: "Future[ClusterResult]",
        fp: Fingerprint,
        shard_id: int,
        generation: int,
    ) -> None:
        self.msg_id = msg_id
        self.request = request
        self.future = future
        self.fingerprint = fp
        self.shard_id = shard_id
        #: Replies are accepted only from this generation — the one the
        #: request was last dispatched to.  A dead incarnation's late
        #: reply must not resolve the future *or free the shared slots*
        #: its replacement is about to write into.
        self.expected_generation = generation
        self.redispatches = 0
        self.submitted_at = time.perf_counter()
        self.trace_root: Optional[obs.Span] = None


class _Shard:
    """Dispatcher-side state for one worker process."""

    def __init__(self, shard_id: int) -> None:
        self.id = shard_id
        self.generation = 0
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.request_q = None
        self.ready = threading.Event()
        self.last_heartbeat = 0.0
        self.outstanding: Dict[int, _Pending] = {}
        self.respawns = 0
        self.exited = False  # clean WorkerExit received
        self.dead = False    # respawn budget exhausted
        self.breaker: Optional[CircuitBreaker] = None
        self.last_queue_depth = 0


#: Reply error names mapped back to real exception classes so callers
#: catch the same types the in-process engine raises.
_ERROR_TYPES = {
    "DeadlineExceededError": DeadlineExceededError,
    "BackpressureError": BackpressureError,
    "TransientError": TransientError,
    "ServeError": ServeError,
    "ValueError": ValueError,
}


def _revive_error(error: Tuple[str, str]) -> Exception:
    name, message = error
    if name in _ERROR_TYPES:
        return _ERROR_TYPES[name](message)
    if name == "InjectedFault":
        return TransientError(f"InjectedFault: {message}")
    return ServeError(f"{name}: {message}")


class ClusterDispatcher:
    """N spawn-started shard workers behind consistent-hash routing.

    >>> spec = WorkerSpec(tuner=smat)
    >>> with ClusterDispatcher(spec, ClusterConfig(workers=4)) as cluster:
    ...     y = cluster.spmv(matrix, x).y
    ...     print(cluster.scoreboard())
    """

    def __init__(
        self,
        worker_spec: WorkerSpec,
        config: ClusterConfig = ClusterConfig(),
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.metrics.ensure(
            counters=_CLUSTER_COUNTERS,
            gauges=("published_bytes", "published_plans"),
            histograms=("dispatch_seconds",),
        )
        # Workers must see the dispatcher's heartbeat cadence, not their
        # spec default, so staleness detection and emission agree.  When
        # dispatch coalescing is on, the worker engines must accept at
        # least as many stacked RHS as one BatchShardRequest carries, or
        # the batch would be unbundled back into sequential SpMVs.
        worker_config = worker_spec.config
        if config.max_batch_rhs > worker_config.max_batch_rhs:
            worker_config = replace(
                worker_config, max_batch_rhs=config.max_batch_rhs
            )
        self._worker_spec = WorkerSpec(
            tuner=worker_spec.tuner,
            config=worker_config,
            fault_specs=worker_spec.fault_specs,
            fault_seed=worker_spec.fault_seed,
            heartbeat_interval=config.heartbeat_interval,
            crash_after=worker_spec.crash_after,
        )
        # spawn, never fork: see repro.serve.metrics on why fork would
        # double-count and repro.cluster.worker on why it would deadlock.
        self._ctx = multiprocessing.get_context("spawn")
        self._ring = HashRing(
            list(range(config.workers)), replicas=config.ring_replicas
        )
        self._shards: Dict[int, _Shard] = {}
        for shard_id in range(config.workers):
            shard = _Shard(shard_id)
            shard.breaker = CircuitBreaker(
                threshold=config.shard_breaker_threshold,
                probe_interval=config.shard_breaker_probe_interval,
            )
            self._shards[shard_id] = shard
        self._reply_q = self._ctx.Queue()
        self._lock = threading.RLock()
        self._msg_ids = itertools.count(1)
        # The plan store: fingerprint -> published handle, in LRU order
        # (dict preserves insertion; touches re-insert), plus the shard
        # index re-warms read from.
        self._published: Dict[Fingerprint, PlanHandle] = {}
        self._shard_plans: Dict[int, Dict[Fingerprint, PlanHandle]] = {
            shard_id: {} for shard_id in self._shards
        }
        self._invalidating: Dict[Fingerprint, PlanHandle] = {}
        self._arenas: Dict[str, SharedArena] = {}
        # Latest cumulative worker snapshots, keyed (shard, generation).
        self._worker_metrics: Dict[Tuple[int, int], Dict] = {}
        self._worker_cache_stats: Dict[Tuple[int, int], Dict] = {}
        # Replaced request queues are parked here until stop(): letting
        # one be garbage-collected runs its SemLock finalizer, which
        # unlinks the semaphore a just-spawned child may still be
        # unpickling (FileNotFoundError in the child's bootstrap).
        self._retired_queues: List[object] = []
        # Dispatch coalescing buffers: requests already built (slots
        # placed, pending registered in ``shard.outstanding``) parked
        # here by (shard, fingerprint) until the window closes or the
        # buffer fills.  Repair drains a crashed shard's buffers — its
        # members are re-dispatched as singles by the outstanding loop.
        self._batch_buffers: Dict[Tuple[int, Fingerprint], List[_Pending]] = {}
        self._batch_deadlines: Dict[Tuple[int, Fingerprint], float] = {}
        # In-flight structure-delta migrations awaiting their reply.
        self._delta_waiters: Dict[int, "Future[DeltaShardReply]"] = {}
        self._started = False
        self._stopping = False
        #: Monotonic ruleset-push counter; echoed in ModelUpdateReply.
        self._model_epoch = 0
        #: Latest pushed ruleset, replayed to respawned workers.
        self._last_pushed_model: Optional[object] = None
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None
        self._flusher: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterDispatcher":
        with self._lock:
            if self._started:
                raise ServeError("cluster already started")
            self._started = True
        self._collector = threading.Thread(
            target=self._collector_loop, name="cluster-collector", daemon=True
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()
        if self.config.max_batch_rhs > 1 and self.config.batch_window > 0.0:
            self._flusher = threading.Thread(
                target=self._flusher_loop, name="cluster-flusher", daemon=True
            )
            self._flusher.start()
        for shard in self._shards.values():
            self._spawn(shard)
        deadline = time.monotonic() + self.config.spawn_timeout
        for shard in self._shards.values():
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not shard.ready.wait(remaining):
                self.stop(drain=False)
                raise ServeError(
                    f"shard {shard.id} did not become ready within "
                    f"{self.config.spawn_timeout}s"
                )
        return self

    def _spawn(self, shard: _Shard) -> None:
        """Start (or restart) one shard under a fresh generation."""
        with self._lock:
            shard.generation += 1
            shard.ready.clear()
            shard.exited = False
            if shard.request_q is not None:
                self._retired_queues.append(shard.request_q)
            shard.request_q = self._ctx.Queue()
            shard.last_heartbeat = time.monotonic()
            process = self._ctx.Process(
                target=worker_main,
                name=f"smat-shard-{shard.id}",
                args=(
                    shard.id,
                    shard.generation,
                    self._worker_spec,
                    shard.request_q,
                    self._reply_q,
                ),
                daemon=True,
            )
            shard.process = process
        process.start()

    def stop(self, drain: bool = True) -> None:
        """Shut the fleet down; with ``drain`` backlogs are served first."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            shards = list(self._shards.values())
            # Close every open dispatch window first: the request queues
            # are FIFO, so buffered work lands ahead of the shutdown
            # message and a draining worker still serves it.
            flushes = [
                (self._shards[key[0]], entries)
                for key, entries in self._batch_buffers.items()
            ]
            self._batch_buffers.clear()
            self._batch_deadlines.clear()
            for shard, entries in flushes:
                self._flush_entries(shard, entries)
        for shard in shards:
            if shard.request_q is not None and not shard.dead:
                try:
                    shard.request_q.put(ShutdownRequest(drain=drain))
                except (ValueError, OSError):  # pragma: no cover
                    pass
        join_deadline = time.monotonic() + (30.0 if drain else 2.0)
        for shard in shards:
            if shard.process is None:
                continue
            shard.process.join(max(0.1, join_deadline - time.monotonic()))
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(2.0)
        # Let the collector absorb final replies/exits before it stops.
        time.sleep(0.05)
        if self._collector is not None:
            self._collector.join(5.0)
        if self._monitor is not None:
            self._monitor.join(5.0)
        if self._flusher is not None:
            self._flusher.join(5.0)
        with self._lock:
            failures = [
                pending
                for shard in shards
                for pending in shard.outstanding.values()
            ]
            for shard in shards:
                shard.outstanding.clear()
        for pending in failures:
            self._fail(pending, ServeError("cluster stopped before reply"))
        self._reply_q.close()
        for arena in self._arenas.values():
            arena.close(unlink=True)

    def __enter__(self) -> "ClusterDispatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # The plan store
    # ------------------------------------------------------------------
    def _alloc(self, shape, dtype) -> SharedArrayRef:
        """A slot from any arena with room, growing by whole segments."""
        with self._lock:
            for arena in self._arenas.values():
                try:
                    return arena.alloc(shape, dtype)
                except SharedMemoryError:
                    continue
            needed = int(np.prod(shape, dtype=np.int64)) * np.dtype(
                dtype
            ).itemsize
            arena = SharedArena(max(self.config.arena_bytes, 2 * needed))
            self._arenas[arena.name] = arena
            return arena.alloc(shape, dtype)

    def _free(self, ref: SharedArrayRef) -> None:
        with self._lock:
            arena = self._arenas.get(ref.segment)
        if arena is not None:
            arena.free(ref)

    def _place(self, array: np.ndarray) -> SharedArrayRef:
        ref = self._alloc(array.shape, array.dtype)
        with self._lock:
            arena = self._arenas[ref.segment]
        view = arena.view(ref)
        np.copyto(view, array)
        return ref

    def _publish(
        self, fp: Fingerprint, matrix: CSRMatrix, shard_id: int
    ) -> PlanHandle:
        """Copy the operand into shared memory once per fingerprint."""
        with self._lock:
            handle = self._published.get(fp)
            if handle is not None:
                # LRU touch: re-insert at the tail.
                del self._published[fp]
                self._published[fp] = handle
                return handle
        with obs.span(
            "cluster.publish",
            fingerprint=str(fp),
            shard=shard_id,
            nnz=int(matrix.nnz),
        ):
            handle = PlanHandle(
                fingerprint=fp,
                ptr=self._place(matrix.ptr),
                indices=self._place(matrix.indices),
                data=self._place(matrix.data),
                shape=(int(matrix.n_rows), int(matrix.n_cols)),
            )
        with self._lock:
            raced = self._published.get(fp)
            if raced is not None:  # pragma: no cover - submit race
                for ref in (handle.ptr, handle.indices, handle.data):
                    self._free(ref)
                return raced
            self._published[fp] = handle
            self._shard_plans[shard_id][fp] = handle
            self.metrics.counter("plans_published").inc()
            self.metrics.gauge("published_plans").set(len(self._published))
            self.metrics.gauge("published_bytes").add(handle.operand_bytes)
        self._maybe_evict()
        return handle

    def _maybe_evict(self) -> None:
        """Ask shards to drop LRU idle structures past the byte budget.

        Eviction is *ack-gated*: the dispatcher only frees the arena slots
        when the owning worker's :class:`InvalidateReply` confirms the
        plan is gone — and because the request queue is FIFO, every
        request already queued for that structure is served before the
        invalidate lands.  Until the ack, the bytes stay accounted.
        """
        budget = self.config.store_bytes
        if budget is None:
            return
        with self._lock:
            total = sum(h.operand_bytes for h in self._published.values())
            victims: List[PlanHandle] = []
            inflight = {
                pending.fingerprint
                for shard in self._shards.values()
                for pending in shard.outstanding.values()
            }
            for fp, handle in list(self._published.items()):
                if total <= budget:
                    break
                if fp in inflight or len(self._published) <= 1:
                    continue
                victims.append(handle)
                del self._published[fp]
                total -= handle.operand_bytes
        for handle in victims:
            self._send_invalidate(handle)

    def _send_invalidate(self, handle: PlanHandle) -> None:
        fp = handle.fingerprint
        shard_id = self._ring.route(str(fp.structure_key))
        with self._lock:
            self._invalidating[fp] = handle
            self._shard_plans[shard_id].pop(fp, None)
            shard = self._shards[shard_id]
            if shard.dead or shard.request_q is None:
                # No worker to ack; reclaim directly.
                self._reclaim(handle)
                return
        message = InvalidateRequest(fingerprint=fp)
        self._charge_payload(message)
        shard.request_q.put(message)

    def _reclaim(self, handle: PlanHandle) -> None:
        with self._lock:
            self._invalidating.pop(handle.fingerprint, None)
        for ref in (handle.ptr, handle.indices, handle.data):
            self._free(ref)
        self.metrics.counter("plans_invalidated").inc()
        self.metrics.gauge("published_bytes").add(-handle.operand_bytes)
        self.metrics.gauge("published_plans").set(len(self._published))

    def invalidate(self, matrix: CSRMatrix) -> bool:
        """Drop the published operand + the owning shard's plan for it."""
        fp = fingerprint(matrix)
        with self._lock:
            handle = self._published.pop(fp, None)
        if handle is None:
            return False
        self._send_invalidate(handle)
        return True

    def push_model(self, model) -> int:
        """Broadcast a retrained ruleset to every live shard.

        The serving loop's close: an :class:`~repro.tuner.OnlineSmat`
        retrained from serve telemetry (dispatcher-side or offline) is
        hot-swapped into each worker's engine without a restart.  The
        model is nested plain dataclasses — no arrays — so the push
        keeps the zero-copy invariant.  Returns the number of shards the
        update was sent to; worker acks land on ``model_push_acks`` (or
        ``model_push_failures``).
        """
        with self._lock:
            if not self._started or self._stopping:
                raise ServeError("cluster is not running (call start())")
            self._model_epoch += 1
            epoch = self._model_epoch
            self._last_pushed_model = model
            targets = [
                shard
                for shard in self._shards.values()
                if not shard.dead and shard.request_q is not None
            ]
        message = ModelUpdate(model=model, epoch=epoch)
        sent = 0
        for shard in targets:
            self._charge_payload(message)
            try:
                shard.request_q.put(message)
            except (OSError, ValueError):  # queue closed under us
                continue
            sent += 1
        self.metrics.counter("model_pushes").inc(sent)
        return sent

    def apply_structure_delta(
        self,
        matrix: CSRMatrix,
        delta: StructureDelta,
        timeout: float = 30.0,
    ) -> ClusterDeltaResult:
        """Mutate a served structure cluster-wide, descriptor-only.

        The dispatcher owns the authoritative CSR, so the edge edits are
        applied here once; the post-delta structure key then decides the
        path.  Same shard → the delta arrays are placed into shared
        memory and a :class:`DeltaShardRequest` asks the owning worker to
        migrate its plan in place (patch / refresh / retune — its engine
        retires the old fingerprint from both cache tiers).  Different
        shard, dead shard, or never-published structure → no migration
        message is sent: the old operand is invalidated and the new
        shard cold-builds on first submit (policy ``"rehome"``).  Either
        way the pre-delta published operand is retired, so no request
        can ever route to a stale plan.
        """
        with self._lock:
            if not self._started or self._stopping:
                raise ServeError("cluster is not running (call start())")
        started = time.perf_counter()
        old_fp = fingerprint(matrix)
        new_csr, _effect = apply_delta(matrix, delta)
        new_fp = fingerprint(new_csr)
        old_shard_id = self._ring.route(str(old_fp.structure_key))
        target_shard_id = self._ring.route(str(new_fp.structure_key))
        self.metrics.counter("deltas_dispatched").inc()
        shard = self._shards[old_shard_id]
        with self._lock:
            old_handle = self._published.get(old_fp)
            migratable = (
                old_handle is not None
                and target_shard_id == old_shard_id
                and not shard.dead
                and shard.request_q is not None
            )

        def _retire_old() -> None:
            with self._lock:
                handle = self._published.pop(old_fp, None)
            if handle is not None:
                self._send_invalidate(handle)

        if not migratable:
            _retire_old()
            self.metrics.counter("delta_rehomes").inc()
            return ClusterDeltaResult(
                matrix=new_csr,
                fingerprint=new_fp,
                old_fingerprint=old_fp,
                policy="rehome",
                shard_id=old_shard_id,
                target_shard_id=target_shard_id,
                seconds=time.perf_counter() - started,
            )

        new_handle = self._publish(new_fp, new_csr, target_shard_id)
        delta_refs = tuple(
            self._place(array)
            for array in (
                delta.insert_rows,
                delta.insert_cols,
                delta.insert_vals,
                delta.delete_rows,
                delta.delete_cols,
            )
        )
        msg_id = next(self._msg_ids)
        waiter: "Future[DeltaShardReply]" = Future()
        with self._lock:
            self._delta_waiters[msg_id] = waiter
        message = DeltaShardRequest(
            msg_id=msg_id,
            old=old_handle,
            new=new_handle,
            insert_rows=delta_refs[0],
            insert_cols=delta_refs[1],
            insert_vals=delta_refs[2],
            delete_rows=delta_refs[3],
            delete_cols=delta_refs[4],
        )
        self._charge_payload(message)
        try:
            shard.request_q.put(message)
            reply = waiter.result(timeout=timeout)
        except BaseException:
            with self._lock:
                self._delta_waiters.pop(msg_id, None)
            self.metrics.counter("delta_failures").inc()
            for ref in delta_refs:
                self._free(ref)
            raise
        for ref in delta_refs:
            self._free(ref)
        _retire_old()
        if not reply.ok:
            self.metrics.counter("delta_failures").inc()
            assert reply.error is not None
            raise _revive_error(reply.error)
        self.metrics.counter("delta_migrations").inc()
        return ClusterDeltaResult(
            matrix=new_csr,
            fingerprint=new_fp,
            old_fingerprint=old_fp,
            policy=reply.policy or "retune",
            shard_id=old_shard_id,
            target_shard_id=target_shard_id,
            seconds=time.perf_counter() - started,
        )

    def shard_assignments(self) -> Dict[int, List[Fingerprint]]:
        """Which structures live on which shard (diagnostics/tests)."""
        with self._lock:
            return {
                shard_id: list(plans.keys())
                for shard_id, plans in self._shard_plans.items()
            }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        deadline: Optional[float] = None,
    ) -> "Future[ClusterResult]":
        """Route one SpMV to its structure's shard; returns a future."""
        with self._lock:
            if not self._started or self._stopping:
                raise ServeError("cluster is not running (call start())")
        x = np.asarray(x)
        if x.ndim != 1 or x.shape[0] != matrix.n_cols:
            raise ValueError(
                f"operand vector has shape {x.shape}; the matrix needs "
                f"a 1-D vector of length {matrix.n_cols}"
            )
        effective_deadline = (
            deadline if deadline is not None else self.config.default_deadline
        )
        fp = fingerprint(matrix)
        shard_id = self._ring.route(str(fp.structure_key))
        shard = self._shards[shard_id]
        self.metrics.counter("requests_submitted").inc()

        future: "Future[ClusterResult]" = Future()
        if shard.dead:
            self._serve_degraded_local(
                future, matrix, x, fp, shard_id, reason="shard_dead"
            )
            return future
        ticket = shard.breaker.acquire()
        if ticket is BuildTicket.DEGRADE:
            self._serve_degraded_local(
                future, matrix, x, fp, shard_id, reason="breaker_open"
            )
            return future
        if ticket is BuildTicket.PROBE:
            self.metrics.counter("shard_breaker_probes").inc()

        with self._lock:
            if len(shard.outstanding) >= self.config.max_outstanding:
                self.metrics.counter("requests_rejected").inc()
                raise BackpressureError(
                    f"shard {shard_id} has {len(shard.outstanding)} "
                    f"requests outstanding (cap "
                    f"{self.config.max_outstanding})"
                )
        handle = self._publish(fp, matrix, shard_id)
        x_ref = self._place(x)
        y_ref = self._alloc((int(matrix.n_rows),), matrix.dtype)
        expires_at = (
            time.monotonic() + effective_deadline
            if effective_deadline is not None
            else None
        )
        msg_id = next(self._msg_ids)
        request = ShardRequest(
            msg_id=msg_id,
            plan=handle,
            x=x_ref,
            y=y_ref,
            expires_at=expires_at,
        )
        pending = _Pending(msg_id, request, future, fp, shard_id, 0)
        tracer = obs.get_tracer()
        if tracer is not None:
            pending.trace_root = tracer.begin(
                "cluster.request",
                parent=None,
                fingerprint=str(fp),
                shard_id=shard_id,
                nnz=int(matrix.nnz),
            )
        batching = (
            self.config.max_batch_rhs > 1 and self.config.batch_window > 0.0
        )
        with self._lock:
            pending.expected_generation = shard.generation
            shard.outstanding[msg_id] = pending
            request_q = shard.request_q
            if batching:
                self._buffer_for_dispatch(shard, fp, pending)
                return future
        self._charge_payload(request)
        try:
            request_q.put(request)
        except BaseException:
            with self._lock:
                shard.outstanding.pop(msg_id, None)
            self._release_slots(pending)
            raise
        return future

    # ------------------------------------------------------------------
    # Dispatch coalescing
    # ------------------------------------------------------------------
    def _buffer_for_dispatch(
        self, shard: _Shard, fp: Fingerprint, pending: _Pending
    ) -> None:
        """Park one built request; flush when full (caller holds the lock).

        The pending is already in ``shard.outstanding``, so crash repair
        treats buffered and in-flight requests identically — it only has
        to drop the buffer entry to avoid a double send.
        """
        key = (shard.id, fp)
        entries = self._batch_buffers.setdefault(key, [])
        entries.append(pending)
        if len(entries) == 1:
            self._batch_deadlines[key] = (
                time.monotonic() + self.config.batch_window
            )
        if len(entries) >= self.config.max_batch_rhs:
            del self._batch_buffers[key]
            self._batch_deadlines.pop(key, None)
            self._flush_entries(shard, entries)

    def _flush_entries(
        self, shard: _Shard, entries: List[_Pending]
    ) -> None:
        """Send one buffer as a single or batched message (lock held).

        Members whose generation no longer matches the shard's (a crash
        happened since buffering) are skipped here — repair already owns
        them via ``shard.outstanding`` and re-dispatches them itself.
        """
        live = [
            pending
            for pending in entries
            if pending.expected_generation == shard.generation
            and pending.msg_id in shard.outstanding
        ]
        if not live or shard.request_q is None:
            return
        if len(live) == 1:
            message: object = live[0].request
        else:
            message = BatchShardRequest(
                requests=tuple(pending.request for pending in live)
            )
            self.metrics.counter("dispatch_batches_total").inc()
            self.metrics.counter("dispatch_requests_batched").inc(len(live))
        self._charge_payload(message)
        try:
            shard.request_q.put(message)
        except BaseException as exc:  # pragma: no cover - queue torn down
            for pending in live:
                shard.outstanding.pop(pending.msg_id, None)
            for pending in live:
                self._fail(pending, ServeError(f"dispatch failed: {exc}"))

    def _flusher_loop(self) -> None:
        """Close dispatch windows: send buffers older than the window."""
        poll = max(0.001, min(self.config.batch_window / 4.0, 0.01))
        while True:
            time.sleep(poll)
            with self._lock:
                if self._stopping:
                    return
                now = time.monotonic()
                due = [
                    key
                    for key, deadline in self._batch_deadlines.items()
                    if deadline <= now
                ]
                for key in due:
                    entries = self._batch_buffers.pop(key, [])
                    self._batch_deadlines.pop(key, None)
                    if entries:
                        self._flush_entries(self._shards[key[0]], entries)

    def spmv(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        deadline: Optional[float] = None,
    ) -> ClusterResult:
        """Synchronous convenience wrapper over :meth:`submit`."""
        return self.submit(matrix, x, deadline=deadline).result()

    def _charge_payload(self, message) -> None:
        """Charge any array bytes riding in ``message`` to the invariant
        counter.  Staying at zero is the zero-copy acceptance gate."""
        payload = ndarray_payload_bytes(message)
        if payload:  # pragma: no cover - the invariant holding means never
            self.metrics.counter("operand_bytes_pickled").inc(payload)

    def _serve_degraded_local(
        self,
        future: "Future[ClusterResult]",
        matrix: CSRMatrix,
        x: np.ndarray,
        fp: Fingerprint,
        shard_id: int,
        reason: str,
    ) -> None:
        """Shard unavailable: answer here with the CSR reference plan."""
        started = time.perf_counter()
        with obs.span("cluster.degrade", shard_id=shard_id, reason=reason):
            y = DegradedPlan(matrix).execute(x)
        elapsed = time.perf_counter() - started
        self.metrics.counter("degraded_local").inc()
        self.metrics.counter("requests_served").inc()
        self.metrics.histogram("dispatch_seconds").observe(elapsed)
        future.set_result(
            ClusterResult(
                y=y,
                fingerprint=fp,
                shard_id=shard_id,
                generation=-1,
                format_name=DegradedPlan.format_name,
                kernel_name=DegradedPlan.KERNEL_NAME,
                cache_hit=False,
                used_fallback=False,
                queued_seconds=0.0,
                plan_seconds=0.0,
                execute_seconds=elapsed,
                dispatch_seconds=elapsed,
                degraded=True,
                degraded_local=True,
            )
        )

    # ------------------------------------------------------------------
    # Reply collection
    # ------------------------------------------------------------------
    def _collector_loop(self) -> None:
        while True:
            try:
                message = self._reply_q.get(timeout=0.1)
            except queue.Empty:
                with self._lock:
                    drained = self._stopping and all(
                        not s.outstanding for s in self._shards.values()
                    )
                    settled = drained and all(
                        s.exited
                        or s.process is None
                        or not s.process.is_alive()
                        for s in self._shards.values()
                    )
                if settled:
                    return
                continue
            except (OSError, ValueError):  # queue closed under us
                return
            try:
                self._handle_reply(message)
            except Exception:  # pragma: no cover - collector must survive
                pass

    def _handle_reply(self, message) -> None:
        if isinstance(message, Heartbeat):
            self._on_heartbeat(message)
        elif isinstance(message, ShardReply):
            self._on_shard_reply(message)
        elif isinstance(message, WarmReply):
            self.metrics.counter("plans_rewarmed").inc(message.warmed)
            if message.failed:
                self.metrics.counter("rewarm_failures").inc(message.failed)
        elif isinstance(message, InvalidateReply):
            with self._lock:
                handle = self._invalidating.get(message.fingerprint)
            if handle is not None:
                self._reclaim(handle)
        elif isinstance(message, ModelUpdateReply):
            if message.ok:
                self.metrics.counter("model_push_acks").inc()
            else:
                self.metrics.counter("model_push_failures").inc()
        elif isinstance(message, DeltaShardReply):
            with self._lock:
                waiter = self._delta_waiters.pop(message.msg_id, None)
            if waiter is not None:
                waiter.set_result(message)
        else:  # WorkerExit
            self._on_worker_exit(message)

    def _on_heartbeat(self, beat: Heartbeat) -> None:
        shard = self._shards.get(beat.shard_id)
        if shard is None:
            return
        with self._lock:
            if beat.generation != shard.generation:
                return  # a dead incarnation's last gasp
            shard.last_heartbeat = time.monotonic()
            shard.last_queue_depth = beat.queue_depth
            if not shard.ready.is_set():
                shard.ready.set()
            if beat.metrics is not None:
                self._worker_metrics[
                    (beat.shard_id, beat.generation)
                ] = beat.metrics
            if beat.cache_stats is not None:
                self._worker_cache_stats[
                    (beat.shard_id, beat.generation)
                ] = beat.cache_stats
        self.metrics.gauge(f"shard{beat.shard_id}_queue_depth").set(
            max(0, beat.queue_depth)
        )

    def _on_worker_exit(self, message) -> None:
        shard = self._shards.get(message.shard_id)
        if shard is None:
            return
        with self._lock:
            if message.generation != shard.generation:
                return
            shard.exited = True
            if message.metrics is not None:
                self._worker_metrics[
                    (message.shard_id, message.generation)
                ] = message.metrics
            if message.cache_stats is not None:
                self._worker_cache_stats[
                    (message.shard_id, message.generation)
                ] = message.cache_stats

    def _on_shard_reply(self, reply: ShardReply) -> None:
        shard = self._shards.get(reply.shard_id)
        if shard is None:
            return
        with self._lock:
            pending = shard.outstanding.get(reply.msg_id)
            if pending is None:
                return  # duplicate after re-dispatch already resolved
            if reply.generation != pending.expected_generation:
                # A dead incarnation managed to reply before we noticed
                # the crash; its replacement owns this request now and
                # will write the shared slots again — dropping this reply
                # (instead of freeing those slots) is what keeps the
                # re-dispatch path corruption-free.
                self.metrics.counter("stale_replies_ignored").inc()
                return
            del shard.outstanding[reply.msg_id]
            shard.last_heartbeat = time.monotonic()
        if reply.ok:
            shard.breaker.record_success() and self.metrics.counter(
                "shard_breaker_recovered"
            ).inc()
            self._resolve(pending, reply)
        else:
            # Request-level failures (deadline, injected faults that
            # exhausted the worker's retries) are final outcomes of a
            # healthy shard — they do not trip the shard breaker.
            shard.breaker.record_success()
            self._fail(pending, _revive_error(reply.error))

    def _resolve(self, pending: _Pending, reply: ShardReply) -> None:
        with self._lock:
            arena = self._arenas.get(pending.request.y.segment)
        y = (
            np.array(arena.view(pending.request.y), copy=True)
            if arena is not None
            else np.zeros(pending.request.y.shape, pending.request.y.dtype)
        )
        self._release_slots(pending)
        meta = reply.meta
        elapsed = time.perf_counter() - pending.submitted_at
        result = ClusterResult(
            y=y,
            fingerprint=pending.fingerprint,
            shard_id=reply.shard_id,
            generation=reply.generation,
            format_name=FormatName(meta.get("format", "csr")),
            kernel_name=str(meta.get("kernel", "")),
            cache_hit=bool(meta.get("cache_hit", False)),
            used_fallback=bool(meta.get("used_fallback", False)),
            queued_seconds=float(meta.get("queued_seconds", 0.0)),
            plan_seconds=float(meta.get("plan_seconds", 0.0)),
            execute_seconds=float(meta.get("execute_seconds", 0.0)),
            dispatch_seconds=elapsed,
            degraded=bool(meta.get("degraded", False)),
            refreshed=bool(meta.get("refreshed", False)),
            retries=int(meta.get("retries", 0)),
            redispatches=pending.redispatches,
        )
        self.metrics.counter("requests_served").inc()
        self.metrics.histogram("dispatch_seconds").observe(elapsed)
        self._end_trace(
            pending,
            shard_id=reply.shard_id,
            generation=reply.generation,
            cache_hit=result.cache_hit,
            redispatches=pending.redispatches,
        )
        try:
            pending.future.set_result(result)
        except Exception:  # pragma: no cover - caller cancelled
            pass

    def _fail(self, pending: _Pending, exc: Exception) -> None:
        self._release_slots(pending)
        self.metrics.counter("requests_failed").inc()
        self._end_trace(pending, error=exc)
        try:
            pending.future.set_exception(exc)
        except Exception:  # pragma: no cover - caller cancelled
            pass

    def _release_slots(self, pending: _Pending) -> None:
        """Free this request's x/y slots (never the published operand)."""
        for ref in (pending.request.x, pending.request.y):
            try:
                self._free(ref)
            except SharedMemoryError:  # pragma: no cover - double release
                pass

    def _end_trace(
        self,
        pending: _Pending,
        error: Optional[BaseException] = None,
        **attrs,
    ) -> None:
        tracer = obs.get_tracer()
        if tracer is None or pending.trace_root is None:
            return
        tracer.end(pending.trace_root, error=error, **attrs)
        pending.trace_root = None

    # ------------------------------------------------------------------
    # Repair: crash detection, respawn, re-warm, re-dispatch
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while True:
            time.sleep(self.config.monitor_interval)
            with self._lock:
                if self._stopping:
                    return
                shards = list(self._shards.values())
            now = time.monotonic()
            for shard in shards:
                if shard.dead or shard.process is None:
                    continue
                alive = shard.process.is_alive()
                # A not-yet-ready incarnation is still paying spawn cost
                # (interpreter + imports before its first heartbeat), so
                # it gets the spawn budget, not the steady-state one.
                allowance = (
                    self.config.heartbeat_timeout
                    if shard.ready.is_set()
                    else self.config.spawn_timeout
                )
                stale = now - shard.last_heartbeat > allowance
                if alive and not stale:
                    continue
                with self._lock:
                    if self._stopping or shard.exited:
                        continue
                if alive and stale:
                    # Hung, not dead: kill it so repair can proceed.
                    self.metrics.counter("workers_hung").inc()
                    shard.process.terminate()
                    shard.process.join(2.0)
                self._repair(shard)

    def _repair(self, shard: _Shard) -> None:
        """Respawn a crashed shard, re-warm its plans, re-send its work."""
        self.metrics.counter("worker_crashes").inc()
        if shard.breaker.record_failure():
            self.metrics.counter("shard_breaker_opened").inc()
        with obs.span(
            "cluster.repair",
            shard_id=shard.id,
            generation=shard.generation,
            outstanding=len(shard.outstanding),
        ):
            # Claim this shard's buffered dispatch windows: the members
            # are in ``shard.outstanding``, so the loops below fail or
            # re-dispatch them; dropping the buffer entry is what stops
            # the flusher from sending them a second time.
            with self._lock:
                for key in [
                    k for k in self._batch_buffers if k[0] == shard.id
                ]:
                    del self._batch_buffers[key]
                    self._batch_deadlines.pop(key, None)
            if shard.respawns >= self.config.max_respawns:
                with self._lock:
                    shard.dead = True
                    failures = list(shard.outstanding.values())
                    shard.outstanding.clear()
                for pending in failures:
                    self._fail(
                        pending,
                        ServeError(
                            f"shard {shard.id} exceeded "
                            f"{self.config.max_respawns} respawns"
                        ),
                    )
                return
            shard.respawns += 1
            self._spawn(shard)
            self.metrics.counter("workers_respawned").inc()
            # Re-warm before re-dispatch: the queue is FIFO, so plans are
            # rebuilt from the structure index before any request runs.
            with self._lock:
                handles = tuple(self._shard_plans[shard.id].values())
                new_generation = shard.generation
                pendings = sorted(
                    shard.outstanding.values(), key=lambda p: p.msg_id
                )
                request_q = shard.request_q
            if handles:
                warm = WarmRequest(handles=handles)
                self._charge_payload(warm)
                request_q.put(warm)
            # A respawned worker starts from the spec's original tuner;
            # replay the latest pushed ruleset so it doesn't serve stale
            # rules until the next broadcast.
            with self._lock:
                last_model = self._last_pushed_model
                epoch = self._model_epoch
            if last_model is not None:
                update = ModelUpdate(model=last_model, epoch=epoch)
                self._charge_payload(update)
                request_q.put(update)
                self.metrics.counter("model_pushes").inc()
            for pending in pendings:
                pending.redispatches += 1
                if pending.redispatches > self.config.max_redispatches:
                    with self._lock:
                        shard.outstanding.pop(pending.msg_id, None)
                    self._fail(
                        pending,
                        ServeError(
                            f"request {pending.msg_id} lost to "
                            f"{pending.redispatches} shard crashes"
                        ),
                    )
                    continue
                with self._lock:
                    pending.expected_generation = new_generation
                self.metrics.counter("redispatches").inc()
                self._charge_payload(pending.request)
                request_q.put(pending.request)

    def kill_worker(self, shard_id: int) -> None:
        """Hard-kill one shard process (chaos tool for tests/benches)."""
        process = self._shards[shard_id].process
        if process is not None and process.is_alive():
            process.kill()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def worker_metrics(self) -> Dict[str, Dict]:
        """All worker registries merged into one snapshot (see
        :func:`repro.serve.metrics.merge_snapshots`)."""
        with self._lock:
            snapshots = list(self._worker_metrics.values())
        return merge_snapshots(snapshots)

    def cache_stats(self) -> Dict[str, float]:
        """Fleet-wide plan-cache stats summed over worker incarnations."""
        with self._lock:
            stats_list = list(self._worker_cache_stats.values())
        totals: Dict[str, float] = {}
        for stats in stats_list:
            for key, value in stats.items():
                if key == "hit_rate":
                    continue
                totals[key] = totals.get(key, 0.0) + float(value)
        lookups = totals.get("hits", 0.0) + totals.get("misses", 0.0)
        totals["hit_rate"] = totals.get("hits", 0.0) / lookups if lookups else 0.0
        return totals

    def scoreboard(self) -> str:
        """Cluster-wide scoreboard: shards, store, merged worker metrics."""
        with self._lock:
            shard_lines = [
                f"  shard {shard.id}: gen {shard.generation}, "
                f"{len(shard.outstanding)} in flight, "
                f"queue depth {max(0, shard.last_queue_depth)}, "
                f"respawns {shard.respawns}"
                + (" [dead]" if shard.dead else "")
                for shard in self._shards.values()
            ]
            published = len(self._published)
            published_bytes = sum(
                h.operand_bytes for h in self._published.values()
            )
            segments = len(self._arenas)
        stats = self.cache_stats()
        lines = [
            f"cluster: {len(self._shards)} shards",
            *shard_lines,
            "plan store:",
            f"  {published} structures published "
            f"({published_bytes} bytes in {segments} segments)",
            f"  fleet hit rate {stats.get('hit_rate', 0.0):.1%} "
            f"({int(stats.get('hits', 0))} hits / "
            f"{int(stats.get('misses', 0))} misses)",
            f"  structure hits {int(stats.get('structure_hits', 0))} (tier 2)",
            "dispatcher:",
            self.metrics.report(),
            "workers (merged):",
            format_snapshot(self.worker_metrics()),
        ]
        return "\n".join(lines)
