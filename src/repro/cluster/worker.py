"""The shard worker: one process, one single-threaded serving engine.

A worker is deliberately boring: it wraps the battle-tested
:class:`~repro.serve.ServingEngine` (plan cache, tier-2 structure
refresh, deadlines, retries, breakers, fault injection — all of it)
behind a message loop.  What makes it a *cluster* worker:

* **zero-copy operands** — requests arrive as
  :class:`~repro.cluster.messages.PlanHandle` descriptors; the worker
  maps the CSR arrays out of shared memory
  (:class:`~repro.cluster.sharedmem.SegmentCache`) and wraps them with
  ``CSRMatrix._from_validated`` — no bytes are copied or unpickled, and
  the arrays were validated once, dispatcher-side, at publish time.
  Results are written straight into the request's shared ``y`` slot;
  the reply message carries timings and plan metadata only.
* **spawn-only start** — the worker entry point refuses to run under a
  ``fork`` start method.  Forking a serving process would duplicate
  locked metrics registries, executor threads and tracer state at
  whatever instant the fork happened; ``spawn`` gives every worker a
  fresh interpreter whose registry provably starts at zero (which is
  what makes the dispatcher's snapshot merge double-count-free).
* **heartbeats** — between requests the worker emits its liveness and a
  *cumulative* metrics snapshot; the dispatcher detects silence (or a
  dead process) and respawns.

``WorkerRuntime`` is process-agnostic — it only needs ``get``/``put``
queues — so the full loop is unit-testable in-process on ``queue.Queue``
without paying a spawn per test.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.messages import (
    BatchShardRequest,
    CrashRequest,
    DeltaShardReply,
    DeltaShardRequest,
    Heartbeat,
    InvalidateReply,
    InvalidateRequest,
    ModelUpdate,
    ModelUpdateReply,
    PlanHandle,
    ShardReply,
    ShardRequest,
    ShutdownRequest,
    WarmReply,
    WarmRequest,
    WorkerExit,
)
from repro.cluster.sharedmem import SegmentCache
from repro.errors import DeadlineExceededError, ServeError
from repro.formats.csr import CSRMatrix
from repro.formats.delta import StructureDelta
from repro.serve.engine import ServeConfig, ServeResult, ServingEngine
from repro.serve.faults import FaultPlan


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to boot, picklable for spawn.

    The tuner rides along directly — a trained :class:`~repro.tuner.SMAT`
    pickles to a few kilobytes (rules and kernel names, never matrices).
    """

    tuner: object
    config: ServeConfig = field(
        default_factory=lambda: ServeConfig(workers=1)
    )
    #: ``FaultPlan.parse`` specs; the seed is offset by shard id so each
    #: shard draws an independent, reproducible fault stream.
    fault_specs: Tuple[str, ...] = ()
    fault_seed: int = 0
    heartbeat_interval: float = 0.25
    #: Test hook: serve this many requests, then die like a crashed
    #: process (``os._exit``).  None = never.
    crash_after: Optional[int] = None


def _result_meta(result: ServeResult) -> dict:
    """The picklable slice of a ServeResult (no ``y`` — that is in shm)."""
    return {
        "format": result.format_name.value,
        "kernel": result.kernel_name,
        "cache_hit": bool(result.cache_hit),
        "used_fallback": bool(result.used_fallback),
        "degraded": bool(result.degraded),
        "refreshed": bool(result.refreshed),
        "retries": int(result.retries),
        "queued_seconds": float(result.queued_seconds),
        "plan_seconds": float(result.plan_seconds),
        "execute_seconds": float(result.execute_seconds),
        "batch_size": int(result.batch_size),
    }


class WorkerRuntime:
    """The worker message loop, decoupled from process plumbing."""

    def __init__(
        self,
        shard_id: int,
        generation: int,
        spec: WorkerSpec,
        request_queue,
        reply_queue,
        exit_fn: Callable[[int], None] = os._exit,
    ) -> None:
        self.shard_id = shard_id
        self.generation = generation
        self.spec = spec
        self.requests = request_queue
        self.replies = reply_queue
        self.exit_fn = exit_fn
        self.segments = SegmentCache()
        self.served = 0
        self._heartbeat_seq = 0
        faults = None
        if spec.fault_specs:
            faults = FaultPlan.parse(
                spec.fault_specs, seed=spec.fault_seed + shard_id
            )
        self.engine = ServingEngine(spec.tuner, spec.config, faults=faults)

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Serve until shutdown.  Never raises out of the loop."""
        self.engine.start()
        self._send_heartbeat()  # the ready signal the dispatcher waits on
        last_beat = time.monotonic()
        try:
            while True:
                timeout = max(
                    0.01,
                    self.spec.heartbeat_interval
                    - (time.monotonic() - last_beat),
                )
                try:
                    message = self.requests.get(timeout=timeout)
                except queue.Empty:
                    self._send_heartbeat()
                    last_beat = time.monotonic()
                    continue
                if isinstance(message, ShutdownRequest):
                    self._shutdown(message.drain)
                    return
                self._dispatch(message)
                # A busy worker must still look alive: heartbeat between
                # messages whenever one is due, not only when idle.
                if (
                    time.monotonic() - last_beat
                    >= self.spec.heartbeat_interval
                ):
                    self._send_heartbeat()
                    last_beat = time.monotonic()
                if (
                    self.spec.crash_after is not None
                    and self.served >= self.spec.crash_after
                ):
                    self.exit_fn(13)  # simulated hard crash
                    return  # only reached with a test exit_fn
        finally:
            self.segments.close()

    def _dispatch(self, message) -> None:
        if isinstance(message, ShardRequest):
            self._serve(message)
        elif isinstance(message, BatchShardRequest):
            self._serve_batch(message)
        elif isinstance(message, DeltaShardRequest):
            self._apply_delta(message)
        elif isinstance(message, WarmRequest):
            self._warm(message)
        elif isinstance(message, InvalidateRequest):
            self._invalidate(message)
        elif isinstance(message, ModelUpdate):
            self._install_model(message)
        elif isinstance(message, CrashRequest):
            self.exit_fn(13)
        else:
            self.replies.put(
                ShardReply(
                    msg_id=getattr(message, "msg_id", -1),
                    shard_id=self.shard_id,
                    generation=self.generation,
                    ok=False,
                    error=(
                        "ServeError",
                        f"unknown message {type(message).__name__}",
                    ),
                )
            )

    # ------------------------------------------------------------------
    def _matrix_for(self, handle: PlanHandle) -> CSRMatrix:
        """Map a published operand zero-copy; validated at publish time."""
        return CSRMatrix._from_validated(
            self.segments.view(handle.ptr),
            self.segments.view(handle.indices),
            self.segments.view(handle.data),
            handle.shape,
        )

    def _serve(self, request: ShardRequest) -> None:
        try:
            if request.expires_at is not None:
                remaining = request.expires_at - time.monotonic()
                if remaining <= 0.0:
                    raise DeadlineExceededError(
                        f"deadline expired in shard {self.shard_id} queue "
                        f"({request.plan.fingerprint})"
                    )
            else:
                remaining = None
            matrix = self._matrix_for(request.plan)
            x = self.segments.view(request.x)
            result = self.engine.spmv(
                matrix,
                x,
                deadline=remaining,
                fingerprint=request.plan.fingerprint,
            )
            # The one result copy: kernel output into the caller's shared
            # response slot.  The reply itself carries no array bytes.
            np.copyto(self.segments.view(request.y), result.y)
            reply = ShardReply(
                msg_id=request.msg_id,
                shard_id=self.shard_id,
                generation=self.generation,
                ok=True,
                meta=_result_meta(result),
            )
        except BaseException as exc:
            reply = ShardReply(
                msg_id=request.msg_id,
                shard_id=self.shard_id,
                generation=self.generation,
                ok=False,
                error=(type(exc).__name__, str(exc)),
            )
        self.served += 1
        self.replies.put(reply)

    def _serve_batch(self, message: BatchShardRequest) -> None:
        """Serve a same-fingerprint burst as one engine batch.

        The members' shared x slots become one atomic ``submit_batch``
        — the single-threaded engine dequeues them together and (when
        its ``max_batch_rhs`` allows) runs one SpMM over the stacked
        block.  Expiries are checked per member before submission and
        every member gets its own reply, so deadline/failure semantics
        match singles exactly; the batch only changes how the kernel
        work is shaped.
        """
        now = time.monotonic()
        live: list = []
        for request in message.requests:
            if request.expires_at is not None:
                remaining = request.expires_at - now
                if remaining <= 0.0:
                    self.served += 1
                    self.replies.put(
                        ShardReply(
                            msg_id=request.msg_id,
                            shard_id=self.shard_id,
                            generation=self.generation,
                            ok=False,
                            error=(
                                "DeadlineExceededError",
                                f"deadline expired in shard "
                                f"{self.shard_id} queue "
                                f"({request.plan.fingerprint})",
                            ),
                        )
                    )
                    continue
            else:
                remaining = None
            live.append((request, remaining))
        if not live:
            return
        head = live[0][0]
        try:
            matrix = self._matrix_for(head.plan)
            futures = self.engine.submit_batch(
                matrix,
                [self.segments.view(request.x) for request, _ in live],
                deadlines=[remaining for _, remaining in live],
                fingerprint=head.plan.fingerprint,
            )
        except BaseException as exc:
            for request, _ in live:
                self.served += 1
                self.replies.put(
                    ShardReply(
                        msg_id=request.msg_id,
                        shard_id=self.shard_id,
                        generation=self.generation,
                        ok=False,
                        error=(type(exc).__name__, str(exc)),
                    )
                )
            return
        for (request, _), future in zip(live, futures):
            try:
                result = future.result()
                np.copyto(self.segments.view(request.y), result.y)
                reply = ShardReply(
                    msg_id=request.msg_id,
                    shard_id=self.shard_id,
                    generation=self.generation,
                    ok=True,
                    meta=_result_meta(result),
                )
            except BaseException as exc:
                reply = ShardReply(
                    msg_id=request.msg_id,
                    shard_id=self.shard_id,
                    generation=self.generation,
                    ok=False,
                    error=(type(exc).__name__, str(exc)),
                )
            self.served += 1
            self.replies.put(reply)

    def _apply_delta(self, message: DeltaShardRequest) -> None:
        """Migrate this shard's plan across a structure delta.

        The delta arrays are mapped out of shared memory and replayed
        through the engine's migration path against the *old* published
        operand; the engine retires the pre-delta fingerprint from both
        cache tiers and patches / refreshes / retunes the plan under the
        post-delta key (which must match the dispatcher-published ``new``
        handle — the digest is content-addressed, so a disagreement means
        a corrupted delta and fails the request rather than caching under
        a wrong key).
        """
        try:
            old_matrix = self._matrix_for(message.old)
            delta = StructureDelta(
                insert_rows=np.array(self.segments.view(message.insert_rows)),
                insert_cols=np.array(self.segments.view(message.insert_cols)),
                insert_vals=np.array(self.segments.view(message.insert_vals)),
                delete_rows=np.array(self.segments.view(message.delete_rows)),
                delete_cols=np.array(self.segments.view(message.delete_cols)),
            )
            outcome = self.engine.apply_structure_delta(old_matrix, delta)
            if outcome.fingerprint != message.new.fingerprint:
                raise ServeError(
                    f"delta digest mismatch: worker computed "
                    f"{outcome.fingerprint}, dispatcher published "
                    f"{message.new.fingerprint}"
                )
            reply = DeltaShardReply(
                msg_id=message.msg_id,
                shard_id=self.shard_id,
                generation=self.generation,
                ok=True,
                policy=outcome.policy,
                old_format=(
                    outcome.old_format.value
                    if outcome.old_format is not None
                    else None
                ),
                new_format=outcome.new_format.value,
                seconds=outcome.seconds,
            )
        except BaseException as exc:
            reply = DeltaShardReply(
                msg_id=message.msg_id,
                shard_id=self.shard_id,
                generation=self.generation,
                ok=False,
                error=(type(exc).__name__, str(exc)),
            )
        self.served += 1
        self.replies.put(reply)

    def _warm(self, message: WarmRequest) -> None:
        """Rebuild plans after a respawn: one probe SpMV per structure.

        The probe operand is all-zeros, so the product is discarded
        work, but the side effect is the point: the engine runs the full
        decision + conversion once and caches the plan, exactly as the
        original cold request did in the previous incarnation.
        """
        warmed = failed = 0
        last_beat = time.monotonic()
        for handle in message.handles:
            try:
                matrix = self._matrix_for(handle)
                probe = np.zeros(matrix.n_cols, dtype=matrix.dtype)
                self.engine.spmv(
                    matrix, probe, fingerprint=handle.fingerprint
                )
                warmed += 1
            except Exception:
                failed += 1
            # A long re-warm (many plans, full builds) must not read as
            # a hung worker.
            if (
                time.monotonic() - last_beat
                >= self.spec.heartbeat_interval
            ):
                self._send_heartbeat()
                last_beat = time.monotonic()
        self.replies.put(
            WarmReply(
                shard_id=self.shard_id,
                generation=self.generation,
                warmed=warmed,
                failed=failed,
            )
        )

    def _install_model(self, message: ModelUpdate) -> None:
        """Hot-swap the engine tuner's ruleset mid-serving.

        An :class:`~repro.tuner.online.OnlineSmat` tuner takes the swap
        through ``install_model`` (epoch bump under its lock, so the
        engine's ``ruleset_swaps`` counter observes it); a plain SMAT
        gets the single-assignment model swap — decisions in flight see
        the old or the new model, never a torn one.
        """
        try:
            tuner = self.engine.tuner
            install = getattr(tuner, "install_model", None)
            if install is not None:
                install(message.model)
            else:
                tuner.model = message.model
            ok, error = True, None
        except Exception as exc:
            ok, error = False, (type(exc).__name__, str(exc))
        self.replies.put(
            ModelUpdateReply(
                shard_id=self.shard_id,
                generation=self.generation,
                epoch=message.epoch,
                ok=ok,
                error=error,
            )
        )

    def _invalidate(self, message: InvalidateRequest) -> None:
        self.engine.cache.invalidate(message.fingerprint)
        for segment in message.segments:
            self.segments.detach(segment)
        self.replies.put(
            InvalidateReply(
                shard_id=self.shard_id,
                generation=self.generation,
                fingerprint=message.fingerprint,
                segments=message.segments,
            )
        )

    # ------------------------------------------------------------------
    def _send_heartbeat(self) -> None:
        self._heartbeat_seq += 1
        self.replies.put(
            Heartbeat(
                shard_id=self.shard_id,
                generation=self.generation,
                seq=self._heartbeat_seq,
                served=self.served,
                queue_depth=self._queue_depth(),
                metrics=self.engine.metrics.snapshot(),
                cache_stats=self.engine.cache.stats(),
            )
        )

    def _queue_depth(self) -> int:
        try:
            return int(self.requests.qsize())
        except (NotImplementedError, OSError):  # pragma: no cover - macOS
            return -1

    def _shutdown(self, drain: bool) -> None:
        """Graceful exit: serve the backlog (with ``drain``), then report."""
        if drain:
            while True:
                try:
                    message = self.requests.get_nowait()
                except queue.Empty:
                    break
                if isinstance(message, ShutdownRequest):
                    continue
                self._dispatch(message)
        self.engine.stop(drain=drain)
        self.replies.put(
            WorkerExit(
                shard_id=self.shard_id,
                generation=self.generation,
                served=self.served,
                metrics=self.engine.metrics.snapshot(),
                cache_stats=self.engine.cache.stats(),
            )
        )


def worker_main(
    shard_id: int,
    generation: int,
    spec: WorkerSpec,
    request_queue,
    reply_queue,
) -> None:
    """Spawn entry point for one shard worker process.

    Refuses to run under ``fork``: a forked child inherits the parent's
    metrics registries, lock states and pool threads mid-flight, which
    breaks both the snapshot-merge contract (registries must start at
    zero) and thread-safety assumptions.  The dispatcher always uses the
    ``spawn`` context; this check catches anyone wiring the entry point
    up by hand.
    """
    method = multiprocessing.get_start_method(allow_none=True)
    if method == "fork":
        raise ServeError(
            "cluster workers must be started with the 'spawn' start "
            "method (fork would duplicate live registries and locks); "
            "use ClusterDispatcher, which enforces this"
        )
    WorkerRuntime(shard_id, generation, spec, request_queue, reply_queue).run()


def train_default_tuner(
    platform_name: str = "intel",
    train_scale: float = 0.05,
    size_scale: float = 0.4,
    seed: int = 2013,
):
    """A deterministic tuner for cluster workers (serve-bench, tests).

    Training is seeded, so every worker given the same arguments — or
    the dispatcher training once and shipping the pickled result — ends
    up with an identical ruleset, and routing decides *where* a plan is
    built, never *what* it decides.
    """
    from repro.collection import generate_collection
    from repro.machine import SimulatedBackend, platform
    from repro.tuner import SMAT
    from repro.types import Precision

    backend = SimulatedBackend(platform(platform_name), Precision("double"))
    return SMAT.train(
        generate_collection(seed=seed, scale=train_scale, size_scale=size_scale),
        backend=backend,
    )
