"""The dispatcher <-> worker wire protocol, and its zero-copy guard.

Every message that crosses a process boundary is defined here, and the
design rule is singular: **no NumPy array ever rides in a message**.
Operand matrices, request vectors and response vectors travel as
:class:`~repro.cluster.sharedmem.SharedArrayRef` descriptors into shared
segments; the queue pickles a few hundred bytes of metadata per request
regardless of matrix size.  :func:`ndarray_payload_bytes` is the
enforcement hook — the dispatcher measures every outbound message with
it (the ``operand_bytes_pickled`` counter the acceptance gate reads),
and the guard test walks message trees directly.

Requests and replies correlate by ``msg_id``; a reply also names the
worker *generation* that produced it, so replies from a worker that
crashed and was respawned mid-flight cannot be attributed to the wrong
incarnation's outstanding set.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.sharedmem import SharedArrayRef
from repro.serve.fingerprint import Fingerprint


@dataclass(frozen=True)
class PlanHandle:
    """A published CSR operand: three shared arrays plus identity.

    ``fingerprint`` carries the dispatcher-computed digest so workers
    skip re-hashing the arrays they just mapped.
    """

    fingerprint: Fingerprint
    ptr: SharedArrayRef
    indices: SharedArrayRef
    data: SharedArrayRef
    shape: Tuple[int, int]

    @property
    def operand_bytes(self) -> int:
        return self.ptr.nbytes + self.indices.nbytes + self.data.nbytes


@dataclass(frozen=True)
class ShardRequest:
    """One SpMV to execute: operand by reference, vectors by reference."""

    msg_id: int
    plan: PlanHandle
    x: SharedArrayRef
    y: SharedArrayRef
    #: Absolute monotonic expiry (CLOCK_MONOTONIC is machine-wide on
    #: Linux, so dispatcher and worker read the same clock); None = none.
    expires_at: Optional[float] = None


@dataclass(frozen=True)
class BatchShardRequest:
    """A same-fingerprint burst dispatched as one message.

    Every member is a complete :class:`ShardRequest` (own msg_id, own
    x/y slots, own expiry), so redispatch-after-crash and slot release
    work per member exactly as for singles; the batching only tells the
    worker "these arrived together — stack them into one SpMM if you
    can".  The worker replies per member.  Still descriptor-only: the
    dense RHS block is assembled worker-side from the shared x slots.
    """

    requests: Tuple[ShardRequest, ...]

    @property
    def fingerprint(self) -> Fingerprint:
        return self.requests[0].plan.fingerprint


@dataclass(frozen=True)
class WarmRequest:
    """Respawn re-warm: rebuild plans for these structures, no request."""

    handles: Tuple[PlanHandle, ...]


@dataclass(frozen=True)
class InvalidateRequest:
    """Drop the plan (and any segment mapping) for one fingerprint."""

    fingerprint: Fingerprint
    #: Segments the worker should unmap once the plan is dropped.
    segments: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DeltaShardRequest:
    """Migrate a shard's plan across a structure delta, descriptor-only.

    ``old`` and ``new`` are the published pre- and post-delta operands
    (the dispatcher owns the authoritative CSR, so it applies the edge
    edits once, publishes the result, and ships *descriptors*); the five
    delta arrays ride as :class:`SharedArrayRef` like every other array
    in the protocol, so a million-edge delta still pickles to a few
    hundred bytes.  The worker replays the delta through its engine's
    :meth:`~repro.serve.ServingEngine.apply_structure_delta`, which
    retires the old fingerprint from both cache tiers and migrates the
    resident plan by the patch / refresh / retune policy.
    """

    msg_id: int
    old: PlanHandle
    new: PlanHandle
    insert_rows: SharedArrayRef
    insert_cols: SharedArrayRef
    insert_vals: SharedArrayRef
    delete_rows: SharedArrayRef
    delete_cols: SharedArrayRef


@dataclass(frozen=True)
class DeltaShardReply:
    """How the worker migrated its plan (policy + timings, no arrays)."""

    msg_id: int
    shard_id: int
    generation: int
    ok: bool
    error: Optional[Tuple[str, str]] = None
    #: "patch" | "refresh" | "retune" when ok.
    policy: Optional[str] = None
    old_format: Optional[str] = None
    new_format: Optional[str] = None
    seconds: float = 0.0


@dataclass(frozen=True)
class ShutdownRequest:
    """Stop the worker; with ``drain`` it serves its backlog first."""

    drain: bool = True


@dataclass(frozen=True)
class ModelUpdate:
    """Hot-swap the worker engine's tuner ruleset without a restart.

    Carries the retrained :class:`~repro.learning.model.LearningModel`
    itself — nested plain dataclasses of rules and thresholds with no
    NumPy arrays, so pickling it keeps the zero-copy operand invariant
    (``ndarray_payload_bytes`` stays 0).  ``epoch`` is the dispatcher's
    monotonic push counter, echoed in the reply so acks can be matched
    to pushes.
    """

    model: object
    epoch: int


@dataclass(frozen=True)
class ModelUpdateReply:
    """The worker swapped (or failed to swap) its ruleset."""

    shard_id: int
    generation: int
    epoch: int
    ok: bool
    error: Optional[Tuple[str, str]] = None


@dataclass(frozen=True)
class CrashRequest:
    """Test-only: die immediately and uncleanly (``os._exit``)."""


@dataclass(frozen=True)
class ShardReply:
    """Outcome of one :class:`ShardRequest`."""

    msg_id: int
    shard_id: int
    generation: int
    ok: bool
    #: ``(exception_class_name, message)`` when not ok.
    error: Optional[Tuple[str, str]] = None
    #: Picklable slice of the worker-side ServeResult.
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class WarmReply:
    """How many plans a re-warm rebuilt (and how many failed)."""

    shard_id: int
    generation: int
    warmed: int
    failed: int


@dataclass(frozen=True)
class InvalidateReply:
    """The worker dropped the plan; its segment slots may be reused."""

    shard_id: int
    generation: int
    fingerprint: Fingerprint
    segments: Tuple[str, ...]


@dataclass(frozen=True)
class Heartbeat:
    """Periodic worker liveness + its cumulative metrics snapshot.

    ``metrics`` is the worker registry's *cumulative* snapshot (never a
    delta), so the dispatcher aggregates by keeping the latest snapshot
    per (shard, generation) — replays and repeats cannot double count.
    """

    shard_id: int
    generation: int
    seq: int
    served: int
    queue_depth: int
    metrics: Optional[Dict[str, Dict]] = None
    cache_stats: Optional[Dict[str, float]] = None


@dataclass(frozen=True)
class WorkerExit:
    """Clean shutdown acknowledgement with the final metrics snapshot."""

    shard_id: int
    generation: int
    served: int
    metrics: Optional[Dict[str, Dict]] = None
    cache_stats: Optional[Dict[str, float]] = None


def ndarray_payload_bytes(message: object) -> int:
    """Total bytes of NumPy array data reachable from ``message``.

    Walks dataclasses, dicts, lists, tuples and sets.  The dispatcher
    charges this against the ``operand_bytes_pickled`` counter for every
    message it enqueues; the zero-copy invariant is that the counter
    stays at zero over any workload.
    """
    total = 0
    stack = [message]
    seen = set()
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            total += int(obj.nbytes)
        elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            stack.extend(
                getattr(obj, f.name) for f in dataclasses.fields(obj)
            )
        elif isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
    return total
