"""Seeded random-number helpers.

Every stochastic component (matrix generators, training-set sampling) takes
either a seed or a ``numpy.random.Generator`` so experiments are exactly
reproducible run-to-run — a prerequisite for regenerating the paper's tables.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a NumPy ``Generator`` from a seed, an existing generator or None.

    Passing an existing generator returns it unchanged so that call chains
    share one stream instead of restarting from the same seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, salt: int) -> np.random.Generator:
    """Derive an independent child stream from ``rng``.

    Used by the collection builder to give each generated matrix its own
    stream: inserting a new generator into the middle of the pipeline then
    does not shift every later matrix.
    """
    child_seed: Optional[int] = int(rng.integers(0, 2**63 - 1)) ^ (salt * 0x9E3779B9)
    return np.random.default_rng(child_seed & (2**63 - 1))
