"""Statistics helpers shared by feature extraction and the Figure 6 benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class IntervalHistogram:
    """A histogram over explicit, possibly open-ended intervals.

    The Figure 6 plots bucket matrices into hand-picked parameter intervals
    (e.g. Ndiags in [0, 10), [10, 100), ...); this mirrors that exactly
    rather than using uniform bins.
    """

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]

    @property
    def labels(self) -> List[str]:
        """Human-readable interval labels, last one open-ended."""
        result = []
        for i in range(len(self.counts)):
            lo = self.edges[i]
            if i + 1 < len(self.edges):
                result.append(f"[{_fmt(lo)}, {_fmt(self.edges[i + 1])})")
            else:
                result.append(f">={_fmt(lo)}")
        return result

    @property
    def fractions(self) -> List[float]:
        """Counts normalised to fractions of the total (0 if empty)."""
        total = sum(self.counts)
        if total == 0:
            return [0.0] * len(self.counts)
        return [c / total for c in self.counts]


def _fmt(x: float) -> str:
    if x == int(x):
        return str(int(x))
    return f"{x:g}"


def interval_histogram(
    values: Sequence[float], edges: Sequence[float]
) -> IntervalHistogram:
    """Bucket ``values`` into ``len(edges)`` intervals.

    Interval ``i`` covers ``[edges[i], edges[i+1])``; the final interval is
    unbounded above.  Values below ``edges[0]`` are clamped into the first
    interval (this only happens for degenerate inputs such as R < 0).
    """
    if not edges:
        raise ValueError("edges must be non-empty")
    counts = [0] * len(edges)
    for value in values:
        idx = 0
        for i, edge in enumerate(edges):
            if value >= edge:
                idx = i
            else:
                break
        counts[idx] += 1
    return IntervalHistogram(edges=tuple(edges), counts=tuple(counts))


def gini_like_variance(row_degrees: np.ndarray, average: float) -> float:
    """The paper's var_RD: mean squared deviation of row degrees.

    ``var_RD = sum(|degree - aver_RD|^2) / M`` (Table 2).  This is the
    population variance of the row-degree distribution.
    """
    if row_degrees.size == 0:
        return 0.0
    deviations = row_degrees.astype(np.float64) - float(average)
    return float(np.mean(deviations * deviations))
