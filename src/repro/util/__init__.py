"""Small shared utilities: validation, timing, RNG and statistics helpers."""

from repro.util.rng import make_rng
from repro.util.timing import Timer, median_time
from repro.util.validation import (
    check_1d,
    check_index_range,
    check_nonnegative,
    check_positive,
    check_sorted_within_rows,
)

__all__ = [
    "Timer",
    "check_1d",
    "check_index_range",
    "check_nonnegative",
    "check_positive",
    "check_sorted_within_rows",
    "make_rng",
    "median_time",
]
