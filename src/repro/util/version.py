"""Single source of truth for the package version.

The authoritative number lives in ``pyproject.toml``.  An installed
package reads it back through ``importlib.metadata`` (which is literally
the pyproject value at build time); a source checkout (``PYTHONPATH=src``)
parses pyproject directly.  Either way there is no second hand-maintained
constant to drift.
"""

from __future__ import annotations

import re
from pathlib import Path

_FALLBACK = "0.0.0+unknown"


def package_version() -> str:
    """The installed (or source-tree) version of this package."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        pass
    # Source checkout: src/repro/util/version.py -> repo root.
    pyproject = Path(__file__).resolve().parents[3] / "pyproject.toml"
    try:
        text = pyproject.read_text()
    except OSError:
        return _FALLBACK
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    return match.group(1) if match else _FALLBACK
