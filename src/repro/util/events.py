"""Process-wide event meters for expensive library operations.

The serving layer's amortization claim — "on a plan-cache hit no feature
extraction and no format conversion happens" (Table 3's overhead column,
amortized) — must be *observable*, not assumed.  The hot modules therefore
tick a named :class:`EventCounter` whenever they do the expensive thing;
tests and the serving metrics read the meters before and after a request
to prove the cached path really skipped the work.

Meters are monotonic and thread-safe.  They count events, not cost: use
the tuner's overhead accounting for cost.
"""

from __future__ import annotations

import threading


class EventCounter:
    """A named, monotonically increasing, thread-safe event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0

    def increment(self, n: int = 1) -> None:
        with self._lock:
            self._count += n

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def delta_since(self, baseline: int) -> int:
        """Events since a previously captured ``count``."""
        return self.count - baseline

    def __repr__(self) -> str:
        return f"EventCounter({self.name!r}, count={self.count})"
