"""Argument validation helpers used by format constructors and kernels.

These are deliberately strict: the paper's runtime component trusts the
feature extractor and kernels completely, so structural invariants must be
enforced at construction time (once), not inside the hot SpMV loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FormatError


def check_positive(name: str, value: int) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    ivalue = int(value)
    if ivalue <= 0:
        raise FormatError(f"{name} must be positive, got {value!r}")
    return ivalue


def check_nonnegative(name: str, value: int) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    ivalue = int(value)
    if ivalue < 0:
        raise FormatError(f"{name} must be non-negative, got {value!r}")
    return ivalue


def check_1d(name: str, array: np.ndarray) -> np.ndarray:
    """Validate that ``array`` is one-dimensional."""
    if array.ndim != 1:
        raise FormatError(f"{name} must be 1-D, got shape {array.shape}")
    return array


def check_index_range(name: str, indices: np.ndarray, upper: int) -> None:
    """Validate that every index lies in ``[0, upper)``.

    Empty arrays are always valid.
    """
    if indices.size == 0:
        return
    lo = int(indices.min())
    hi = int(indices.max())
    if lo < 0 or hi >= upper:
        raise FormatError(
            f"{name} out of range: values span [{lo}, {hi}] "
            f"but must lie in [0, {upper})"
        )


def check_sorted_within_rows(ptr: np.ndarray, indices: np.ndarray) -> bool:
    """Return True when column indices are strictly increasing inside each row.

    Sortedness is not required for correctness of the reference kernels but
    the optimized CSR kernels and the CSR->DIA/ELL converters assume it; the
    CSR constructor uses this check to decide whether a canonicalising sort
    is needed.  Fully vectorized: an adjacent pair may only be
    non-increasing at a row boundary.
    """
    if indices.shape[0] < 2:
        return True
    degrees = np.diff(ptr)
    row_of = np.repeat(np.arange(degrees.shape[0]), degrees)
    non_increasing = indices[1:] <= indices[:-1]
    same_row = row_of[1:] == row_of[:-1]
    return not bool(np.any(non_increasing & same_row))


def check_same_length(names: Sequence[str], arrays: Sequence[np.ndarray]) -> None:
    """Validate that all arrays share one length."""
    lengths = {array.shape[0] for array in arrays}
    if len(lengths) > 1:
        described = ", ".join(
            f"{name}={array.shape[0]}" for name, array in zip(names, arrays)
        )
        raise FormatError(f"arrays must have equal length: {described}")
