"""Monotonic timing helpers for the execute-and-measure path.

The paper's runtime falls back to actually running candidate SpMV kernels and
measuring them (Figure 7).  Measurement noise would make the fallback decision
(and Table 3's overhead accounting) unstable, so we time several repetitions
and report the median.

All timers read ``time.perf_counter_ns`` — the integer monotonic clock.
Float ``perf_counter()`` loses resolution as the process ages (the float
mantissa is spent on the uptime, not the interval), and wall-clock APIs
(``time.time``) can step backwards under NTP; neither belongs in a timer.
The public API still reports *seconds* — only the internal arithmetic is
integer nanoseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List


@dataclass
class Timer:
    """A context-manager stopwatch accumulating elapsed seconds.

    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(100))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed_ns: int = 0
    _start_ns: int = field(default=0, repr=False)

    @property
    def elapsed(self) -> float:
        """Accumulated seconds (derived from the integer nanosecond count)."""
        return self.elapsed_ns / 1e9

    def __enter__(self) -> "Timer":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_ns += time.perf_counter_ns() - self._start_ns


def median_time(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> float:
    """Return the median wall-clock seconds of ``repeats`` calls to ``fn``.

    ``warmup`` un-timed calls run first so one-time costs (lazy allocations,
    cache warming) do not pollute the measurement — the same discipline the
    paper applies when benchmarking kernels.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples: List[int] = []
    for _ in range(repeats):
        start_ns = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - start_ns)
    samples.sort()
    mid = len(samples) // 2
    if len(samples) % 2:
        return samples[mid] / 1e9
    return 0.5 * (samples[mid - 1] + samples[mid]) / 1e9
