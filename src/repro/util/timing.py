"""Wall-clock timing helpers for the execute-and-measure path.

The paper's runtime falls back to actually running candidate SpMV kernels and
measuring them (Figure 7).  Measurement noise would make the fallback decision
(and Table 3's overhead accounting) unstable, so we time several repetitions
and report the median.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List


@dataclass
class Timer:
    """A context-manager stopwatch accumulating elapsed seconds.

    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(100))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed += time.perf_counter() - self._start


def median_time(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> float:
    """Return the median wall-clock seconds of ``repeats`` calls to ``fn``.

    ``warmup`` un-timed calls run first so one-time costs (lazy allocations,
    cache warming) do not pollute the measurement — the same discipline the
    paper applies when benchmarking kernels.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    mid = len(samples) // 2
    if len(samples) % 2:
        return samples[mid]
    return 0.5 * (samples[mid - 1] + samples[mid])
