"""Perf-regression benchmark: cold-path conversions, features, kernels.

``repro bench-perf`` (and the ``benchmarks/bench_perf_regression.py``
wrapper) time every cold-path operation the auto-tuner performs on a
plan-cache miss — format conversion, Table 2 feature extraction, the full
plan build — plus the per-format SpMV kernels, on a fixed synthetic suite.
Each vectorized operation is timed against its retained Python-loop
reference (:mod:`repro.formats.reference`, the ``*_basic`` kernels), and
the results land in ``BENCH_perf.json`` with the schema::

    op -> {median_s, loop_median_s, speedup_vs_python_loop}

so every subsequent PR has a perf trajectory to append to, and CI can
assert the vectorized cold path never regresses back to loop speed
(``--assert-speedup``).

Suites: ``smoke`` (sub-second, for tests), ``quick`` (the medium suite CI
runs), ``full`` (adds a large tier and the >=2M-nnz THREAD-kernel case —
skipped, not failed, on hosts with fewer than 4 cores).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.collection import banded, generate_collection, graphs
from repro.features.extract import (
    extract_powerlaw_feature,
    extract_structure_features,
)
from repro.features.incremental import DeltaFeatures
from repro.formats import reference
from repro.formats.delta import (
    DeltaEffect,
    StructureDelta,
    apply_delta,
    patch_operand,
)
from repro.formats.convert import (
    csr_to_bcsr,
    csr_to_dia,
    csr_to_ell,
    csr_to_hyb,
    csr_to_sky,
    sky_to_csr,
)
from repro.formats.csr import CSRMatrix
from repro.kernels.base import find_kernel
from repro.kernels.parallel import csr_spmv_thread, default_workers
from repro.kernels.spmm import csr_spmm, dia_spmm, ell_spmm
from repro.kernels.strategies import Strategy, strategy_set
from repro.machine import SimulatedBackend
from repro.machine import platform as machine_platform
from repro.tuner.runtime import _model_walk, cascade_select, full_select
from repro.tuner.smat import SMAT
from repro.types import INDEX_DTYPE, FormatName
from repro.util.timing import median_time

#: Minimum workers (and host cores) for the THREAD-kernel comparison; the
#: acceptance criterion is skip-not-fail below this.
THREAD_MIN_WORKERS = 4

#: Non-zeros of the THREAD-kernel matrix (the ">=2M nnz" tier).
THREAD_ROWS = 300_000
THREAD_DIAGS = 7

#: (n, n_diags) of the banded conversion/kernel matrix per suite, plus the
#: power-law node count for the feature-extraction case.
SUITE_SIZES = {
    "smoke": {"banded": (2_000, 5), "powerlaw": 1_500},
    "quick": {"banded": (25_000, 9), "powerlaw": 15_000},
    "full": {"banded": (25_000, 9), "powerlaw": 15_000},
}

#: The ops the acceptance gate checks: the two conversions whose loop
#: references blow up (PAPER §7.3's worst offenders — ELL/DIA are the
#: padded formats), the skyline merge-back (sort-free since the per-row
#: two-stream merge replaced the triplet lexsort), the serving layer's
#: value-refresh fast path, which must stay well ahead of a full retune
#: for the tier-2 plan cache to pay for itself, the structure-churn
#: delta path (incremental features + in-place operand patch vs a cold
#: retune, which additionally must be bitwise-equal and re-decide the
#: same format — see ``mismatches``/``format_regressions`` in
#: :func:`check_speedups`), and the decision cascade's selection
#: overhead vs an always-full feature extraction (which additionally
#: must choose the same formats — see ``quality_regressions``).
GATED_OPS = (
    "convert/csr_to_ell",
    "convert/csr_to_dia",
    "convert/sky_to_csr",
    "plan/value_refresh",
    "plan/delta_update",
    "tune/cascade_overhead",
)

#: Each gated op records its speedup under one of these keys; the gate
#: accepts whichever is present.
SPEEDUP_KEYS = (
    "speedup_vs_python_loop",
    "speedup_vs_retune",
    "speedup_vs_full_extraction",
)

#: (n, n_diags) of the structure-delta benchmark matrix per suite.  The
#: shared smoke banded matrix is small enough that fixed per-call NumPy
#: overhead, not asymptotic work, dominates the O(delta) patch side —
#: the delta case gets its own floor size so the smoke gate measures
#: the algorithm rather than interpreter constants.  Quick/full reuse
#: the shared matrix.
DELTA_SIZES = {
    "smoke": (6_000, 5),
    "quick": (25_000, 9),
    "full": (25_000, 9),
}

#: The decision-cascade benchmark corpus per suite: ``("band", n,
#: n_diags)`` builds a *contiguous* dense band (``spread`` pinned so the
#: occupied span equals max_RD — the shape the stage-0 interval walk
#: resolves without any census), ``("powerlaw", n, _)`` a power-law
#: graph whose wide diagonal span forces honest escalation to the full
#: extraction.  The model is trained once at a fixed seed so the rule
#: attributes the walk exercises are deterministic.
CASCADE_CORPUS = {
    "smoke": (("band", 6_000, 65), ("band", 4_000, 21), ("powerlaw", 1_500, 0)),
    "quick": (
        ("band", 20_000, 65),
        ("band", 15_000, 21),
        ("band", 30_000, 9),
        ("powerlaw", 10_000, 0),
    ),
}
CASCADE_CORPUS["full"] = CASCADE_CORPUS["quick"]

#: Collection scale the cascade benchmark's throwaway model trains at:
#: big enough for the Figure 7 rule groups to form, small enough to keep
#: even the smoke suite fast.
CASCADE_TRAIN_SCALE = 0.02
CASCADE_TRAIN_SEED = 2013

#: RHS block widths timed by the SpMM section.
SPMM_BATCH_SIZES = (4, 16, 64)

#: The structured corpus families the ``codegen`` kernel backend is
#: benchmarked on: generated (structure-folded) kernels vs the generic
#: vectorized registry kernels, on the same converted matrix.  The gate
#: demands at least :data:`CODEGEN_MIN_FAMILIES` of them clear
#: :data:`CODEGEN_SPEEDUP_FLOOR` — DIA's literal-bound slice AXPYs and
#: BCSR's unrolled block shape win big, HYB's fused split loop wins
#: modestly, while BDIA's constant-folded unroll hovers near parity and
#: is recorded but not counted on.  Any numeric mismatch between the
#: generated and generic kernels fails the gate outright, on every suite.
CODEGEN_OPS = (
    "codegen/dia_banded",
    "codegen/bdia_banded",
    "codegen/bcsr_blocked",
    "codegen/hyb_powerlaw",
)
CODEGEN_SPEEDUP_FLOOR = 1.3
CODEGEN_MIN_FAMILIES = 3

#: Each codegen op interleaves this many (generated, generic) timing
#: trials and keeps each side's best median — see the loop in
#: :func:`run_suite` for why a single median is too noisy to gate on.
CODEGEN_TIMING_TRIALS = 5

#: The codegen speedup floor only applies at these suite scales; the
#: smoke suite's sub-millisecond matrices sit below the scale where a
#: specialized kernel can amortize its dispatch, so smoke runs check
#: correctness (zero mismatches) but not the floor.
CODEGEN_GATED_SUITES = ("quick", "full")

#: Fixed floors for the batched fast path, checked regardless of the
#: ``--assert-speedup`` value: SpMM ops measure against *sequential
#: vectorized SpMV* (not a Python loop), so the generic floor does not
#: apply — at small batch widths the stacking overhead can even lose to
#: the sequential sweep, which is precisely why serving only batches at
#: high fan-in.  The one hard promise is that CSR at batch 64 amortises
#: the operand traffic at least 3x.
SPMM_GATES = {"spmm/csr_b64": 3.0}


def _time(fn: Callable[[], object], repeats: int, warmup: int = 1) -> float:
    return median_time(fn, repeats=max(1, repeats), warmup=warmup)


def _churn_delta(
    matrix: CSRMatrix, rng: np.random.Generator, edits: int
) -> StructureDelta:
    """A degree-preserving edit batch for the delta-update benchmark.

    Each chosen row drops one stored entry and gains one just outside
    its occupied span (bandwidth drift — the shape of mesh-refinement
    churn), so row degrees — hence the ELL width — are unchanged and
    :func:`patch_operand` takes the in-place path rather than the
    rebuild fallback.  ``edits`` counts total coordinates touched
    (one delete plus one insert per row).
    """
    pairs = min(max(1, edits // 2), matrix.n_rows)
    rows = rng.choice(matrix.n_rows, size=pairs, replace=False)
    del_rows: List[int] = []
    del_cols: List[int] = []
    ins_rows: List[int] = []
    ins_cols: List[int] = []
    for row in rows.tolist():
        start, end = int(matrix.ptr[row]), int(matrix.ptr[row + 1])
        if end <= start:
            continue
        lo = int(matrix.indices[start])
        hi = int(matrix.indices[end - 1])
        if hi + 1 < matrix.n_cols:
            free = hi + 1
        elif lo > 0:
            free = lo - 1
        else:
            continue
        del_rows.append(row)
        del_cols.append(lo)
        ins_rows.append(row)
        ins_cols.append(free)
    return StructureDelta(
        insert_rows=np.asarray(ins_rows, dtype=INDEX_DTYPE),
        insert_cols=np.asarray(ins_cols, dtype=INDEX_DTYPE),
        insert_vals=rng.standard_normal(len(ins_rows)),
        delete_rows=np.asarray(del_rows, dtype=INDEX_DTYPE),
        delete_cols=np.asarray(del_cols, dtype=INDEX_DTYPE),
    )


def run_suite(
    suite: str = "full",
    repeats: int = 3,
    loop_repeats: int = 1,
    workers: Optional[int] = None,
    seed: int = 2013,
    kernel_backend: str = "codegen",
) -> Dict[str, object]:
    """Run one benchmark suite; returns the JSON-serializable report."""
    if suite not in SUITE_SIZES:
        raise ValueError(
            f"unknown suite {suite!r}; pick one of {sorted(SUITE_SIZES)}"
        )
    sizes = SUITE_SIZES[suite]
    n, n_diags = sizes["banded"]
    band = banded.banded_matrix(n, n_diags, seed=seed)
    power = graphs.power_law_graph(sizes["powerlaw"], exponent=2.2, seed=seed)
    x = np.ones(band.n_cols, dtype=band.dtype)

    ops: Dict[str, Dict[str, object]] = {}

    def record(
        name: str,
        vec: Callable[[], object],
        loop: Optional[Callable[[], object]] = None,
        **extra: object,
    ) -> None:
        entry: Dict[str, object] = {
            "median_s": _time(vec, repeats),
        }
        if loop is not None:
            loop_s = _time(loop, loop_repeats, warmup=0)
            entry["loop_median_s"] = loop_s
            entry["speedup_vs_python_loop"] = (
                loop_s / entry["median_s"] if entry["median_s"] > 0 else 0.0
            )
        entry.update(extra)
        ops[name] = entry

    # -- conversions (the cold path's dominant cost) --------------------
    record(
        "convert/csr_to_ell",
        lambda: csr_to_ell(band, fill_budget=None),
        lambda: reference.csr_to_ell_loop(band, fill_budget=None),
    )
    record(
        "convert/csr_to_dia",
        lambda: csr_to_dia(band, fill_budget=None),
        lambda: reference.csr_to_dia_loop(band, fill_budget=None),
    )
    record(
        "convert/csr_to_bcsr",
        lambda: csr_to_bcsr(band, fill_budget=None),
        lambda: reference.csr_to_bcsr_loop(band, fill_budget=None),
    )
    record(
        "convert/csr_to_sky",
        lambda: csr_to_sky(band, fill_budget=None),
        lambda: reference.csr_to_sky_loop(band, fill_budget=None),
    )
    sky, _ = csr_to_sky(band, fill_budget=None)
    record(
        "convert/sky_to_csr",
        lambda: sky_to_csr(sky),
        lambda: reference.sky_to_csr_loop(sky),
    )
    record(
        "convert/csr_to_hyb",
        lambda: csr_to_hyb(power),
        lambda: reference.csr_to_hyb_loop(power),
    )

    # -- Table 2 feature pass -------------------------------------------
    record(
        "features/structure",
        lambda: extract_structure_features(power),
        lambda: reference.extract_structure_features_loop(power),
    )

    # -- full plan build: extraction + conversion (a serve cache miss) --
    record(
        "plan/build",
        lambda: (
            extract_structure_features(band),
            csr_to_dia(band, fill_budget=None),
        ),
        lambda: (
            reference.extract_structure_features_loop(band),
            reference.csr_to_dia_loop(band, fill_budget=None),
        ),
    )

    # -- value refresh: tier-2 cache fast path vs a full retune ---------
    # Same structure, fresh values: the serving engine's value-churn case.
    # The retune side is what a tier-1 miss without the structure index
    # pays — feature extraction plus the conversion all over again.
    dia_donor, _ = csr_to_dia(band, fill_budget=None)
    churned = CSRMatrix(
        band.ptr, band.indices, band.data * 1.25, band.shape
    )
    dia_donor.refresh_values(churned)  # prime the cached scatter plan
    refresh_s = _time(lambda: dia_donor.refresh_values(churned), repeats)
    retune_s = _time(
        lambda: (
            extract_structure_features(churned),
            csr_to_dia(churned, fill_budget=None),
        ),
        repeats,
    )
    ops["plan/value_refresh"] = {
        "median_s": refresh_s,
        "retune_median_s": retune_s,
        "speedup_vs_retune": (
            retune_s / refresh_s if refresh_s > 0 else 0.0
        ),
    }

    # -- decision cascade: stage-0 interval walk vs full extraction -----
    # Selection only (no conversion, no measurement): the cascade's
    # cheap-feature walk against the same model walked over eagerly
    # extracted features.  The gate also demands *identical* format
    # choices — the interval walk is only allowed to be fast because it
    # escalates whenever the bounds cannot prove the full walk's answer.
    smat = SMAT.train(
        generate_collection(
            seed=CASCADE_TRAIN_SEED,
            scale=CASCADE_TRAIN_SCALE,
            size_scale=0.2,
        ),
        backend=SimulatedBackend(machine_platform("intel")),
    )
    corpus = []
    for kind, size, diags in CASCADE_CORPUS[suite]:
        if kind == "band":
            corpus.append(
                banded.banded_matrix(
                    size, diags, seed=seed, spread=(diags - 1) // 2
                )
            )
        else:
            corpus.append(
                graphs.power_law_graph(size, exponent=2.2, seed=seed)
            )
    selections = [
        cascade_select(mx, smat.model, smat.config) for mx in corpus
    ]
    baseline = [full_select(mx, smat.model) for mx in corpus]
    cascade_s = _time(
        lambda: [
            cascade_select(mx, smat.model, smat.config) for mx in corpus
        ],
        repeats,
    )
    full_s = _time(
        lambda: [full_select(mx, smat.model) for mx in corpus], repeats
    )
    ops["tune/cascade_overhead"] = {
        "median_s": cascade_s,
        "full_median_s": full_s,
        "speedup_vs_full_extraction": (
            full_s / cascade_s if cascade_s > 0 else 0.0
        ),
        "stage0_rate": (
            sum(s.stage == "cheap" for s in selections) / len(corpus)
        ),
        "quality_regressions": sum(
            s.format_name != b.format_name
            for s, b in zip(selections, baseline)
        ),
        "corpus": len(corpus),
    }

    # -- structure delta: incremental migration vs a cold retune --------
    # The serving engine's structure-churn patch path *after* the CSR
    # splice (which every policy pays identically): maintain the Table 2
    # features from the O(delta) effect, re-decide the format on the
    # maintained features, and patch the converted operand's touched
    # rows in place.  The retune side is what the same post-splice step
    # costs without the delta machinery — full feature extraction, the
    # power-law fit, and a from-scratch reconversion.  The edit batch is
    # degree-preserving so the ELL width survives and the in-place patch
    # (not the rebuild fallback) is what gets timed; the timed loop
    # alternates the delta with its inverse, so every pass does exactly
    # one honest forward migration and the features never drift.
    churn_base = (
        band
        if (n, n_diags) == DELTA_SIZES[suite]
        else banded.banded_matrix(*DELTA_SIZES[suite], seed=seed)
    )
    delta = _churn_delta(
        churn_base,
        np.random.default_rng(seed + 17),
        max(8, churn_base.nnz // 1024),
    )
    ell_donor, _ = csr_to_ell(churn_base, fill_budget=None)
    delta_feats = DeltaFeatures(churn_base)
    delta_csr, delta_effect = apply_delta(churn_base, delta)
    inverse_effect = DeltaEffect(
        shape=delta_effect.shape,
        added_rows=delta_effect.removed_rows,
        added_cols=delta_effect.removed_cols,
        removed_rows=delta_effect.added_rows,
        removed_cols=delta_effect.added_cols,
        updated_rows=delta_effect.updated_rows,
        updated_cols=delta_effect.updated_cols,
    )
    patched = patch_operand(ell_donor, delta_csr, delta_effect)
    rebuilt, _ = csr_to_ell(delta_csr, fill_budget=None)
    mismatches = sum(
        not np.array_equal(
            getattr(patched.matrix, attr), getattr(rebuilt, attr)
        )
        for attr in ("indices", "data")
    )
    delta_feats.apply(delta_effect)
    maintained_fmt, _, _ = _model_walk(
        smat.model, delta_feats.seed_lazy(delta_csr)
    )
    format_regressions = int(
        maintained_fmt != full_select(delta_csr, smat.model).format_name
    )
    delta_feats.apply(inverse_effect)

    migrations = (
        (delta_effect, delta_csr, ell_donor),
        (inverse_effect, churn_base, patched.matrix),
    )
    flip = [0]

    def _delta_path():
        effect, target_csr, donor = migrations[flip[0]]
        flip[0] ^= 1
        delta_feats.apply(effect)
        _model_walk(smat.model, delta_feats.seed_lazy(target_csr))
        return patch_operand(donor, target_csr, effect)

    delta_s = _time(_delta_path, repeats, warmup=2)
    delta_retune_s = _time(
        lambda: (
            extract_structure_features(delta_csr),
            extract_powerlaw_feature(delta_csr),
            csr_to_ell(delta_csr, fill_budget=None),
        ),
        repeats,
    )
    ops["plan/delta_update"] = {
        "median_s": delta_s,
        "retune_median_s": delta_retune_s,
        "speedup_vs_retune": (
            delta_retune_s / delta_s if delta_s > 0 else 0.0
        ),
        "edits": int(delta.size),
        "delta_ratio": float(
            delta_effect.structural_size / max(churn_base.nnz, 1)
        ),
        "policy": patched.mode,
        "mismatches": int(mismatches),
        "format_regressions": format_regressions,
    }

    # -- per-format SpMV: vectorized kernels vs the *_basic loops -------
    vec = strategy_set(Strategy.VECTORIZE)
    csr_fast = find_kernel(FormatName.CSR, vec)
    csr_slow = find_kernel(FormatName.CSR, strategy_set())
    record(
        "spmv/csr",
        lambda: csr_fast(band, x),
        lambda: csr_slow(band, x),
    )
    ell, _ = csr_to_ell(band, fill_budget=None)
    ell_fast = find_kernel(FormatName.ELL, vec)
    ell_slow = find_kernel(FormatName.ELL, strategy_set())
    record("spmv/ell", lambda: ell_fast(ell, x), lambda: ell_slow(ell, x))
    dia, _ = csr_to_dia(band, fill_budget=None)
    dia_fast = find_kernel(FormatName.DIA, vec)
    dia_slow = find_kernel(FormatName.DIA, strategy_set())
    record("spmv/dia", lambda: dia_fast(dia, x), lambda: dia_slow(dia, x))

    # -- codegen backend: generated kernels vs the generic registry -----
    # Each family converts the suite matrix to its format, generates the
    # specialized kernel (structure folded as literals), and times it
    # against the generic vectorized kernel on the same operand.  The
    # ``mismatches`` count is a correctness tripwire on top of the
    # 200-seed differential sweep in tests/test_codegen_differential.py.
    if kernel_backend == "generic":
        for name in CODEGEN_OPS:
            ops[name] = {"skipped": "kernel backend 'generic' selected"}
    else:
        from repro.formats.convert import convert
        from repro.kernels.codegen import generate_kernel

        vec = strategy_set(Strategy.VECTORIZE)
        codegen_cases = (
            ("codegen/dia_banded", band, FormatName.DIA),
            ("codegen/bdia_banded", band, FormatName.BDIA),
            ("codegen/bcsr_blocked", band, FormatName.BCSR),
            ("codegen/hyb_powerlaw", power, FormatName.HYB),
        )
        for name, source_matrix, fmt in codegen_cases:
            converted, _ = convert(source_matrix, fmt, fill_budget=None)
            generic = find_kernel(fmt, vec)
            generated = generate_kernel(converted)
            xc = np.ones(converted.n_cols, dtype=converted.dtype)
            y_generic = generic(converted, xc)
            y_generated = generated(converted, xc)
            mismatches = int(np.sum(
                ~np.isclose(y_generated, y_generic, rtol=1e-9, atol=1e-12)
            ))
            # Interleaved best-of-trials: a single median per kernel is
            # noisy on shared runners, and the floor check compares two
            # absolute timings.  Alternating the two kernels and keeping
            # each one's best median cancels drift that would otherwise
            # skew whichever side happened to run during a busy slice.
            gen_trials, base_trials = [], []
            for _ in range(CODEGEN_TIMING_TRIALS):
                gen_trials.append(_time(
                    lambda k=generated, m=converted: k(m, xc), repeats
                ))
                base_trials.append(_time(
                    lambda k=generic, m=converted: k(m, xc), repeats
                ))
            gen_s = min(gen_trials)
            base_s = min(base_trials)
            ops[name] = {
                "median_s": gen_s,
                "generic_median_s": base_s,
                "speedup_vs_generic": base_s / gen_s if gen_s > 0 else 0.0,
                "mismatches": mismatches,
                "kernel": generated.name,
            }

    # -- SpMM: one multi-RHS pass vs k sequential SpMVs -----------------
    # The serving layer's batched fast path: the baseline is the *tuned*
    # vectorized SpMV run column by column, so the speedup isolates the
    # operand-traffic amortisation the batching buys, not loop overhead.
    rng = np.random.default_rng(seed)
    spmm_cases = (
        ("csr", band, csr_fast, csr_spmm),
        ("ell", ell, ell_fast, ell_spmm),
        ("dia", dia, dia_fast, dia_spmm),
    )
    for batch in SPMM_BATCH_SIZES:
        X = rng.standard_normal((band.n_cols, batch))
        for fmt, matrix, spmv_kernel, spmm_kernel in spmm_cases:

            def sequential(m=matrix, kern=spmv_kernel):
                Y = np.empty((m.n_rows, batch), dtype=m.dtype)
                for j in range(batch):
                    Y[:, j] = kern(m, X[:, j])
                return Y

            spmm_s = _time(
                lambda m=matrix, kern=spmm_kernel: kern(m, X), repeats
            )
            seq_s = _time(sequential, repeats)
            ops[f"spmm/{fmt}_b{batch}"] = {
                "median_s": spmm_s,
                "sequential_median_s": seq_s,
                "speedup_vs_sequential_spmv": (
                    seq_s / spmm_s if spmm_s > 0 else 0.0
                ),
                "batch": batch,
            }

    # -- THREAD kernel: real concurrency on a >=2M-nnz matrix -----------
    if suite == "full":
        n_workers = workers if workers is not None else default_workers()
        if n_workers < THREAD_MIN_WORKERS:
            ops["spmv/csr_thread"] = {
                "skipped": (
                    f"needs >= {THREAD_MIN_WORKERS} workers, "
                    f"host offers {n_workers}"
                ),
                "workers": n_workers,
            }
        else:
            big = banded.banded_matrix(THREAD_ROWS, THREAD_DIAGS, seed=seed)
            xb = np.ones(big.n_cols, dtype=big.dtype)
            single_s = _time(lambda: csr_fast(big, xb), repeats)
            thread_s = _time(
                lambda: csr_spmv_thread(big, xb, workers=n_workers), repeats
            )
            ops["spmv/csr_thread"] = {
                "median_s": thread_s,
                "single_chunk_median_s": single_s,
                "speedup_vs_vectorized": (
                    single_s / thread_s if thread_s > 0 else 0.0
                ),
                "workers": n_workers,
                "nnz": big.nnz,
            }
    else:
        ops["spmv/csr_thread"] = {
            "skipped": f"suite {suite!r} (run the full suite)",
        }

    return {
        "bench": "perf_regression",
        "suite": suite,
        "repeats": repeats,
        "matrix": {
            "banded": {"n": n, "n_diags": n_diags, "nnz": band.nnz},
            "powerlaw": {"n": sizes["powerlaw"], "nnz": power.nnz},
        },
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "ops": ops,
    }


def check_speedups(
    report: Dict[str, object], min_speedup: float
) -> List[str]:
    """Failure messages for gated ops below ``min_speedup`` (empty = pass)."""
    failures = []
    ops = report["ops"]
    for name in GATED_OPS:
        entry = ops.get(name)
        key = next(
            (k for k in SPEEDUP_KEYS if entry is not None and k in entry),
            None,
        )
        if key is None:
            failures.append(f"{name}: no speedup recorded")
            continue
        speedup = float(entry[key])
        if speedup < min_speedup:
            failures.append(
                f"{name}: {speedup:.1f}x < required {min_speedup:.1f}x"
            )
    delta = ops.get("plan/delta_update")
    if delta is not None:
        if int(delta.get("mismatches", 1)):
            failures.append(
                f"plan/delta_update: patched operand differs from the "
                f"from-scratch reconversion in "
                f"{int(delta.get('mismatches', 1))} arrays (the patch "
                "must be bitwise-equal)"
            )
        if int(delta.get("format_regressions", 1)):
            failures.append(
                "plan/delta_update: maintained features re-decide a "
                "different format than a full extraction of the mutated "
                "matrix"
            )
        if delta.get("policy") != "patched":
            failures.append(
                f"plan/delta_update: operand took the "
                f"'{delta.get('policy')}' path — the benchmark delta "
                "must exercise the in-place patch"
            )
    cascade = ops.get("tune/cascade_overhead")
    if cascade is not None and int(cascade.get("quality_regressions", 1)):
        failures.append(
            f"tune/cascade_overhead: "
            f"{int(cascade.get('quality_regressions', 1))} format choices "
            "differ from full extraction (the cascade may only be fast, "
            "never wrong)"
        )
    for name, floor in SPMM_GATES.items():
        entry = ops.get(name)
        if entry is None or "speedup_vs_sequential_spmv" not in entry:
            failures.append(f"{name}: no speedup recorded")
            continue
        speedup = float(entry["speedup_vs_sequential_spmv"])
        if speedup < floor:
            failures.append(
                f"{name}: {speedup:.1f}x < required {floor:.1f}x "
                "(fixed SpMM floor)"
            )
    failures.extend(_check_codegen(report))
    return failures


def _check_codegen(report: Dict[str, object]) -> List[str]:
    """Gate the ``codegen/`` section: correctness always, floor at scale.

    A generated kernel that disagrees with the generic kernel fails on
    every suite.  The :data:`CODEGEN_SPEEDUP_FLOOR` must be cleared by at
    least :data:`CODEGEN_MIN_FAMILIES` of the structured families, but
    only on :data:`CODEGEN_GATED_SUITES` — and only when the section was
    measured at all (``--kernel-backend generic`` records it skipped).
    """
    failures: List[str] = []
    ops = report["ops"]
    measured = {
        name: ops[name]
        for name in CODEGEN_OPS
        if name in ops and "skipped" not in ops[name]
    }
    if not measured:
        return failures
    for name, entry in measured.items():
        if int(entry.get("mismatches", 0)):
            failures.append(
                f"{name}: generated kernel disagrees with the generic "
                f"kernel on {entry['mismatches']} entries"
            )
    if report.get("suite") not in CODEGEN_GATED_SUITES:
        return failures
    winners = sum(
        float(entry.get("speedup_vs_generic", 0.0)) >= CODEGEN_SPEEDUP_FLOOR
        for entry in measured.values()
    )
    if winners < CODEGEN_MIN_FAMILIES:
        table = ", ".join(
            f"{name} {float(entry.get('speedup_vs_generic', 0.0)):.2f}x"
            for name, entry in measured.items()
        )
        failures.append(
            f"codegen: only {winners} families >= "
            f"{CODEGEN_SPEEDUP_FLOOR:.1f}x over generic "
            f"(need {CODEGEN_MIN_FAMILIES}): {table}"
        )
    return failures


def format_report(report: Dict[str, object]) -> str:
    """Fixed-width text table of one benchmark report."""
    lines = [
        f"perf-regression suite '{report['suite']}' "
        f"(numpy {report['host']['numpy']}, "
        f"{report['host']['cpu_count']} cpu)",
        f"{'op':26s} {'median':>10s} {'loop ref':>10s} {'speedup':>9s}",
    ]
    for name, entry in report["ops"].items():
        if "skipped" in entry:
            lines.append(f"{name:26s} {'skipped':>10s}  ({entry['skipped']})")
            continue
        median = _fmt_seconds(float(entry["median_s"]))
        if "loop_median_s" in entry:
            loop = _fmt_seconds(float(entry["loop_median_s"]))
            speed = f"{float(entry['speedup_vs_python_loop']):.1f}x"
        elif "retune_median_s" in entry:
            loop = _fmt_seconds(float(entry["retune_median_s"]))
            speed = f"{float(entry['speedup_vs_retune']):.1f}x"
        elif "full_median_s" in entry:
            loop = _fmt_seconds(float(entry["full_median_s"]))
            speed = f"{float(entry['speedup_vs_full_extraction']):.1f}x"
        elif "sequential_median_s" in entry:
            loop = _fmt_seconds(float(entry["sequential_median_s"]))
            speed = f"{float(entry['speedup_vs_sequential_spmv']):.2f}x"
        elif "generic_median_s" in entry:
            loop = _fmt_seconds(float(entry["generic_median_s"]))
            speed = f"{float(entry['speedup_vs_generic']):.2f}x"
        elif "single_chunk_median_s" in entry:
            loop = _fmt_seconds(float(entry["single_chunk_median_s"]))
            speed = f"{float(entry['speedup_vs_vectorized']):.2f}x"
        else:
            loop, speed = "-", "-"
        lines.append(f"{name:26s} {median:>10s} {loop:>10s} {speed:>9s}")
    return "\n".join(lines)


def write_report(report: Dict[str, object], out: Path) -> None:
    """Write the report, keeping any ``serve/*`` sections already at ``out``.

    ``serve-bench --bench-json`` merges its serving numbers (``sharded``,
    ``fan_in``, any future section) into the same file; a bench-perf
    rerun must not drop any of them.  The merge is per key so a report
    that somehow carries its own ``serve`` entries wins over stale ones.
    """
    if out.exists():
        try:
            existing = json.loads(out.read_text())
        except (ValueError, OSError):
            existing = None
        if isinstance(existing, dict) and isinstance(
            existing.get("serve"), dict
        ):
            report = dict(report)
            serve = dict(existing["serve"])
            serve.update(report.get("serve") or {})
            report["serve"] = serve
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Standalone entry point (used by benchmarks/bench_perf_regression.py)."""
    from repro.cli import main as cli_main

    return cli_main(["bench-perf"] + list(argv or sys.argv[1:]))
