"""The SMAT auto-tuner facade (Figure 4).

Offline: :meth:`SMAT.train` runs the kernel search on the target
architecture, labels a matrix collection by measuring each matrix's best
format, trains the C5.0-substitute ruleset model, and bundles everything.
Online: :meth:`SMAT.spmv` is the unified CSR interface — feature extraction,
format prediction (or fallback measurement), conversion and the optimal
kernel, all behind one call.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ConversionError, TuningError
from repro.features.extract import extract_features
from repro.features.parameters import FeatureVector
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.learning.dataset import TrainingDataset
from repro.learning.model import LearningModel, train_model
from repro.machine.measure import MeasurementBackend, SimulatedBackend
from repro.machine.presets import INTEL_XEON_X5680
from repro.tuner.config import SmatConfig
from repro.tuner.runtime import Decision, decide
from repro.tuner.search import KernelSearchResult, search_kernels
from repro.types import BASIC_FORMATS, FormatName, Precision


@dataclass
class PreparedSpMV:
    """A matrix frozen in its tuned format: repeated products pay the
    decision and conversion cost exactly once (the AMG use case)."""

    decision: Decision

    def __call__(self, x: np.ndarray) -> np.ndarray:
        assert self.decision.matrix is not None
        return self.decision.kernel(self.decision.matrix, x)

    @property
    def format_name(self) -> FormatName:
        return self.decision.format_name


class SMAT:
    """An input adaptive SpMV auto-tuner."""

    def __init__(
        self,
        model: LearningModel,
        kernels: KernelSearchResult,
        backend: MeasurementBackend,
        config: SmatConfig = SmatConfig(),
    ) -> None:
        self.model = model
        self.kernels = kernels
        self.backend = backend
        self.config = config

    # ------------------------------------------------------------------
    # Offline stage
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        collection: Iterable,
        backend: Optional[MeasurementBackend] = None,
        config: SmatConfig = SmatConfig(),
        min_leaf: int = 8,
        max_depth: int = 10,
    ) -> "SMAT":
        """The complete offline stage on ``(spec, matrix)`` pairs.

        ``min_leaf=8`` / ``max_depth=10`` keep the tree at C5.0-like
        granularity: specialised formats get sharp (pure) rules while the
        broad CSR rules stay honest about their residual error, which is
        what drives the Table 3 fallback behaviour.
        """
        backend = backend or SimulatedBackend(
            INTEL_XEON_X5680, Precision.DOUBLE
        )
        kernels = search_kernels(backend)
        dataset = build_training_dataset(collection, kernels, backend, config)
        model = train_model(dataset, min_leaf=min_leaf, max_depth=max_depth)
        return cls(model=model, kernels=kernels, backend=backend, config=config)

    @classmethod
    def from_dataset(
        cls,
        dataset: TrainingDataset,
        backend: Optional[MeasurementBackend] = None,
        config: SmatConfig = SmatConfig(),
        min_leaf: int = 8,
        max_depth: int = 10,
    ) -> "SMAT":
        """Offline stage when a labelled feature database already exists."""
        backend = backend or SimulatedBackend(
            INTEL_XEON_X5680, Precision.DOUBLE
        )
        kernels = search_kernels(backend)
        model = train_model(dataset, min_leaf=min_leaf, max_depth=max_depth)
        return cls(model=model, kernels=kernels, backend=backend, config=config)

    # ------------------------------------------------------------------
    # Online stage
    # ------------------------------------------------------------------
    def decide(self, matrix: CSRMatrix, deadline=None) -> Decision:
        """Choose format + kernel for ``matrix`` (Figure 7).

        ``deadline`` (anything with ``remaining() -> seconds``) opts the
        decision into the budgeted cascade; so does setting
        ``config.tune_budget_units``.
        """
        return decide(
            matrix,
            self.model,
            self.kernels,
            self.backend,
            self.config,
            deadline=deadline,
        )

    def prepare(self, matrix: CSRMatrix) -> PreparedSpMV:
        """Decide once, convert once; returns a reusable SpMV operator."""
        with obs.span("smat.prepare", nnz=int(matrix.nnz)):
            decision = self.decide(matrix)
            if decision.matrix is None:
                decision.matrix, _ = convert(
                    matrix, decision.format_name, fill_budget=None
                )
            return PreparedSpMV(decision)

    def spmv(
        self, matrix: CSRMatrix, x: np.ndarray
    ) -> Tuple[np.ndarray, Decision]:
        """One-shot tuned SpMV: ``y, decision = smat.spmv(A, x)``."""
        with obs.span("smat.spmv", nnz=int(matrix.nnz)):
            prepared = self.prepare(matrix)
            return prepared(x), prepared.decision

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: Path) -> None:
        """Persist the reusable offline artifacts (model + kernel choices)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.model.save(directory / "model.json")
        kernel_choice = {
            fmt.value: sorted(s.value for s in kernel.strategies)
            for fmt, kernel in self.kernels.kernels.items()
        }
        (directory / "kernels.json").write_text(
            json.dumps(kernel_choice, indent=2)
        )

    @classmethod
    def load(
        cls,
        directory: Path,
        backend: Optional[MeasurementBackend] = None,
        config: SmatConfig = SmatConfig(),
    ) -> "SMAT":
        from repro.kernels.base import find_kernel
        from repro.kernels.strategies import Strategy
        from repro.tuner.scoreboard import PerformanceTable

        directory = Path(directory)
        backend = backend or SimulatedBackend(
            INTEL_XEON_X5680, Precision.DOUBLE
        )
        model = LearningModel.load(directory / "model.json")
        kernel_choice = json.loads((directory / "kernels.json").read_text())
        kernels = {}
        for fmt_name, strategy_names in kernel_choice.items():
            fmt = FormatName(fmt_name)
            strategies = frozenset(Strategy(s) for s in strategy_names)
            kernels[fmt] = find_kernel(fmt, strategies)
        result = KernelSearchResult(kernels=kernels, tables={}, scoreboards={})
        return cls(model=model, kernels=result, backend=backend, config=config)


# ---------------------------------------------------------------------------
# Offline labelling
# ---------------------------------------------------------------------------

def build_training_dataset(
    collection: Iterable,
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    config: SmatConfig = SmatConfig(),
) -> TrainingDataset:
    """Label every collection matrix with its measured-best format.

    This is the paper's exhaustive offline step: each training matrix is
    converted to each basic format (skipping conversions that blow the
    zero-fill budget — those formats lose by construction) and timed with
    that format's optimal kernel.
    """
    records = []
    for _, matrix in collection:
        features = extract_features(matrix)
        best = label_matrix(matrix, features, kernels, backend, config)
        records.append(features.with_label(best))
    if not records:
        raise TuningError("empty training collection")
    return TrainingDataset(tuple(records))


def label_matrix(
    matrix: CSRMatrix,
    features: FeatureVector,
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    config: SmatConfig = SmatConfig(),
) -> FormatName:
    """The measured-best format of one matrix (exhaustive search)."""
    needs_matrix = not isinstance(backend, SimulatedBackend)
    best_fmt: Optional[FormatName] = None
    best_time = float("inf")
    for fmt in BASIC_FORMATS:
        target = None
        if needs_matrix:
            try:
                target, _ = convert(
                    matrix, fmt, fill_budget=config.fill_budget
                )
            except ConversionError:
                continue
        else:
            # The simulated backend prices padding analytically; still skip
            # conversions so pathological the tuner would never attempt them.
            padded_ratio = _padding_ratio(fmt, features)
            if (
                config.fill_budget is not None
                and padded_ratio > config.fill_budget
            ):
                continue
        seconds = backend.measure(kernels.kernel_for(fmt), target, features)
        if seconds < best_time:
            best_time = seconds
            best_fmt = fmt
    assert best_fmt is not None  # CSR always succeeds
    return best_fmt


def _padding_ratio(fmt: FormatName, f: FeatureVector) -> float:
    if f.nnz == 0:
        return 1.0
    if fmt is FormatName.DIA:
        return f.ndiags * f.m / f.nnz
    if fmt is FormatName.ELL:
        return f.max_rd * f.m / f.nnz
    return 1.0
