"""Tuner configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.types import FormatName

#: Default confidence threshold ruling the execute-and-measure fallback.
#: Confidence is the paper's raw correctly-classified ratio, so the small,
#: structurally sharp DIA/ELL/COO rules are typically *pure* (confidence
#: 1.0) while the broad rules of CSR — "the most general format" with
#: "relatively intricate features" — always carry a few misclassified
#: matrices.  A threshold of 0.99 therefore trusts the specialised formats
#: and routes low-confidence CSR predictions into execute-and-measure,
#: reproducing Table 3's decision pattern.
DEFAULT_CONFIDENCE_THRESHOLD = 0.99

#: Formats the fallback actually benchmarks.  The paper's fallback runs
#: "CSR+COO" (Table 3): the cheap-to-convert candidates.  DIA/ELL never make
#: the list — their rule groups already rejected the matrix, and converting
#: to them can cost tens of SpMVs.
FALLBACK_CANDIDATES: Tuple[FormatName, ...] = (
    FormatName.CSR,
    FormatName.COO,
)


@dataclass(frozen=True)
class SmatConfig:
    """Runtime policy of an SMAT instance."""

    confidence_threshold: float = DEFAULT_CONFIDENCE_THRESHOLD
    #: Times each fallback candidate is executed when measuring (the paper's
    #: execute-and-measure runs a few repetitions for a stable median).
    fallback_repeats: int = 6
    #: Zero-fill budget guarding DIA/ELL conversions (see formats.convert).
    fill_budget: Optional[float] = 20.0
    #: Disable the model entirely (always execute-and-measure) — ablation.
    always_measure: bool = False
    #: Disable the fallback (always trust the model) — ablation.
    never_measure: bool = False
    #: Per-decision overhead budget in CSR-SpMV units.  When set, `decide`
    #: runs the staged cascade (cheap bounds → full extraction →
    #: execute-and-measure → CSR floor) and refuses to start any stage
    #: whose projected cost would blow the budget.  None keeps the
    #: unbudgeted Figure 7 procedure.
    tune_budget_units: Optional[float] = None
    #: Band-span ceiling for the cascade's exact narrow-band diagonal
    #: census (see features.cheap); wider bands keep interval bounds.
    cheap_census_max_diags: int = 512
    #: Kernel backend resolved after the format decision
    #: (``repro.kernels.backends``).  ``codegen`` lets the tuner attach a
    #: per-matrix compiled kernel to the decision when it beats the
    #: registry kernel; the budgeted cascade charges the specialization
    #: probes against ``tune_budget_units`` first.
    kernel_backend: str = "generic"

    def __post_init__(self) -> None:
        from repro.kernels.backends import backend_names

        if self.kernel_backend not in backend_names():
            raise ValueError(
                f"kernel_backend must be one of {backend_names()}, got "
                f"{self.kernel_backend!r}"
            )
        if self.tune_budget_units is not None and self.tune_budget_units <= 0:
            raise ValueError(
                f"tune_budget_units must be positive, got "
                f"{self.tune_budget_units}"
            )
        if self.cheap_census_max_diags < 0:
            raise ValueError(
                f"cheap_census_max_diags must be >= 0, got "
                f"{self.cheap_census_max_diags}"
            )
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ValueError(
                f"confidence_threshold must be in [0, 1], got "
                f"{self.confidence_threshold}"
            )
        if self.fallback_repeats < 1:
            raise ValueError(
                f"fallback_repeats must be >= 1, got {self.fallback_repeats}"
            )
        if self.always_measure and self.never_measure:
            raise ValueError(
                "always_measure and never_measure are mutually exclusive"
            )
