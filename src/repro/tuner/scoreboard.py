"""The performance record table and scoreboard algorithm (Section 5.2).

Kernel searching runs every implementation of a format once, records the
times in a table indexed by strategy set, then scores each individual
strategy:

* an implementation using exactly one strategy is compared with the basic
  implementation — faster scores the strategy +1, slower -1;
* when the relative performance gap is below 1% the strategy "shows no
  effect on this architecture" and is neglected (score 0);
* an implementation with multiple strategies is compared against the
  recorded implementations that use exactly one strategy less, scoring the
  strategy that differs.

Each implementation's score is the sum of its strategies' scores; the
highest-scoring implementation is the format's optimal kernel (ties break
toward the measured-fastest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TuningError
from repro.kernels.base import Kernel
from repro.kernels.strategies import Strategy, StrategySet, describe

#: The paper's neglect rule: gaps under this *relative* size mean the
#: strategy has no effect on this architecture.
NEGLECT_GAP = 0.01


@dataclass
class PerformanceTable:
    """Measured seconds for every implementation of one format."""

    format_name: object
    times: Dict[StrategySet, float] = field(default_factory=dict)

    def record(self, strategies: StrategySet, seconds: float) -> None:
        if seconds <= 0.0:
            raise TuningError(
                f"non-positive measurement for {describe(strategies)}: "
                f"{seconds}"
            )
        self.times[frozenset(strategies)] = seconds

    def time_of(self, strategies: StrategySet) -> Optional[float]:
        return self.times.get(frozenset(strategies))

    def fastest(self) -> Tuple[StrategySet, float]:
        if not self.times:
            raise TuningError("empty performance table")
        best = min(self.times, key=lambda s: self.times[s])
        return best, self.times[best]


@dataclass(frozen=True)
class ScoreboardResult:
    """Strategy scores and the winning implementation."""

    strategy_scores: Dict[Strategy, int]
    implementation_scores: Dict[StrategySet, int]
    best_strategies: StrategySet

    def score_of(self, strategies: StrategySet) -> int:
        return self.implementation_scores[frozenset(strategies)]


def run_scoreboard(table: PerformanceTable) -> ScoreboardResult:
    """Score strategies from the performance table and pick the winner."""
    if not table.times:
        raise TuningError("cannot run the scoreboard on an empty table")

    scores: Dict[Strategy, int] = {}
    votes: Dict[Strategy, List[int]] = {}

    for strategies, seconds in table.times.items():
        for strategy in strategies:
            reduced = strategies - {strategy}
            baseline = table.time_of(reduced)
            if baseline is None:
                continue
            gap = (baseline - seconds) / baseline
            if abs(gap) < NEGLECT_GAP:
                vote = 0
            elif gap > 0:
                vote = 1
            else:
                vote = -1
            votes.setdefault(strategy, []).append(vote)

    for strategy, strategy_votes in votes.items():
        total = sum(strategy_votes)
        scores[strategy] = 1 if total > 0 else (-1 if total < 0 else 0)

    implementation_scores = {
        strategies: sum(scores.get(s, 0) for s in strategies)
        for strategies in table.times
    }

    best = max(
        table.times,
        key=lambda s: (implementation_scores[s], -table.times[s]),
    )
    return ScoreboardResult(
        strategy_scores=scores,
        implementation_scores=implementation_scores,
        best_strategies=best,
    )
