"""Decision logging and aggregate tuning statistics.

Applications that tune many operators (the AMG hierarchy, a time-stepping
code regenerating its Jacobian) want to know what the tuner has been doing:
which formats it picked, how often it fell back to measurement, and what
the accumulated decision overhead was.  ``DecisionLog`` collects
:class:`repro.tuner.Decision` objects and summarises them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.tuner.runtime import Decision
from repro.types import FormatName


@dataclass
class DecisionLog:
    """An append-only record of tuning decisions."""

    decisions: List[Decision] = field(default_factory=list)

    def record(self, decision: Decision) -> Decision:
        self.decisions.append(decision)
        return decision

    def __len__(self) -> int:
        return len(self.decisions)

    # ------------------------------------------------------------------
    def format_counts(self) -> Dict[FormatName, int]:
        return dict(Counter(d.format_name for d in self.decisions))

    def fallback_rate(self) -> float:
        if not self.decisions:
            return 0.0
        return sum(d.used_fallback for d in self.decisions) / len(
            self.decisions
        )

    def total_overhead_units(self) -> float:
        return sum(d.overhead_units for d in self.decisions)

    def mean_confidence(self) -> Optional[float]:
        if not self.decisions:
            return None
        return sum(d.confidence for d in self.decisions) / len(self.decisions)

    def describe(self) -> str:
        if not self.decisions:
            return "no decisions recorded"
        counts = self.format_counts()
        by_format = ", ".join(
            f"{fmt.value}: {count}"
            for fmt, count in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0].value)
            )
        )
        return (
            f"{len(self.decisions)} decisions ({by_format}); "
            f"fallback rate {self.fallback_rate():.0%}; "
            f"total overhead {self.total_overhead_units():.1f} CSR-SpMVs; "
            f"mean confidence {self.mean_confidence():.2f}"
        )


class LoggingSmat:
    """A transparent wrapper recording every decision of an SMAT instance.

    >>> logged = LoggingSmat(smat)
    >>> logged.spmv(matrix, x)       # same API as SMAT
    >>> print(logged.log.describe())
    """

    def __init__(self, smat) -> None:
        self.smat = smat
        self.log = DecisionLog()

    def decide(self, matrix) -> Decision:
        return self.log.record(self.smat.decide(matrix))

    def prepare(self, matrix):
        from repro.tuner.smat import PreparedSpMV

        decision = self.decide(matrix)
        if decision.matrix is None:  # pragma: no cover - decide sets it
            from repro.formats.convert import convert

            decision.matrix, _ = convert(
                matrix, decision.format_name, fill_budget=None
            )
        return PreparedSpMV(decision)

    def spmv(self, matrix, x):
        prepared = self.prepare(matrix)
        return prepared(x), prepared.decision

    def __getattr__(self, name: str):
        return getattr(self.smat, name)
