"""Kernel searching: probe matrices + performance table + scoreboard.

Offline, per architecture, SMAT measures every registered implementation of
every format on a format-friendly probe matrix and lets the scoreboard pick
the optimal kernel (Section 5.2).  The result — one kernel per format — is
what both the learning-model labels and the runtime dispatch use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.collection import banded, graphs, random_sparse
from repro.features.extract import extract_features
from repro.formats.base import SparseMatrix
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.kernels.base import Kernel, kernels_for
from repro.machine.measure import MeasurementBackend
from repro.tuner.scoreboard import (
    PerformanceTable,
    ScoreboardResult,
    run_scoreboard,
)
from repro.types import BASIC_FORMATS, FormatName

#: Probe matrix edge size: big enough that strategy effects register, small
#: enough that the whole search stays sub-second per architecture.
PROBE_SIZE = 1500


def probe_matrix(fmt: FormatName, seed: int = 1234) -> CSRMatrix:
    """A probe whose structure suits ``fmt``: the search must evaluate each
    format's kernels on inputs the format will actually be chosen for."""
    if fmt is FormatName.DIA:
        return banded.banded_matrix(PROBE_SIZE, 9, seed=seed)
    if fmt is FormatName.ELL:
        return graphs.uniform_bipartite(
            PROBE_SIZE, PROBE_SIZE, 6, seed=seed
        )
    if fmt is FormatName.COO:
        return graphs.power_law_graph(PROBE_SIZE, exponent=2.2, seed=seed)
    return random_sparse.uniform_random(PROBE_SIZE, PROBE_SIZE, 12.0, seed=seed)


@dataclass
class KernelSearchResult:
    """Per-format optimal kernels plus the evidence behind them."""

    kernels: Dict[FormatName, Kernel]
    tables: Dict[FormatName, PerformanceTable]
    scoreboards: Dict[FormatName, ScoreboardResult]

    def kernel_for(self, fmt: FormatName) -> Kernel:
        return self.kernels[fmt]


def search_kernels(
    backend: MeasurementBackend,
    formats: Tuple[FormatName, ...] = BASIC_FORMATS,
    seed: int = 1234,
) -> KernelSearchResult:
    """Run the full kernel search on ``backend``'s architecture."""
    kernels: Dict[FormatName, Kernel] = {}
    tables: Dict[FormatName, PerformanceTable] = {}
    boards: Dict[FormatName, ScoreboardResult] = {}

    for fmt in formats:
        csr_probe = probe_matrix(fmt, seed=seed)
        matrix, _ = convert(csr_probe, fmt, fill_budget=None)
        features = extract_features(csr_probe)

        table = PerformanceTable(format_name=fmt)
        for kernel in kernels_for(fmt):
            seconds = backend.measure(kernel, matrix, features)
            table.record(kernel.strategies, seconds)

        board = run_scoreboard(table)
        winner = next(
            k
            for k in kernels_for(fmt)
            if k.strategies == board.best_strategies
        )
        kernels[fmt] = winner
        tables[fmt] = table
        boards[fmt] = board

    return KernelSearchResult(kernels=kernels, tables=tables, scoreboards=boards)
