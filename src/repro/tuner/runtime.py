"""The runtime decision procedure (Section 6, Figure 7).

Given an input CSR matrix:

1. extract features lazily (step one now, the power-law fit only if the
   COO group is ever consulted),
2. walk the format groups in DIA, ELL, CSR, COO order; the first group with
   a matching rule is the prediction,
3. if the group's format confidence clears the threshold, done — otherwise
   trigger execute-and-measure over the cheap candidates (CSR, COO and the
   predicted format) and return the measured winner.

Every step's cost is accounted in CSR-SpMV units, reproducing Table 3's
overhead column.

When ``SmatConfig.tune_budget_units`` is set (or the caller passes a
request deadline), the procedure becomes a *budgeted cascade*:

- **stage 0 ("cheap")** walks the same trained ruleset over interval
  bounds from an O(rows) degree pass (:class:`CheapFeatures`) using
  three-valued logic — a stage-0 answer is provably identical to the
  full walk, never a guess from a weaker model;
- **stage 1 ("full")** runs the classic lazy extraction, only when the
  bounds could not resolve the walk and the budget/deadline allow it;
- **stage 2 ("measure")** is the execute-and-measure fallback, gated the
  same way;
- **the floor** serves CSR with no conversion when the budget is gone —
  the identity plan costs nothing and is never wrong, just not optimal.

``Decision.cascade_stage`` records where the cascade stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import ConversionError, TuningError
from repro.features.cheap import CheapFeatures
from repro.features.incremental import (
    LazyFeatures,
    STRUCTURE_COST_SPMV_UNITS,
)
from repro.features.parameters import FeatureVector
from repro.formats.base import SparseMatrix
from repro.formats.convert import conversion_cost, convert
from repro.formats.csr import CSRMatrix
from repro.kernels.base import Kernel
from repro.learning.model import LearningModel
from repro.learning.rules import Rule
from repro.machine.measure import MeasurementBackend
from repro.tuner.config import FALLBACK_CANDIDATES, SmatConfig
from repro.tuner.search import KernelSearchResult
from repro.types import FormatName


@dataclass
class Decision:
    """The outcome of one runtime tuning decision."""

    format_name: FormatName
    kernel: Kernel
    confidence: float
    matched_rule: Optional[Rule]
    used_fallback: bool
    #: Format the model predicted (equals format_name on a model hit).
    predicted_format: FormatName
    #: Fallback measurements, seconds per candidate format.
    measurements: Dict[FormatName, float] = field(default_factory=dict)
    #: Overhead accounting, all in units of one CSR SpMV.
    extraction_units: float = 0.0
    conversion_units: float = 0.0
    measurement_units: float = 0.0
    #: Charge for kernel-backend specialization (codegen emit/compile plus
    #: the beat-or-keep audit probes); 0.0 under the generic backend.
    codegen_units: float = 0.0
    #: True when a model hit predicted a format whose conversion blew the
    #: zero-fill budget and the decision fell back to running CSR; the
    #: wasted attempt is charged in ``conversion_units``.  The budgeted
    #: cascade also sets it when the overhead floor overrides a non-CSR
    #: prediction.
    degraded_to_csr: bool = False
    #: Which cascade stage produced this decision ("cheap", "full",
    #: "measure" or "floor"); None for the unbudgeted procedure.
    cascade_stage: Optional[str] = None
    #: The matrix already converted to ``format_name`` (fallback path
    #: converts while measuring; the model-hit path converts on demand).
    matrix: Optional[SparseMatrix] = None
    #: Features extracted while deciding (fallback snapshots everything);
    #: downstream consumers — the online learner labelling its training
    #: records — reuse them instead of re-running extraction.  Like
    #: ``matrix``, this is runtime state and is not serialized.
    features: Optional[FeatureVector] = None
    #: Backend-specialized kernel (a compiled codegen artifact) that beat
    #: ``kernel`` on this matrix; ``None`` keeps the registry kernel.
    #: Runtime state like ``matrix`` — never serialized, rebuilt locally
    #: from structure wherever the decision is replayed (cluster workers
    #: re-warm through their own engine, so only the backend *name* ever
    #: crosses a process boundary).
    compiled_kernel: Optional[Kernel] = None

    @property
    def overhead_units(self) -> float:
        """Total decision overhead in CSR-SpMV units (Table 3's column)."""
        return (
            self.extraction_units
            + self.conversion_units
            + self.measurement_units
            + self.codegen_units
        )

    @property
    def serving_kernel(self) -> Kernel:
        """The kernel products should run: compiled if attached, else generic."""
        return self.compiled_kernel or self.kernel

    # ------------------------------------------------------------------
    # Serialization — decisions are loggable/inspectable records.  The
    # converted matrix is deliberately *not* serialized (it can be huge
    # and is rebuildable from the source matrix); ``from_dict`` resolves
    # the kernel from a KernelSearchResult and leaves ``matrix`` None.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready record of this decision (no matrix payload)."""
        return {
            "format": self.format_name.value,
            "kernel_strategies": sorted(
                s.value for s in self.kernel.strategies
            ),
            "confidence": self.confidence,
            "matched_rule": (
                self.matched_rule.to_dict()
                if self.matched_rule is not None
                else None
            ),
            "used_fallback": self.used_fallback,
            "predicted_format": self.predicted_format.value,
            "measurements": {
                fmt.value: seconds
                for fmt, seconds in self.measurements.items()
            },
            "extraction_units": self.extraction_units,
            "conversion_units": self.conversion_units,
            "measurement_units": self.measurement_units,
            "codegen_units": self.codegen_units,
            "degraded_to_csr": self.degraded_to_csr,
            "cascade_stage": self.cascade_stage,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Decision":
        """Rebuild a decision record from :meth:`to_dict` output.

        The kernel is resolved from the registered kernel library by
        (format, strategy set) — the same resolution :meth:`SMAT.load`
        uses — so the record stays portable across processes.
        """
        from repro.kernels.base import find_kernel
        from repro.kernels.strategies import Strategy

        fmt = FormatName(payload["format"])
        strategies = frozenset(
            Strategy(s) for s in payload["kernel_strategies"]  # type: ignore[union-attr]
        )
        rule_payload = payload.get("matched_rule")
        return cls(
            format_name=fmt,
            kernel=find_kernel(fmt, strategies),
            confidence=float(payload["confidence"]),  # type: ignore[arg-type]
            matched_rule=(
                Rule.from_dict(rule_payload)  # type: ignore[arg-type]
                if rule_payload is not None
                else None
            ),
            used_fallback=bool(payload["used_fallback"]),
            predicted_format=FormatName(payload["predicted_format"]),
            measurements={
                FormatName(name): float(seconds)
                for name, seconds in payload["measurements"].items()  # type: ignore[union-attr]
            },
            extraction_units=float(payload["extraction_units"]),  # type: ignore[arg-type]
            conversion_units=float(payload["conversion_units"]),  # type: ignore[arg-type]
            measurement_units=float(payload["measurement_units"]),  # type: ignore[arg-type]
            # Absent pre-backend; those decisions never specialized.
            codegen_units=float(payload.get("codegen_units", 0.0)),  # type: ignore[arg-type]
            # Absent in records written before the degrade path was
            # surfaced; those decisions never degraded.
            degraded_to_csr=bool(payload.get("degraded_to_csr", False)),
            # Absent pre-cascade; those decisions ran the unbudgeted path.
            cascade_stage=payload.get("cascade_stage"),  # type: ignore[arg-type]
        )


def rule_matches_lazy(rule: Rule, lazy: LazyFeatures) -> bool:
    """Evaluate a rule against lazily-extracted features.

    Conditions pull exactly the parameters they mention, so a DIA rule never
    triggers the power-law fit — the optimistic early-exit of Section 6.
    """
    return all(
        _condition_matches(cond, lazy) for cond in rule.conditions
    )


def _condition_matches(cond, lazy: LazyFeatures) -> bool:
    value = lazy.get(cond.attribute)
    if cond.operator == "<=":
        return value <= cond.threshold
    return value > cond.threshold


# ----------------------------------------------------------------------
# Three-valued rule evaluation over interval bounds (cascade stage 0).
# A condition is TRUE/FALSE only when *provable* from the bounds;
# anything else is UNKNOWN and forces escalation, so a stage-0 verdict
# is always identical to what the full extraction would have produced.
# ----------------------------------------------------------------------
_TRUE, _FALSE, _UNKNOWN = 1, 0, -1


def _eval_bound(bound, cond) -> int:
    lo, hi = bound
    if cond.operator == "<=":
        if hi <= cond.threshold:
            return _TRUE
        if lo > cond.threshold:
            return _FALSE
        return _UNKNOWN
    if lo > cond.threshold:
        return _TRUE
    if hi <= cond.threshold:
        return _FALSE
    return _UNKNOWN


def _condition_tristate(cond, cheap: CheapFeatures) -> int:
    state = _eval_bound(cheap.get_bound(cond.attribute), cond)
    if state == _UNKNOWN:
        # Only an unresolved condition is worth the narrow-band census;
        # tightened_bound is a no-op when the census cannot help.
        state = _eval_bound(cheap.tightened_bound(cond.attribute), cond)
    return state


def _rule_tristate(rule: Rule, cheap: CheapFeatures) -> int:
    state = _TRUE
    for cond in rule.conditions:
        s = _condition_tristate(cond, cheap)
        if s == _FALSE:
            return _FALSE
        if s == _UNKNOWN:
            state = _UNKNOWN
    return state


Prediction = Tuple[FormatName, float, Optional[Rule]]


def _cheap_walk(
    model: LearningModel, cheap: CheapFeatures
) -> Tuple[Optional[Prediction], bool]:
    """Walk the rule groups over interval bounds.

    Returns ``(prediction, resolved)``.  ``resolved`` is True only when
    the bounds prove the same *format outcome* the full walk would reach:
    either some rule is provably TRUE with every earlier group provably
    missed (a later UNKNOWN rule in the *same* group cannot change the
    group's format or confidence), or every rule everywhere is provably
    FALSE (the default-format miss).
    """
    for group in model.grouped.groups:
        group_unknown = False
        for rule in group.rules:
            s = _rule_tristate(rule, cheap)
            if s == _TRUE:
                return (
                    (group.format_name, group.format_confidence, rule),
                    True,
                )
            if s == _UNKNOWN:
                group_unknown = True
        if group_unknown:
            return None, False
    return (model.grouped.default_format, 0.0, None), True


def _model_walk(model: LearningModel, lazy: LazyFeatures) -> Prediction:
    """The classic Figure 7 group walk over (lazily) exact features."""
    for group in model.grouped.groups:
        for rule in group.rules:
            if rule_matches_lazy(rule, lazy):
                return group.format_name, group.format_confidence, rule
    return model.grouped.default_format, 0.0, None


def decide(
    matrix: CSRMatrix,
    model: LearningModel,
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    config: SmatConfig = SmatConfig(),
    deadline=None,
) -> Decision:
    """Run the Figure 7 procedure on one input matrix.

    ``deadline`` is anything with a ``remaining() -> seconds`` method
    (duck-typed to avoid importing the serving layer); passing one — or
    setting ``config.tune_budget_units`` — switches to the budgeted
    cascade.
    """
    cascading = (
        config.tune_budget_units is not None or deadline is not None
    ) and not config.always_measure
    span_name = "tune.cascade" if cascading else "tune.decide"
    with obs.span(
        span_name, rows=int(matrix.n_rows), nnz=int(matrix.nnz)
    ) as span:
        if cascading:
            decision = _decide_cascade(
                matrix, model, kernels, backend, config, deadline
            )
        else:
            decision = _decide(matrix, model, kernels, backend, config)
        _apply_kernel_backend(decision, config, budgeted=cascading)
        if span is not None:
            span.attrs.update(
                format=decision.format_name.value,
                predicted=decision.predicted_format.value,
                confidence=round(decision.confidence, 4),
                used_fallback=decision.used_fallback,
            )
            if cascading:
                span.attrs.update(
                    stage=decision.cascade_stage,
                    budget_units=config.tune_budget_units,
                    spent_units=round(decision.overhead_units, 3),
                )
        return decision


def _apply_kernel_backend(
    decision: Decision, config: SmatConfig, budgeted: bool
) -> None:
    """Let the configured kernel backend specialize the decision's kernel.

    Runs after the format decision: the backend sees the converted matrix
    and the registry kernel the rule walk picked, and may attach a
    compiled replacement (``decision.compiled_kernel``).  Under the
    budgeted cascade the specialization probes are charged against
    ``tune_budget_units`` like any other stage — no budget left means the
    decision silently keeps the generic kernel.  ``CodegenError`` (or any
    backend failure) also keeps the generic kernel; specialization can
    never fail a decision.
    """
    if config.kernel_backend == "generic" or decision.matrix is None:
        return
    from repro.errors import KernelError
    from repro.kernels.backends import get_backend

    try:
        backend = get_backend(config.kernel_backend)
    except KernelError:
        return
    cost = backend.overhead_units(decision.matrix)
    if budgeted and config.tune_budget_units is not None:
        if decision.overhead_units + cost > config.tune_budget_units:
            return
    try:
        specialized = backend.specialize(decision.matrix, decision.kernel)
    except Exception:
        return
    decision.codegen_units = cost
    if specialized is not decision.kernel:
        decision.compiled_kernel = specialized


def _decide(
    matrix: CSRMatrix,
    model: LearningModel,
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    config: SmatConfig,
) -> Decision:
    lazy = LazyFeatures(matrix)

    if config.always_measure:
        return _fallback(
            matrix, lazy, FALLBACK_CANDIDATES, kernels, backend, config,
            predicted=FormatName.CSR, confidence=0.0, rule=None,
        )

    fmt, confidence, rule = _model_walk(model, lazy)
    if confidence > config.confidence_threshold or config.never_measure:
        converted, degraded = _convert_for(matrix, fmt, config)
        # A blown zero-fill budget degrades the prediction to CSR: the
        # model was wrong about feasibility, and running CSR beats paying
        # a pathological conversion.  The abandoned attempt still walked
        # the matrix to price its fill, so the *predicted* format's
        # conversion is what Table 3 charges — not the free CSR identity.
        actual = converted.format_name
        return Decision(
            format_name=actual,
            kernel=kernels.kernel_for(actual),
            confidence=confidence,
            matched_rule=rule,
            used_fallback=False,
            predicted_format=fmt,
            extraction_units=lazy.extraction_cost_spmv_units(),
            conversion_units=conversion_cost(
                FormatName.CSR, fmt if degraded else actual, matrix
            ),
            degraded_to_csr=degraded,
            matrix=converted,
        )

    candidates = tuple(dict.fromkeys((fmt,) + FALLBACK_CANDIDATES))
    return _fallback(
        matrix, lazy, candidates, kernels, backend, config,
        predicted=fmt, confidence=confidence, rule=rule,
    )


# ----------------------------------------------------------------------
# The budgeted cascade.
# ----------------------------------------------------------------------

#: Heuristic seconds per CSR-SpMV unit used to translate a request's
#: remaining deadline into affordable overhead units: ~4ns per nonzero
#: (two flops + streaming traffic on commodity cores), doubled for
#: safety before anything is allowed to start.
_EST_UNIT_SECONDS_PER_NNZ = 4e-9
_DEADLINE_SAFETY = 2.0


@dataclass(frozen=True)
class CascadeSelection:
    """Selection-only cascade probe result (no conversion, no timing)."""

    format_name: FormatName
    confidence: float
    matched_rule: Optional[Rule]
    stage: str
    cost_units: float


def cascade_select(
    matrix: CSRMatrix,
    model: LearningModel,
    config: SmatConfig = SmatConfig(),
) -> CascadeSelection:
    """Run only the *selection* part of the cascade: cheap bounds walk,
    escalating to full lazy extraction when unresolved.  No conversion
    and no measurement — this is the decision-overhead kernel the
    ``tune/cascade_overhead`` benchmark times against always-full
    extraction.
    """
    cheap = CheapFeatures(
        matrix, census_max_diags=config.cheap_census_max_diags
    )
    prediction, resolved = _cheap_walk(model, cheap)
    cost = cheap.cost_units
    stage = "cheap"
    if not resolved:
        lazy = LazyFeatures(matrix, structure=cheap.structure_snapshot())
        prediction = _model_walk(model, lazy)
        cost += lazy.extraction_cost_spmv_units()
        stage = "full"
    assert prediction is not None
    fmt, confidence, rule = prediction
    return CascadeSelection(fmt, confidence, rule, stage, cost)


def full_select(
    matrix: CSRMatrix, model: LearningModel
) -> CascadeSelection:
    """The always-full selection baseline: one lazy extraction, one walk.

    This is what every pre-cascade decision paid before converting or
    measuring anything — the denominator of the ``tune/cascade_overhead``
    benchmark.
    """
    lazy = LazyFeatures(matrix)
    fmt, confidence, rule = _model_walk(model, lazy)
    return CascadeSelection(
        fmt, confidence, rule, "full", lazy.extraction_cost_spmv_units()
    )


def _estimated_conversion_units(
    fmt: FormatName, cheap: CheapFeatures
) -> float:
    """Price a conversion from bounds alone — same analytic model as
    ``formats.convert.conversion_cost`` but without touching the matrix
    (the real DIA costing walks the diagonal census, which is exactly
    the work the cascade is trying not to pay).  Upper bounds are used,
    so the gate errs toward the floor, never past the budget."""
    if fmt is FormatName.CSR:
        return 0.0
    if fmt is FormatName.COO:
        return 1.5
    nnz = max(cheap.get_bound("nnz")[0], 1.0)
    m = cheap.get_bound("m")[0]
    if fmt is FormatName.ELL:
        max_rd = cheap.get_bound("max_rd")[1]
        return (2.0 * nnz + 2.0 * max_rd * m) / (2.0 * nnz)
    if fmt is FormatName.DIA:
        ndiags = cheap.get_bound("ndiags")[1]
        return (2.0 * nnz + ndiags * m) / (2.0 * nnz)
    return 2.0


def _decide_cascade(
    matrix: CSRMatrix,
    model: LearningModel,
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    config: SmatConfig,
    deadline,
) -> Decision:
    budget = config.tune_budget_units
    est_unit_seconds = _EST_UNIT_SECONDS_PER_NNZ * max(int(matrix.nnz), 1)
    spent = 0.0

    def allows(units_needed: float) -> bool:
        """True when spending ``units_needed`` more CSR-SpMV units fits
        both the explicit budget and the remaining deadline."""
        if budget is not None and spent + units_needed > budget:
            return False
        if deadline is not None:
            seconds = units_needed * est_unit_seconds * _DEADLINE_SAFETY
            if seconds > deadline.remaining():
                return False
        return True

    def floor(
        predicted: FormatName,
        confidence: float,
        rule: Optional[Rule],
    ) -> Decision:
        """Serve the CSR identity plan: zero conversion, never wrong."""
        return Decision(
            format_name=FormatName.CSR,
            kernel=kernels.kernel_for(FormatName.CSR),
            confidence=confidence,
            matched_rule=rule,
            used_fallback=False,
            predicted_format=predicted,
            extraction_units=spent,
            degraded_to_csr=predicted is not FormatName.CSR,
            matrix=matrix,
            cascade_stage="floor",
        )

    # Stage 0 — interval bounds from the O(rows) degree pass.
    cheap = CheapFeatures(
        matrix, census_max_diags=config.cheap_census_max_diags
    )
    prediction, resolved = _cheap_walk(model, cheap)
    spent += cheap.cost_units
    stage = "cheap"
    lazy: Optional[LazyFeatures] = None

    if not resolved:
        # Stage 1 — full extraction, if the structure pass is affordable.
        if not allows(STRUCTURE_COST_SPMV_UNITS):
            return floor(FormatName.CSR, 0.0, None)
        stage = "full"
        lazy = LazyFeatures(matrix, structure=cheap.structure_snapshot())
        prediction = _model_walk(model, lazy)
        spent += lazy.extraction_cost_spmv_units()

    assert prediction is not None
    fmt, confidence, rule = prediction

    if confidence > config.confidence_threshold or config.never_measure:
        if not allows(_estimated_conversion_units(fmt, cheap)):
            return floor(fmt, confidence, rule)
        converted, degraded = _convert_for(matrix, fmt, config)
        actual = converted.format_name
        return Decision(
            format_name=actual,
            kernel=kernels.kernel_for(actual),
            confidence=confidence,
            matched_rule=rule,
            used_fallback=False,
            predicted_format=fmt,
            extraction_units=spent,
            conversion_units=conversion_cost(
                FormatName.CSR, fmt if degraded else actual, matrix
            ),
            degraded_to_csr=degraded,
            matrix=converted,
            cascade_stage=stage,
        )

    # Stage 2 — execute-and-measure, if the whole fallback is affordable.
    candidates = tuple(dict.fromkeys((fmt,) + FALLBACK_CANDIDATES))
    measure_estimate = config.fallback_repeats * len(candidates) + sum(
        _estimated_conversion_units(c, cheap) for c in candidates
    )
    if not allows(measure_estimate):
        return floor(fmt, confidence, rule)
    if lazy is None:
        lazy = LazyFeatures(matrix, structure=cheap.structure_snapshot())
    return _fallback(
        matrix, lazy, candidates, kernels, backend, config,
        predicted=fmt, confidence=confidence, rule=rule,
        extra_extraction_units=cheap.cost_units,
        cascade_stage="measure",
    )


def _fallback(
    matrix: CSRMatrix,
    lazy: LazyFeatures,
    candidates: Tuple[FormatName, ...],
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    config: SmatConfig,
    predicted: FormatName,
    confidence: float,
    rule: Optional[Rule],
    extra_extraction_units: float = 0.0,
    cascade_stage: Optional[str] = None,
) -> Decision:
    """Execute-and-measure: benchmark the candidates, keep the fastest."""
    with obs.span(
        "tune.fallback",
        candidates=",".join(c.value for c in candidates),
    ):
        features = lazy.snapshot()
        with obs.span(
            "tune.measure", format=FormatName.CSR.value, reference=True
        ):
            csr_unit_seconds = backend.measure(
                kernels.kernel_for(FormatName.CSR), matrix, features
            )
        if csr_unit_seconds <= 0.0:
            raise TuningError("CSR reference measurement returned zero time")

        measurements: Dict[FormatName, float] = {}
        converted: Dict[FormatName, SparseMatrix] = {}
        # The CSR reference timing above is real measurement work and
        # belongs in Table 3's column: fallback_repeats runs at one CSR
        # unit each.
        measurement_units = float(config.fallback_repeats)
        for candidate in candidates:
            if candidate is FormatName.CSR:
                # The reference measurement *is* the CSR candidate: same
                # kernel, same matrix (identity conversion).  Reuse it
                # instead of paying a second timing pass.
                converted[candidate] = matrix
                measurements[candidate] = csr_unit_seconds
                continue
            with obs.span("tune.measure", format=candidate.value):
                try:
                    cand_matrix, cost = convert(
                        matrix, candidate, fill_budget=config.fill_budget
                    )
                except ConversionError:
                    continue  # blow-up guard: candidate priced out
                converted[candidate] = cand_matrix
                seconds = backend.measure(
                    kernels.kernel_for(candidate), cand_matrix, features
                )
                measurements[candidate] = seconds
                measurement_units += cost.csr_spmv_units()
                measurement_units += (
                    config.fallback_repeats * seconds / csr_unit_seconds
                )

    if not measurements:
        raise TuningError(
            f"no fallback candidate among {candidates} was convertible"
        )
    best = min(measurements, key=lambda f: measurements[f])
    return Decision(
        format_name=best,
        kernel=kernels.kernel_for(best),
        confidence=confidence,
        matched_rule=rule,
        used_fallback=True,
        predicted_format=predicted,
        measurements=measurements,
        extraction_units=(
            lazy.extraction_cost_spmv_units() + extra_extraction_units
        ),
        conversion_units=0.0,  # conversions are inside measurement_units
        measurement_units=measurement_units,
        matrix=converted[best],
        features=features,
        cascade_stage=cascade_stage,
    )


def _convert_for(
    matrix: CSRMatrix, fmt: FormatName, config: SmatConfig
) -> Tuple[SparseMatrix, bool]:
    """Convert a model-hit prediction, degrading to CSR if the conversion
    blows the zero-fill budget (the model was wrong about feasibility).

    Returns ``(converted, degraded)`` so the caller can charge the wasted
    attempt and surface the degradation on the decision record.
    """
    try:
        out, _ = convert(matrix, fmt, fill_budget=config.fill_budget)
        return out, False
    except ConversionError:
        return matrix, True
