"""The runtime decision procedure (Section 6, Figure 7).

Given an input CSR matrix:

1. extract features lazily (step one now, the power-law fit only if the
   COO group is ever consulted),
2. walk the format groups in DIA, ELL, CSR, COO order; the first group with
   a matching rule is the prediction,
3. if the group's format confidence clears the threshold, done — otherwise
   trigger execute-and-measure over the cheap candidates (CSR, COO and the
   predicted format) and return the measured winner.

Every step's cost is accounted in CSR-SpMV units, reproducing Table 3's
overhead column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import ConversionError, TuningError
from repro.features.incremental import LazyFeatures
from repro.features.parameters import FeatureVector
from repro.formats.base import SparseMatrix
from repro.formats.convert import conversion_cost, convert
from repro.formats.csr import CSRMatrix
from repro.kernels.base import Kernel
from repro.learning.model import LearningModel
from repro.learning.rules import Rule
from repro.machine.measure import MeasurementBackend
from repro.tuner.config import FALLBACK_CANDIDATES, SmatConfig
from repro.tuner.search import KernelSearchResult
from repro.types import FormatName


@dataclass
class Decision:
    """The outcome of one runtime tuning decision."""

    format_name: FormatName
    kernel: Kernel
    confidence: float
    matched_rule: Optional[Rule]
    used_fallback: bool
    #: Format the model predicted (equals format_name on a model hit).
    predicted_format: FormatName
    #: Fallback measurements, seconds per candidate format.
    measurements: Dict[FormatName, float] = field(default_factory=dict)
    #: Overhead accounting, all in units of one CSR SpMV.
    extraction_units: float = 0.0
    conversion_units: float = 0.0
    measurement_units: float = 0.0
    #: True when a model hit predicted a format whose conversion blew the
    #: zero-fill budget and the decision fell back to running CSR; the
    #: wasted attempt is charged in ``conversion_units``.
    degraded_to_csr: bool = False
    #: The matrix already converted to ``format_name`` (fallback path
    #: converts while measuring; the model-hit path converts on demand).
    matrix: Optional[SparseMatrix] = None
    #: Features extracted while deciding (fallback snapshots everything);
    #: downstream consumers — the online learner labelling its training
    #: records — reuse them instead of re-running extraction.  Like
    #: ``matrix``, this is runtime state and is not serialized.
    features: Optional[FeatureVector] = None

    @property
    def overhead_units(self) -> float:
        """Total decision overhead in CSR-SpMV units (Table 3's column)."""
        return (
            self.extraction_units
            + self.conversion_units
            + self.measurement_units
        )

    # ------------------------------------------------------------------
    # Serialization — decisions are loggable/inspectable records.  The
    # converted matrix is deliberately *not* serialized (it can be huge
    # and is rebuildable from the source matrix); ``from_dict`` resolves
    # the kernel from a KernelSearchResult and leaves ``matrix`` None.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready record of this decision (no matrix payload)."""
        return {
            "format": self.format_name.value,
            "kernel_strategies": sorted(
                s.value for s in self.kernel.strategies
            ),
            "confidence": self.confidence,
            "matched_rule": (
                self.matched_rule.to_dict()
                if self.matched_rule is not None
                else None
            ),
            "used_fallback": self.used_fallback,
            "predicted_format": self.predicted_format.value,
            "measurements": {
                fmt.value: seconds
                for fmt, seconds in self.measurements.items()
            },
            "extraction_units": self.extraction_units,
            "conversion_units": self.conversion_units,
            "measurement_units": self.measurement_units,
            "degraded_to_csr": self.degraded_to_csr,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Decision":
        """Rebuild a decision record from :meth:`to_dict` output.

        The kernel is resolved from the registered kernel library by
        (format, strategy set) — the same resolution :meth:`SMAT.load`
        uses — so the record stays portable across processes.
        """
        from repro.kernels.base import find_kernel
        from repro.kernels.strategies import Strategy

        fmt = FormatName(payload["format"])
        strategies = frozenset(
            Strategy(s) for s in payload["kernel_strategies"]  # type: ignore[union-attr]
        )
        rule_payload = payload.get("matched_rule")
        return cls(
            format_name=fmt,
            kernel=find_kernel(fmt, strategies),
            confidence=float(payload["confidence"]),  # type: ignore[arg-type]
            matched_rule=(
                Rule.from_dict(rule_payload)  # type: ignore[arg-type]
                if rule_payload is not None
                else None
            ),
            used_fallback=bool(payload["used_fallback"]),
            predicted_format=FormatName(payload["predicted_format"]),
            measurements={
                FormatName(name): float(seconds)
                for name, seconds in payload["measurements"].items()  # type: ignore[union-attr]
            },
            extraction_units=float(payload["extraction_units"]),  # type: ignore[arg-type]
            conversion_units=float(payload["conversion_units"]),  # type: ignore[arg-type]
            measurement_units=float(payload["measurement_units"]),  # type: ignore[arg-type]
            # Absent in records written before the degrade path was
            # surfaced; those decisions never degraded.
            degraded_to_csr=bool(payload.get("degraded_to_csr", False)),
        )


def rule_matches_lazy(rule: Rule, lazy: LazyFeatures) -> bool:
    """Evaluate a rule against lazily-extracted features.

    Conditions pull exactly the parameters they mention, so a DIA rule never
    triggers the power-law fit — the optimistic early-exit of Section 6.
    """
    return all(
        _condition_matches(cond, lazy) for cond in rule.conditions
    )


def _condition_matches(cond, lazy: LazyFeatures) -> bool:
    value = lazy.get(cond.attribute)
    if cond.operator == "<=":
        return value <= cond.threshold
    return value > cond.threshold


def decide(
    matrix: CSRMatrix,
    model: LearningModel,
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    config: SmatConfig = SmatConfig(),
) -> Decision:
    """Run the full Figure 7 procedure on one input matrix."""
    with obs.span(
        "tune.decide", rows=int(matrix.n_rows), nnz=int(matrix.nnz)
    ) as span:
        decision = _decide(matrix, model, kernels, backend, config)
        if span is not None:
            span.attrs.update(
                format=decision.format_name.value,
                predicted=decision.predicted_format.value,
                confidence=round(decision.confidence, 4),
                used_fallback=decision.used_fallback,
            )
        return decision


def _decide(
    matrix: CSRMatrix,
    model: LearningModel,
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    config: SmatConfig,
) -> Decision:
    lazy = LazyFeatures(matrix)

    if config.always_measure:
        return _fallback(
            matrix, lazy, FALLBACK_CANDIDATES, kernels, backend, config,
            predicted=FormatName.CSR, confidence=0.0, rule=None,
        )

    prediction: Optional[Tuple[FormatName, float, Optional[Rule]]] = None
    for group in model.grouped.groups:
        matched = None
        for rule in group.rules:
            if rule_matches_lazy(rule, lazy):
                matched = rule
                break
        if matched is None:
            continue
        prediction = (group.format_name, group.format_confidence, matched)
        break

    if prediction is None:
        prediction = (model.grouped.default_format, 0.0, None)

    fmt, confidence, rule = prediction
    if confidence > config.confidence_threshold or config.never_measure:
        converted, degraded = _convert_for(matrix, fmt, config)
        # A blown zero-fill budget degrades the prediction to CSR: the
        # model was wrong about feasibility, and running CSR beats paying
        # a pathological conversion.  The abandoned attempt still walked
        # the matrix to price its fill, so the *predicted* format's
        # conversion is what Table 3 charges — not the free CSR identity.
        actual = converted.format_name
        return Decision(
            format_name=actual,
            kernel=kernels.kernel_for(actual),
            confidence=confidence,
            matched_rule=rule,
            used_fallback=False,
            predicted_format=fmt,
            extraction_units=lazy.extraction_cost_spmv_units(),
            conversion_units=conversion_cost(
                FormatName.CSR, fmt if degraded else actual, matrix
            ),
            degraded_to_csr=degraded,
            matrix=converted,
        )

    candidates = tuple(dict.fromkeys((fmt,) + FALLBACK_CANDIDATES))
    return _fallback(
        matrix, lazy, candidates, kernels, backend, config,
        predicted=fmt, confidence=confidence, rule=rule,
    )


def _fallback(
    matrix: CSRMatrix,
    lazy: LazyFeatures,
    candidates: Tuple[FormatName, ...],
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    config: SmatConfig,
    predicted: FormatName,
    confidence: float,
    rule: Optional[Rule],
) -> Decision:
    """Execute-and-measure: benchmark the candidates, keep the fastest."""
    with obs.span(
        "tune.fallback",
        candidates=",".join(c.value for c in candidates),
    ):
        features = lazy.snapshot()
        with obs.span(
            "tune.measure", format=FormatName.CSR.value, reference=True
        ):
            csr_unit_seconds = backend.measure(
                kernels.kernel_for(FormatName.CSR), matrix, features
            )
        if csr_unit_seconds <= 0.0:
            raise TuningError("CSR reference measurement returned zero time")

        measurements: Dict[FormatName, float] = {}
        converted: Dict[FormatName, SparseMatrix] = {}
        # The CSR reference timing above is real measurement work and
        # belongs in Table 3's column: fallback_repeats runs at one CSR
        # unit each.
        measurement_units = float(config.fallback_repeats)
        for candidate in candidates:
            if candidate is FormatName.CSR:
                # The reference measurement *is* the CSR candidate: same
                # kernel, same matrix (identity conversion).  Reuse it
                # instead of paying a second timing pass.
                converted[candidate] = matrix
                measurements[candidate] = csr_unit_seconds
                continue
            with obs.span("tune.measure", format=candidate.value):
                try:
                    cand_matrix, cost = convert(
                        matrix, candidate, fill_budget=config.fill_budget
                    )
                except ConversionError:
                    continue  # blow-up guard: candidate priced out
                converted[candidate] = cand_matrix
                seconds = backend.measure(
                    kernels.kernel_for(candidate), cand_matrix, features
                )
                measurements[candidate] = seconds
                measurement_units += cost.csr_spmv_units()
                measurement_units += (
                    config.fallback_repeats * seconds / csr_unit_seconds
                )

    if not measurements:
        raise TuningError(
            f"no fallback candidate among {candidates} was convertible"
        )
    best = min(measurements, key=lambda f: measurements[f])
    return Decision(
        format_name=best,
        kernel=kernels.kernel_for(best),
        confidence=confidence,
        matched_rule=rule,
        used_fallback=True,
        predicted_format=predicted,
        measurements=measurements,
        extraction_units=lazy.extraction_cost_spmv_units(),
        conversion_units=0.0,  # conversions are inside measurement_units
        measurement_units=measurement_units,
        matrix=converted[best],
        features=features,
    )


def _convert_for(
    matrix: CSRMatrix, fmt: FormatName, config: SmatConfig
) -> Tuple[SparseMatrix, bool]:
    """Convert a model-hit prediction, degrading to CSR if the conversion
    blows the zero-fill budget (the model was wrong about feasibility).

    Returns ``(converted, degraded)`` so the caller can charge the wasted
    attempt and surface the degradation on the decision record.
    """
    try:
        out, _ = convert(matrix, fmt, fill_budget=config.fill_budget)
        return out, False
    except ConversionError:
        return matrix, True
