"""The SMAT auto-tuner core (Figures 4 and 7)."""

from repro.tuner.config import (
    DEFAULT_CONFIDENCE_THRESHOLD,
    FALLBACK_CANDIDATES,
    SmatConfig,
)
from repro.tuner.interface import (
    default_smat,
    reset_default_smat,
    smat_dcsr_spmv,
    smat_scsr_spmv,
)
from repro.tuner.runtime import Decision, decide, rule_matches_lazy
from repro.tuner.scoreboard import (
    NEGLECT_GAP,
    PerformanceTable,
    ScoreboardResult,
    run_scoreboard,
)
from repro.tuner.search import (
    KernelSearchResult,
    probe_matrix,
    search_kernels,
)
from repro.tuner.online import OnlineSmat
from repro.tuner.stats import DecisionLog, LoggingSmat
from repro.tuner.smat import (
    SMAT,
    PreparedSpMV,
    build_training_dataset,
    label_matrix,
)

__all__ = [
    "DEFAULT_CONFIDENCE_THRESHOLD",
    "Decision",
    "DecisionLog",
    "LoggingSmat",
    "OnlineSmat",
    "FALLBACK_CANDIDATES",
    "KernelSearchResult",
    "NEGLECT_GAP",
    "PerformanceTable",
    "PreparedSpMV",
    "SMAT",
    "ScoreboardResult",
    "SmatConfig",
    "build_training_dataset",
    "decide",
    "default_smat",
    "label_matrix",
    "probe_matrix",
    "reset_default_smat",
    "rule_matches_lazy",
    "run_scoreboard",
    "search_kernels",
    "smat_dcsr_spmv",
    "smat_scsr_spmv",
]
