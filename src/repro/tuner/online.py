"""Online model improvement (Section 3's extensibility claim).

"It is also open to add new matrices and corresponding records into the
database to improve the prediction accuracy."  ``OnlineSmat`` implements
that loop: every execute-and-measure fallback already *measured* the true
best format of its input, so the outcome is a free labelled training
record.  The wrapper accumulates these records and retrains the ruleset
after every ``retrain_every`` new observations — the model sharpens exactly
in the regions where it was unsure.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from repro.features.extract import extract_features
from repro.features.parameters import FeatureVector
from repro.formats.csr import CSRMatrix
from repro.learning.dataset import TrainingDataset
from repro.learning.model import LearningModel, train_model
from repro.tuner.runtime import Decision
from repro.tuner.smat import SMAT


class OnlineSmat:
    """An SMAT wrapper that learns from its own fallback measurements.

    Safe for concurrent use: the record store and the retrain trigger sit
    behind one lock, so threads sharing an instance (e.g. the workers of a
    :class:`repro.serve.ServingEngine`) can never corrupt the accumulated
    records or observe a half-built dataset.  The expensive parts — the
    decision itself and the feature extraction — run outside the lock; only
    the append/retrain critical section serializes.

    Each successful retrain (or externally pushed model, see
    :meth:`install_model`) bumps ``model_epoch``; serving layers snapshot
    the epoch to observe hot-swaps without comparing model objects.
    """

    def __init__(
        self,
        smat: SMAT,
        base_dataset: Optional[TrainingDataset] = None,
        retrain_every: int = 25,
        min_leaf: int = 8,
        max_depth: int = 10,
    ) -> None:
        if retrain_every < 1:
            raise ValueError(
                f"retrain_every must be >= 1, got {retrain_every}"
            )
        self.smat = smat
        self.base_records: List[FeatureVector] = (
            list(base_dataset.records) if base_dataset else []
        )
        self.new_records: List[FeatureVector] = []
        self.retrain_every = retrain_every
        self.min_leaf = min_leaf
        self.max_depth = max_depth
        self.retrain_count = 0
        #: Monotonic model version; bumped on every successful swap.
        self.model_epoch = 0
        #: Records appended since the last *successful* retrain.  A plain
        #: ``len(new_records) % retrain_every`` trigger only fires on exact
        #: multiples, so a retrain skipped for a single-class dataset
        #: would silently never be retried until the next boundary; this
        #: counter re-arms after ``retrain_every`` more records instead.
        self._records_since_retrain = 0
        #: Guards new_records and the retrain trigger; reentrant so a
        #: caller holding the lock can still read ``observations``.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def decide(self, matrix: CSRMatrix, deadline=None) -> Decision:
        decision = self.smat.decide(matrix, deadline=deadline)
        if decision.used_fallback and decision.measurements:
            # The fallback measured the candidates: its winner is a label.
            # The decision already snapshotted every feature on the way to
            # measuring, so extracting again would double the Table-3
            # extraction cost for nothing.
            features = (
                decision.features
                if decision.features is not None
                else extract_features(matrix)
            )
            best = min(
                decision.measurements,
                key=lambda fmt: decision.measurements[fmt],
            )
            with self._lock:
                self.new_records.append(features.with_label(best))
                self._records_since_retrain += 1
                if self._records_since_retrain >= self.retrain_every:
                    if self._retrain():
                        self._records_since_retrain = 0
        return decision

    def spmv(self, matrix: CSRMatrix, x):
        decision = self.decide(matrix)
        if decision.matrix is None:
            # Decisions deserialized from records (or degraded mid-build)
            # carry no converted matrix; rebuild it under the *configured*
            # fill budget — `fill_budget=None` here would happily pay a
            # pathological DIA/ELL blow-up the tuner itself refuses.
            from repro.errors import ConversionError
            from repro.formats.convert import convert
            from repro.types import FormatName

            try:
                decision.matrix, _ = convert(
                    matrix,
                    decision.format_name,
                    fill_budget=self.smat.config.fill_budget,
                )
            except ConversionError:
                # Same degrade path the tuner takes on a blown budget:
                # run the CSR identity instead of a pathological fill.
                decision = Decision(
                    format_name=FormatName.CSR,
                    kernel=self.smat.kernels.kernel_for(FormatName.CSR),
                    confidence=decision.confidence,
                    matched_rule=decision.matched_rule,
                    used_fallback=decision.used_fallback,
                    predicted_format=decision.predicted_format,
                    measurements=decision.measurements,
                    extraction_units=decision.extraction_units,
                    conversion_units=decision.conversion_units,
                    measurement_units=decision.measurement_units,
                    degraded_to_csr=True,
                    matrix=matrix,
                    features=decision.features,
                    cascade_stage=decision.cascade_stage,
                )
        return decision.kernel(decision.matrix, x), decision

    # ------------------------------------------------------------------
    def _retrain(self) -> bool:
        """Rebuild the model from all records; caller holds the lock.

        Returns True on a successful swap.  The model swap is a single
        attribute assignment, so concurrent ``decide`` calls running
        outside the lock see either the old or the new model, never a
        partial one; ``model_epoch`` is bumped *after* the swap so an
        observed epoch change guarantees the new model is visible.
        """
        records = tuple(self.base_records) + tuple(self.new_records)
        if not records:
            return False
        dataset = TrainingDataset(records)
        if len(dataset.class_counts()) < 2:
            return False  # nothing to learn from one class
        self.smat.model = train_model(
            dataset, min_leaf=self.min_leaf, max_depth=self.max_depth
        )
        self.retrain_count += 1
        self.model_epoch += 1
        return True

    def install_model(self, model: LearningModel) -> int:
        """Hot-swap an externally trained model (cluster model push).

        Returns the new epoch.  Does not count as a retrain — the
        training happened elsewhere.
        """
        with self._lock:
            self.smat.model = model
            self.model_epoch += 1
            return self.model_epoch

    @property
    def observations(self) -> int:
        """Fallback-derived records accumulated so far."""
        with self._lock:
            return len(self.new_records)

    def records_snapshot(self) -> Tuple[FeatureVector, ...]:
        """A consistent copy of the accumulated fallback records."""
        with self._lock:
            return tuple(self.new_records)

    def __getattr__(self, name: str):
        return getattr(self.smat, name)
