"""Online model improvement (Section 3's extensibility claim).

"It is also open to add new matrices and corresponding records into the
database to improve the prediction accuracy."  ``OnlineSmat`` implements
that loop: every execute-and-measure fallback already *measured* the true
best format of its input, so the outcome is a free labelled training
record.  The wrapper accumulates these records and retrains the ruleset
after every ``retrain_every`` new observations — the model sharpens exactly
in the regions where it was unsure.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from repro.features.extract import extract_features
from repro.features.parameters import FeatureVector
from repro.formats.csr import CSRMatrix
from repro.learning.dataset import TrainingDataset
from repro.learning.model import train_model
from repro.tuner.runtime import Decision
from repro.tuner.smat import SMAT


class OnlineSmat:
    """An SMAT wrapper that learns from its own fallback measurements.

    Safe for concurrent use: the record store and the retrain trigger sit
    behind one lock, so threads sharing an instance (e.g. the workers of a
    :class:`repro.serve.ServingEngine`) can never corrupt the accumulated
    records or observe a half-built dataset.  The expensive parts — the
    decision itself and the feature extraction — run outside the lock; only
    the append/retrain critical section serializes.
    """

    def __init__(
        self,
        smat: SMAT,
        base_dataset: Optional[TrainingDataset] = None,
        retrain_every: int = 25,
        min_leaf: int = 8,
        max_depth: int = 10,
    ) -> None:
        if retrain_every < 1:
            raise ValueError(
                f"retrain_every must be >= 1, got {retrain_every}"
            )
        self.smat = smat
        self.base_records: List[FeatureVector] = (
            list(base_dataset.records) if base_dataset else []
        )
        self.new_records: List[FeatureVector] = []
        self.retrain_every = retrain_every
        self.min_leaf = min_leaf
        self.max_depth = max_depth
        self.retrain_count = 0
        #: Guards new_records and the retrain trigger; reentrant so a
        #: caller holding the lock can still read ``observations``.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def decide(self, matrix: CSRMatrix) -> Decision:
        decision = self.smat.decide(matrix)
        if decision.used_fallback and decision.measurements:
            # The fallback measured the candidates: its winner is a label.
            # The decision already snapshotted every feature on the way to
            # measuring, so extracting again would double the Table-3
            # extraction cost for nothing.
            features = (
                decision.features
                if decision.features is not None
                else extract_features(matrix)
            )
            best = min(
                decision.measurements,
                key=lambda fmt: decision.measurements[fmt],
            )
            with self._lock:
                self.new_records.append(features.with_label(best))
                if len(self.new_records) % self.retrain_every == 0:
                    self._retrain()
        return decision

    def spmv(self, matrix: CSRMatrix, x):
        decision = self.decide(matrix)
        if decision.matrix is None:  # pragma: no cover - decide sets it
            from repro.formats.convert import convert

            decision.matrix, _ = convert(
                matrix, decision.format_name, fill_budget=None
            )
        return decision.kernel(decision.matrix, x), decision

    # ------------------------------------------------------------------
    def _retrain(self) -> None:
        """Rebuild the model from all records; caller holds the lock.

        The model swap is a single attribute assignment, so concurrent
        ``decide`` calls running outside the lock see either the old or
        the new model, never a partial one.
        """
        records = tuple(self.base_records) + tuple(self.new_records)
        if not records:
            return
        dataset = TrainingDataset(records)
        if len(dataset.class_counts()) < 2:
            return  # nothing to learn from one class
        self.smat.model = train_model(
            dataset, min_leaf=self.min_leaf, max_depth=self.max_depth
        )
        self.retrain_count += 1

    @property
    def observations(self) -> int:
        """Fallback-derived records accumulated so far."""
        with self._lock:
            return len(self.new_records)

    def records_snapshot(self) -> Tuple[FeatureVector, ...]:
        """A consistent copy of the accumulated fallback records."""
        with self._lock:
            return tuple(self.new_records)

    def __getattr__(self, name: str):
        return getattr(self.smat, name)
