"""Online model improvement (Section 3's extensibility claim).

"It is also open to add new matrices and corresponding records into the
database to improve the prediction accuracy."  ``OnlineSmat`` implements
that loop: every execute-and-measure fallback already *measured* the true
best format of its input, so the outcome is a free labelled training
record.  The wrapper accumulates these records and retrains the ruleset
after every ``retrain_every`` new observations — the model sharpens exactly
in the regions where it was unsure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.features.extract import extract_features
from repro.features.parameters import FeatureVector
from repro.formats.csr import CSRMatrix
from repro.learning.dataset import TrainingDataset
from repro.learning.model import train_model
from repro.tuner.runtime import Decision
from repro.tuner.smat import SMAT


class OnlineSmat:
    """An SMAT wrapper that learns from its own fallback measurements."""

    def __init__(
        self,
        smat: SMAT,
        base_dataset: Optional[TrainingDataset] = None,
        retrain_every: int = 25,
        min_leaf: int = 8,
        max_depth: int = 10,
    ) -> None:
        if retrain_every < 1:
            raise ValueError(
                f"retrain_every must be >= 1, got {retrain_every}"
            )
        self.smat = smat
        self.base_records: List[FeatureVector] = (
            list(base_dataset.records) if base_dataset else []
        )
        self.new_records: List[FeatureVector] = []
        self.retrain_every = retrain_every
        self.min_leaf = min_leaf
        self.max_depth = max_depth
        self.retrain_count = 0

    # ------------------------------------------------------------------
    def decide(self, matrix: CSRMatrix) -> Decision:
        decision = self.smat.decide(matrix)
        if decision.used_fallback and decision.measurements:
            # The fallback measured the candidates: its winner is a label.
            features = extract_features(matrix)
            best = min(
                decision.measurements,
                key=lambda fmt: decision.measurements[fmt],
            )
            self.new_records.append(features.with_label(best))
            if len(self.new_records) % self.retrain_every == 0:
                self._retrain()
        return decision

    def spmv(self, matrix: CSRMatrix, x):
        decision = self.decide(matrix)
        if decision.matrix is None:  # pragma: no cover - decide sets it
            from repro.formats.convert import convert

            decision.matrix, _ = convert(
                matrix, decision.format_name, fill_budget=None
            )
        return decision.kernel(decision.matrix, x), decision

    # ------------------------------------------------------------------
    def _retrain(self) -> None:
        records = tuple(self.base_records) + tuple(self.new_records)
        if not records:
            return
        dataset = TrainingDataset(records)
        if len(dataset.class_counts()) < 2:
            return  # nothing to learn from one class
        self.smat.model = train_model(
            dataset, min_leaf=self.min_leaf, max_depth=self.max_depth
        )
        self.retrain_count += 1

    @property
    def observations(self) -> int:
        """Fallback-derived records accumulated so far."""
        return len(self.new_records)

    def __getattr__(self, name: str):
        return getattr(self.smat, name)
