"""The unified programming interface (Figure 5).

Where MKL exposes six per-format calls (``mkl_xcsrgemv``, ``mkl_xdiagemv``,
...), SMAT exposes exactly one per precision, taking the matrix in CSR
arrays.  ``SMAT_xCSR_SpMV`` here becomes :func:`smat_scsr_spmv` (single) and
:func:`smat_dcsr_spmv` (double).

A module-level default tuner is trained lazily on first use (on a reduced
synthetic collection, a few seconds) so the interface works out of the box;
serious users train their own :class:`repro.tuner.SMAT` and pass it in.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.machine.measure import SimulatedBackend
from repro.machine.presets import INTEL_XEON_X5680
from repro.tuner.smat import SMAT
from repro.types import Precision

_DEFAULT_TRAIN_SCALE = 0.05
_default_lock = threading.Lock()
_default_smat: Optional[SMAT] = None


def default_smat() -> SMAT:
    """The lazily-trained module-level tuner (simulated Intel backend)."""
    global _default_smat
    with _default_lock:
        if _default_smat is None:
            from repro.collection import generate_collection

            backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
            _default_smat = SMAT.train(
                generate_collection(
                    scale=_DEFAULT_TRAIN_SCALE, size_scale=0.5
                ),
                backend=backend,
            )
        return _default_smat


def reset_default_smat() -> None:
    """Drop the cached default tuner (tests use this)."""
    global _default_smat
    with _default_lock:
        _default_smat = None


def _csr_spmv(
    ptr: Sequence[int],
    indices: Sequence[int],
    data: Sequence[float],
    shape: Tuple[int, int],
    x: np.ndarray,
    dtype: np.dtype,
    smat: Optional[SMAT],
) -> np.ndarray:
    matrix = CSRMatrix(
        np.asarray(ptr),
        np.asarray(indices),
        np.asarray(data, dtype=dtype),
        shape,
    )
    tuner = smat or default_smat()
    y, _ = tuner.spmv(matrix, np.asarray(x, dtype=dtype))
    return y


def smat_scsr_spmv(
    ptr: Sequence[int],
    indices: Sequence[int],
    data: Sequence[float],
    shape: Tuple[int, int],
    x: np.ndarray,
    smat: Optional[SMAT] = None,
) -> np.ndarray:
    """Single-precision unified SpMV (the paper's ``SMAT_sCSR_SpMV``)."""
    return _csr_spmv(ptr, indices, data, shape, x, np.dtype(np.float32), smat)


def smat_dcsr_spmv(
    ptr: Sequence[int],
    indices: Sequence[int],
    data: Sequence[float],
    shape: Tuple[int, int],
    x: np.ndarray,
    smat: Optional[SMAT] = None,
) -> np.ndarray:
    """Double-precision unified SpMV (the paper's ``SMAT_dCSR_SpMV``)."""
    return _csr_spmv(ptr, indices, data, shape, x, np.dtype(np.float64), smat)
