"""Structured tracing: nestable spans on the monotonic clock.

One served (or directly tuned) SpMV request produces one *span tree*: a
root span covering the whole request with nested children for each
pipeline stage — queue wait, plan resolution, feature extraction, rule
decision, conversion, kernel execution.  The paper's overhead analysis
(Table 3 / Figure 9) reports exactly this per-stage breakdown; the tracer
makes it observable per request instead of in aggregate.

Design constraints, in order:

* **Near-zero cost when disabled.**  Library seams guard with
  ``obs.get_tracer()`` (one global read + ``is None`` check) before
  building any attribute dict, and :func:`repro.obs.span` returns a
  shared no-op context manager, so a disabled process allocates nothing
  per call.
* **Monotonic clock only.**  Spans are timed with
  :func:`time.perf_counter_ns`; no wall-clock API is ever called in a
  span body, so traces are immune to clock steps and NTP slews and the
  timings are integer nanoseconds end to end.
* **Thread-safe.**  The *current span* is thread-local (nesting follows
  each thread's own call stack), while cross-thread stitching — a request
  submitted on a client thread and executed on a worker — passes the
  parent span explicitly.  Attachment and completion are serialized on
  one tracer lock; spans are few (tens per request), so contention is
  negligible next to the work being traced.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
]

#: Sentinel distinguishing "no explicit parent given" (follow the calling
#: thread's current span) from "explicitly a root" (``parent=None``).
_FOLLOW_THREAD = object()


class Span:
    """One timed, attributed interval in a trace tree.

    ``start_ns``/``end_ns`` are raw :func:`time.perf_counter_ns` readings
    — meaningful only relative to other spans of the same process; the
    exporters rebase them to the trace start.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "trace_id",
        "parent_id",
        "thread_id",
        "thread_name",
        "start_ns",
        "end_ns",
        "status",
        "error",
        "children",
    )

    def __init__(
        self,
        name: str,
        attrs: Dict[str, object],
        span_id: int,
        trace_id: int,
        parent_id: Optional[int],
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.status = "open"
        self.error: Optional[str] = None
        self.children: List["Span"] = []

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        """Span length in nanoseconds (0 while still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def self_ns(self) -> int:
        """Exclusive time: duration minus the time inside direct children.

        Summing ``self_ns`` over a whole tree reproduces the root's
        duration exactly (each nanosecond is attributed to exactly one
        span), which is what lets the overhead report reconcile against
        wall-clock request latency.
        """
        return self.duration_ns - sum(c.duration_ns for c in self.children)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, children by
        start time."""
        ordered = sorted(self.children, key=lambda s: s.start_ns)
        return itertools.chain(
            (self,), *(child.walk() for child in ordered)
        )

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree, in start order."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"dur={self.duration_ns}ns, children={len(self.children)})"
        )


class _NullSpanContext:
    """The shared no-op returned when tracing is off: enter/exit do
    nothing, so ``with obs.span(...)`` costs two attribute calls."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


#: The singleton no-op context manager (identity-checkable in tests).
NULL_SPAN = _NullSpanContext()


class _ActiveSpan:
    """Context manager running one span on the calling thread's stack."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_span")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: object,
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        span = self._tracer.begin(
            self._name, parent=self._parent, **self._attrs
        )
        self._span = span
        self._tracer._push(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._span is not None
        self._tracer._pop(self._span)
        self._tracer.end(self._span, error=exc)


class Tracer:
    """Collects span trees; one per root span (usually one per request).

    >>> tracer = Tracer()
    >>> with tracer.span("serve.request", nnz=1234) as root:
    ...     with tracer.span("tune.decide"):
    ...         pass
    >>> [s.name for s in tracer.roots()[0].walk()]
    ['serve.request', 'tune.decide']

    ``sink`` is called with every *completed* span (e.g. to feed latency
    histograms in a metrics registry); ``max_roots`` bounds memory for
    long-running processes by dropping the oldest finished trees.
    """

    def __init__(
        self,
        sink: Optional[Callable[[Span], None]] = None,
        max_roots: Optional[int] = None,
    ) -> None:
        if max_roots is not None and max_roots < 1:
            raise ValueError(f"max_roots must be >= 1, got {max_roots}")
        self.sink = sink
        self.enabled = True
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._roots: Deque[Span] = deque(maxlen=max_roots)
        self._dropped = 0
        self._finished_spans = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Thread-local current-span stack
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, parent: object = _FOLLOW_THREAD, **attrs):
        """Context manager for one span.

        With no explicit ``parent`` the span nests under the calling
        thread's current span; ``parent=None`` forces a new root;
        ``parent=<Span>`` stitches across threads (the serving engine
        parents worker-side spans under the client-side request root).
        """
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, parent, attrs)

    def begin(
        self, name: str, parent: object = _FOLLOW_THREAD, **attrs
    ) -> Span:
        """Manually start a span (caller must :meth:`end` it).

        Used where a span's start and end live in different scopes or
        threads — the queue-wait span starts at submit on the client
        thread and ends at dequeue on a worker.
        """
        if parent is _FOLLOW_THREAD:
            resolved: Optional[Span] = self.current()
        else:
            resolved = parent  # type: ignore[assignment]
        span_id = next(self._ids)
        span = Span(
            name,
            attrs,
            span_id=span_id,
            trace_id=resolved.trace_id if resolved is not None else span_id,
            parent_id=resolved.span_id if resolved is not None else None,
        )
        if resolved is not None:
            with self._lock:
                resolved.children.append(span)
        return span

    def end(
        self, span: Span, error: Optional[BaseException] = None, **attrs
    ) -> None:
        """Finish ``span``, attach it to its tree, and feed the sink."""
        if span.end_ns is not None:
            return  # idempotent: racing enders keep the first reading
        span.end_ns = time.perf_counter_ns()
        if attrs:
            span.attrs.update(attrs)
        if error is not None:
            span.status = "error"
            span.error = f"{type(error).__name__}: {error}"
        else:
            span.status = "ok"
        with self._lock:
            self._finished_spans += 1
            if span.parent_id is None:
                if (
                    self._roots.maxlen is not None
                    and len(self._roots) == self._roots.maxlen
                ):
                    self._dropped += 1
                self._roots.append(span)
        if self.sink is not None:
            self.sink(span)

    # ------------------------------------------------------------------
    # Collected traces
    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def drain(self) -> List[Span]:
        """Pop and return every finished root span."""
        with self._lock:
            roots = list(self._roots)
            self._roots.clear()
            return roots

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self._dropped = 0
            self._finished_spans = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "roots": len(self._roots),
                "dropped_roots": self._dropped,
                "finished_spans": self._finished_spans,
            }
