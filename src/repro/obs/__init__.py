"""``repro.obs`` — end-to-end tracing & profiling for the SMAT pipeline.

The tuning-and-serving pipeline has one story to tell per request —
*where did the time go?* — and this package tells it:

* :class:`Tracer` / :class:`Span` (``repro.obs.tracer``): nestable,
  thread-safe spans on the monotonic clock, near-zero cost when
  disabled.
* Exports (``repro.obs.export``): JSONL span records and Chrome
  trace-event JSON loadable in ``chrome://tracing`` / Perfetto.
* Reports (``repro.obs.report``): per-stage overhead breakdown (the
  serving-side analogue of the paper's Table 3) and span-tree rendering.

The library's hot seams — feature extraction, the rule decision and
execute-and-measure fallback, format conversion, kernel dispatch, and
the serve request lifecycle — trace themselves through the *installed*
tracer:

>>> from repro import obs
>>> tracer = obs.install(obs.Tracer())
>>> y, decision = smat.spmv(matrix, x)     # traced end to end
>>> print(obs.report.render_tree(tracer.roots()[0]))
>>> obs.uninstall()

With no tracer installed (the default), every seam reduces to one global
read plus an ``is None`` check — no spans, no allocations — so
production code pays nothing until someone turns tracing on.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs import export, report, tracer
from repro.obs.export import (
    chrome_trace,
    span_records,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import (
    OverheadReport,
    overhead_report,
    render_tree,
)
from repro.obs.tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "NULL_SPAN",
    "OverheadReport",
    "Span",
    "Tracer",
    "chrome_trace",
    "get_tracer",
    "install",
    "installed",
    "metrics_sink",
    "overhead_report",
    "render_tree",
    "span",
    "span_records",
    "to_jsonl",
    "uninstall",
    "write_chrome_trace",
    "write_jsonl",
]

#: The process-wide installed tracer (None = tracing disabled).  A plain
#: module global: reads are atomic, and the hot seams only ever *read*.
_active: Optional[Tracer] = None


def install(new_tracer: Tracer) -> Tracer:
    """Install ``new_tracer`` as the process-wide tracer; returns it."""
    global _active
    _active = new_tracer
    return new_tracer


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the previously installed tracer."""
    global _active
    previous, _active = _active, None
    return previous


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled.

    Hot paths guard on this *before* building span attributes so a
    disabled process allocates nothing per call.
    """
    return _active


def span(name: str, **attrs):
    """Span context manager on the installed tracer (no-op when off).

    The convenience for cold paths; hot loops use the explicit
    :func:`get_tracer` guard to avoid even the ``attrs`` dict when
    tracing is disabled.
    """
    active = _active
    if active is None:
        return NULL_SPAN
    return active.span(name, **attrs)


class installed:
    """Context manager installing a tracer for a scope (tests, CLI).

    >>> with obs.installed(obs.Tracer()) as tracer:
    ...     smat.spmv(matrix, x)
    ... # previous tracer (usually None) restored on exit
    """

    def __init__(self, new_tracer: Tracer) -> None:
        self.tracer = new_tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        global _active
        self._previous = _active
        _active = self.tracer
        return self.tracer

    def __exit__(self, *exc_info: object) -> None:
        global _active
        _active = self._previous


def metrics_sink(registry) -> Callable[[Span], None]:
    """A tracer sink feeding span durations into a metrics registry.

    Every completed span observes the histogram named after its stage
    (``serve.plan`` → ``span_serve_plan_seconds``), so the latency
    histograms operators already watch and the traces they drill into
    are produced by the same clock readings — they cannot disagree.

    ``registry`` is duck-typed (anything with ``histogram(name)``
    returning an object with ``observe(seconds)``), which keeps
    ``repro.obs`` dependency-free of ``repro.serve``.
    """

    def sink(span: Span) -> None:
        name = "span_" + span.name.replace(".", "_") + "_seconds"
        registry.histogram(name).observe(span.duration_seconds)

    return sink
