"""Trace exporters: JSONL span records and Chrome trace-event JSON.

Two formats, two audiences:

* **JSONL** — one flat JSON object per span, grep/jq-friendly, stable
  keys.  The format of record for log pipelines and the property tests.
* **Chrome trace events** — the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load
  directly.  Spans become complete (``"ph": "X"``) events with
  microsecond timestamps rebased to the earliest span, plus ``"M"``
  metadata events naming each thread, so a served request renders as a
  per-thread flame chart — queue wait on the client lane, plan build and
  kernel execution on the worker lanes.

Timestamps everywhere derive from the spans' ``perf_counter_ns``
readings; the exporters never consult any clock of their own.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

from repro.obs.tracer import Span

__all__ = [
    "chrome_trace",
    "span_records",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]


def _jsonable(value: object) -> object:
    """Coerce attribute values to JSON-stable primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def span_records(roots: Iterable[Span]) -> List[Dict[str, object]]:
    """Every span of every tree as one flat, JSON-ready dict per span."""
    records: List[Dict[str, object]] = []
    for root in roots:
        for span in root.walk():
            records.append(
                {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "name": span.name,
                    "start_ns": span.start_ns,
                    "duration_ns": span.duration_ns,
                    "thread_id": span.thread_id,
                    "thread_name": span.thread_name,
                    "status": span.status,
                    "error": span.error,
                    "attrs": {
                        key: _jsonable(val)
                        for key, val in sorted(span.attrs.items())
                    },
                }
            )
    return records


def to_jsonl(roots: Iterable[Span]) -> str:
    """All spans as newline-delimited JSON (one span per line)."""
    return "\n".join(
        json.dumps(record, sort_keys=True) for record in span_records(roots)
    )


def write_jsonl(roots: Iterable[Span], path: Path) -> int:
    """Write the JSONL export; returns the number of span lines."""
    records = span_records(roots)
    Path(path).write_text(
        "\n".join(json.dumps(r, sort_keys=True) for r in records)
        + ("\n" if records else "")
    )
    return len(records)


def chrome_trace(roots: Sequence[Span]) -> Dict[str, object]:
    """The span trees as a Chrome trace-event JSON document.

    Every span becomes one complete ``"X"`` event; ``ts``/``dur`` are in
    microseconds rebased so the earliest span starts at 0 (Chrome's
    expectation).  ``cat`` is the span name's first dot-segment, which
    Perfetto uses for filtering (``serve``, ``tune``, ``kernel``, ...).
    """
    spans = [span for root in roots for span in root.walk()]
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(span.start_ns for span in spans)
    events: List[Dict[str, object]] = []
    threads: Dict[int, str] = {}
    for span in spans:
        threads.setdefault(span.thread_id, span.thread_name)
        args: Dict[str, object] = {
            key: _jsonable(val) for key, val in sorted(span.attrs.items())
        }
        args["trace_id"] = span.trace_id
        if span.error is not None:
            args["error"] = span.error
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": (span.start_ns - t0) / 1_000.0,
                "dur": span.duration_ns / 1_000.0,
                "pid": 1,
                "tid": span.thread_id,
                "args": args,
            }
        )
    for tid, name in sorted(threads.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(roots: Sequence[Span], path: Path) -> int:
    """Write the Chrome trace; returns the number of ``"X"`` span events."""
    document = chrome_trace(roots)
    Path(path).write_text(json.dumps(document, indent=1))
    return sum(
        1
        for event in document["traceEvents"]  # type: ignore[union-attr]
        if event["ph"] == "X"
    )
