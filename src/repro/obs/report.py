"""Per-stage overhead aggregation and span-tree rendering.

The paper's overhead analysis attributes each tuned SpMV's latency to its
pipeline stages — feature extraction, rule decision, measurement
fallback, conversion, kernel — in units of one CSR SpMV (Table 3).
:func:`overhead_report` is the serving-side analogue over traced
requests: every span's *exclusive* time (duration minus direct children)
is attributed to its stage name, so the stage totals partition each
request's latency exactly — summed stage time reconciles with wall-clock
root duration to the nanosecond, with any instrumentation gap showing up
honestly as the root span's own self-time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.obs.tracer import Span

__all__ = [
    "OverheadReport",
    "StageStats",
    "overhead_report",
    "render_tree",
]


@dataclass
class StageStats:
    """Aggregated exclusive time for one span name across traces."""

    name: str
    count: int = 0
    self_ns: int = 0
    total_ns: int = 0
    errors: int = 0

    @property
    def self_seconds(self) -> float:
        return self.self_ns / 1e9

    @property
    def total_seconds(self) -> float:
        return self.total_ns / 1e9

    @property
    def mean_self_seconds(self) -> float:
        return self.self_seconds / self.count if self.count else 0.0


@dataclass
class OverheadReport:
    """Stage breakdown over a set of root spans (requests)."""

    stages: List[StageStats]
    requests: int
    #: Sum of the root spans' durations — the wall-clock latency the
    #: stage self-times must add up to.
    wall_ns: int

    @property
    def wall_seconds(self) -> float:
        return self.wall_ns / 1e9

    @property
    def accounted_ns(self) -> int:
        """Total self-time attributed to stages (== ``wall_ns`` when the
        trees are complete; the identity the tests assert)."""
        return sum(stage.self_ns for stage in self.stages)

    @property
    def accounted_fraction(self) -> float:
        """Fraction of wall-clock latency the stages account for."""
        if self.wall_ns <= 0:
            return 1.0
        return self.accounted_ns / self.wall_ns

    def stage(self, name: str) -> StageStats:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in this report")

    def describe(self) -> str:
        """Fixed-width per-stage breakdown, biggest stages first."""
        lines = [
            f"per-stage overhead over {self.requests} request"
            f"{'s' if self.requests != 1 else ''} "
            f"({_fmt_ns(self.wall_ns)} wall):",
            f"  {'stage':26s} {'count':>7s} {'self':>10s} "
            f"{'mean':>10s} {'share':>7s}",
        ]
        for stage in self.stages:
            share = (
                stage.self_ns / self.wall_ns if self.wall_ns > 0 else 0.0
            )
            error_mark = f"  !{stage.errors}" if stage.errors else ""
            lines.append(
                f"  {stage.name:26s} {stage.count:>7d} "
                f"{_fmt_ns(stage.self_ns):>10s} "
                f"{_fmt_ns(int(stage.mean_self_seconds * 1e9)):>10s} "
                f"{share:>6.1%}{error_mark}"
            )
        lines.append(
            f"  {'accounted':26s} {'':>7s} "
            f"{_fmt_ns(self.accounted_ns):>10s} {'':>10s} "
            f"{self.accounted_fraction:>6.1%}"
        )
        return "\n".join(lines)


def overhead_report(roots: Sequence[Span]) -> OverheadReport:
    """Aggregate exclusive per-stage time over ``roots``.

    Root spans' own self-time is reported under ``<name> (untraced)`` —
    it is the instrumentation gap between stage spans, and keeping it as
    an explicit row is what makes the stage column sum *exactly* to the
    wall-clock total instead of silently under-reporting.
    """
    stages: Dict[str, StageStats] = {}
    wall_ns = 0
    requests = 0
    for root in roots:
        requests += 1
        wall_ns += root.duration_ns
        for span in root.walk():
            name = (
                f"{span.name} (untraced)" if span is root else span.name
            )
            stats = stages.get(name)
            if stats is None:
                stats = stages[name] = StageStats(name)
            stats.count += 1
            stats.self_ns += span.self_ns()
            stats.total_ns += span.duration_ns
            if span.status == "error":
                stats.errors += 1
    ordered = sorted(stages.values(), key=lambda s: -s.self_ns)
    return OverheadReport(
        stages=ordered, requests=requests, wall_ns=wall_ns
    )


def render_tree(root: Span) -> str:
    """ASCII rendering of one span tree with durations and attributes.

    >>> print(render_tree(root))          # doctest: +SKIP
    serve.request 12.3ms  nnz=2800 format=DIA
      serve.queue 0.8ms
      serve.plan 10.1ms
        tune.decide 9.2ms
          features.structure 1.1ms
    """
    lines: List[str] = []
    _render(root, 0, lines)
    return "\n".join(lines)


def _render(span: Span, depth: int, lines: List[str]) -> None:
    attrs = " ".join(
        f"{key}={value}" for key, value in sorted(span.attrs.items())
    )
    error = f" [{span.error}]" if span.error is not None else ""
    lines.append(
        f"{'  ' * depth}{span.name} {_fmt_ns(span.duration_ns)}"
        f"{'  ' + attrs if attrs else ''}{error}"
    )
    for child in sorted(span.children, key=lambda s: s.start_ns):
        _render(child, depth + 1, lines)


def _fmt_ns(ns: int) -> str:
    """Human duration with three significant digits (µs/ms/s)."""
    if ns < 1_000:
        return f"{ns}ns"
    if ns < 1_000_000:
        return f"{ns / 1_000:.3g}us"
    if ns < 1_000_000_000:
        return f"{ns / 1_000_000:.3g}ms"
    return f"{ns / 1_000_000_000:.3g}s"
