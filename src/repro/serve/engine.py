"""The serving engine: concurrent tuned SpMV behind a bounded queue.

``ServingEngine`` turns the one-shot :meth:`repro.tuner.SMAT.spmv` call
into a persistent service.  The pipeline per request:

1. **validate + fingerprint** the matrix (operand shape is checked at
   submit so a bad vector fails one request, not a coalesced batch),
2. **enqueue** into a bounded submission queue — full queue means
   :class:`repro.errors.BackpressureError`, the engine sheds load rather
   than buffering unboundedly,
3. a **worker** pops the request and drains every queued request with the
   same fingerprint into one batch, so one plan lookup serves many vectors;
   requests whose end-to-end deadline already expired are failed here,
   before any plan work is spent on them,
4. **plan resolution** — plan-cache hit executes immediately (no feature
   extraction, no conversion: the amortization of Table 3); a tier-1 miss
   whose *structural digest* matches a resident plan refreshes that plan's
   value arrays in place of a full re-tune (the value-churn fast path —
   same structure, new values, no feature extraction and no rule walk);
   otherwise the miss runs the full Figure 7 decision once, converts once,
   and caches the plan.  Misses for the same structure (or fingerprint,
   with the tier-2 cache disabled) are single-flighted so concurrent first
   requests build the plan only once.  A build *failure* does not fail the
   batch: the engine degrades to the always-correct CSR reference plan, and
   a per-fingerprint circuit breaker stops re-tuning after repeated
   failures (half-open probes restore tuned serving once a build succeeds),
5. **execute** the chosen kernel — transient failures are retried with
   bounded exponential backoff — and resolve the caller's future.  When
   ≥ 2 batch members survive their deadline checks and ``max_batch_rhs``
   allows, their vectors are stacked column-wise and the whole group runs
   as **one SpMM** (a single pass over the sparse operand); a batched
   failure falls back to per-request SpMV so deadlines, retries and
   faults keep per-request semantics.  ``batch_window`` lets a worker
   linger at dequeue to absorb a same-fingerprint burst first.

Future resolution is always routed through the ``_try_*`` helpers: a
caller can cancel its future at any instant, and an unguarded
``set_result``/``set_exception`` racing that cancel raises
``InvalidStateError`` inside the worker thread, silently shrinking
serving capacity.  The helpers swallow exactly that race, nothing else.

The tuner can be a plain :class:`~repro.tuner.SMAT` or an
:class:`~repro.tuner.OnlineSmat`; with the latter, fallback measurements
recorded while serving retrain the model safely under its internal lock.

Every stage is metered (see :mod:`repro.serve.metrics`); the failure-path
instruments are pre-registered so they are observable at zero.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, InvalidStateError
from dataclasses import dataclass, replace
from typing import (
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro import obs
from repro.errors import (
    BackpressureError,
    DeadlineExceededError,
    ServeError,
)
from repro.features.incremental import DeltaFeatures
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.formats.delta import (
    DeltaEffect,
    StructureDelta,
    apply_delta,
    patch_operand,
)
from repro.kernels.backends import get_backend
from repro.serve.faults import FaultPlan
from repro.serve.fingerprint import Fingerprint
from repro.serve.fingerprint import fingerprint as _fingerprint
from repro.serve.metrics import MetricsRegistry
from repro.serve.plancache import CachedPlan, PlanCache
from repro.serve.resilience import (
    BreakerState,
    BuildTicket,
    CircuitBreaker,
    Deadline,
    DegradedPlan,
    RetryPolicy,
)
from repro.tuner.runtime import Decision, _model_walk, cascade_select
from repro.types import FormatName

#: Counters pre-registered on every engine so the scoreboard always shows
#: the failure paths, fired or not.
_RESILIENCE_COUNTERS = (
    "deadline_exceeded",
    "degraded_requests",
    "plan_build_failures",
    "retries",
    "requests_failed",
    "breaker_opened",
    "breaker_probes",
    "breaker_recovered",
    "requests_invalid",
    "worker_errors",
)

#: Tier-2 instruments, pre-registered for the same reason: a value-churn
#: workload that never refreshes should read as zero, not as unwired.
_REFRESH_COUNTERS = (
    "structure_hits",
    "plans_refreshed",
    "plan_refresh_failures",
)

#: Batched-execution instruments: a fan-in workload that never coalesces
#: into an SpMM (window 0, or max_batch_rhs 1) must read as zero — the
#: fan-in smoke test gates on ``spmm_batches_total`` moving.
_SPMM_COUNTERS = (
    "spmm_batches_total",
    "spmm_requests_batched",
    "spmm_fallbacks",
)

#: Decision-cascade + conversion-amortizer + hot-swap instruments.  The
#: cascade_* counters record which stage produced each cold decision;
#: conversions_deferred/plans_upgraded track the amortizer's defer →
#: repay lifecycle; ruleset_swaps counts model epochs observed while
#: serving (an OnlineSmat retrain hot-swapped under us).
_CASCADE_COUNTERS = (
    "cascade_cheap_hits",
    "cascade_full_hits",
    "cascade_measure_decisions",
    "cascade_floor_decisions",
    "conversions_deferred",
    "plans_upgraded",
    "ruleset_swaps",
)

_CASCADE_STAGE_COUNTER = {
    "cheap": "cascade_cheap_hits",
    "full": "cascade_full_hits",
    "measure": "cascade_measure_decisions",
    "floor": "cascade_floor_decisions",
}

#: Kernel-backend instruments.  ``codegen_kernels`` counts plans serving a
#: compiled specialized kernel; ``codegen_kept_generic`` counts builds
#: where the beat-or-keep audit kept the registry kernel;
#: ``codegen_fallbacks`` counts specialization *failures* (including
#: injected ``codegen.compile`` faults) absorbed without degrading the
#: plan — the chaos test gates on failures never reaching the breaker.
_CODEGEN_COUNTERS = (
    "codegen_kernels",
    "codegen_kept_generic",
    "codegen_fallbacks",
)

#: Structure-churn instruments.  ``deltas_applied`` counts every
#: :meth:`ServingEngine.apply_structure_delta`; the three policy counters
#: record how each delta's plan was migrated — ``delta_patches`` (the
#: converted operand was edited in place), ``delta_refreshes`` (the old
#: format won the re-decision but its geometry changed, so the operand
#: was rebuilt without re-tuning) and ``delta_retunes`` (full decision).
#: The churn smoke test gates on patches+refreshes moving.
_DELTA_COUNTERS = (
    "deltas_applied",
    "delta_patches",
    "delta_refreshes",
    "delta_retunes",
)

#: Nominal cost of converting to a non-CSR format, in CSR-SpMV units —
#: the amortizer's repayment bar before any decision has priced the real
#: target (analytic ELL/DIA conversion costs sit near 2 SpMVs).
_NOMINAL_CONVERSION_UNITS = 2.0


@dataclass(frozen=True)
class ServeConfig:
    """Sizing and policy of one serving engine."""

    #: Worker threads executing SpMV requests.
    workers: int = 4
    #: Bounded submission-queue capacity (the backpressure point).
    queue_capacity: int = 256
    #: Max requests coalesced into one batch per plan lookup.
    max_batch: int = 32
    #: Seconds a worker lingers at dequeue collecting more requests with
    #: the head's fingerprint before processing the batch (0 = dequeue
    #: immediately, the pre-batching behaviour).  A small window turns
    #: same-fingerprint fan-in into multi-RHS SpMM batches.
    batch_window: float = 0.0
    #: Max same-fingerprint requests stacked into one SpMM RHS block.
    #: Defaults to 1 (never batch execution; coalescing still amortises
    #: the plan lookup): a multi-RHS pass reassociates float summation,
    #: so results can differ from sequential serving in the low-order
    #: bits.  Opt in where fan-in throughput matters more than run-to-run
    #: bit identity (exact-arithmetic workloads lose nothing either way).
    max_batch_rhs: int = 1
    #: Plan-cache entry cap.
    cache_entries: int = 128
    #: Plan-cache byte budget over converted matrices (None = unlimited).
    cache_bytes: Optional[int] = None
    #: Default seconds ``submit`` waits for queue space (None = forever).
    submit_timeout: Optional[float] = None
    #: Default end-to-end deadline per request (None = none); covers
    #: queue wait + plan resolution + execution.
    default_deadline: Optional[float] = None
    #: Retries for *transient* execute failures (0 = fail on first error).
    max_retries: int = 2
    #: First retry backoff in seconds (doubles per attempt).
    backoff_base: float = 0.005
    #: Backoff ceiling in seconds.
    backoff_cap: float = 0.05
    #: Consecutive plan-build failures that open a fingerprint's breaker.
    breaker_threshold: int = 3
    #: While open, every Nth request half-opens the breaker for one probe.
    breaker_probe_interval: int = 8
    #: Tier-2 structure-keyed plan reuse: a miss whose structural digest
    #: matches a resident plan refreshes that plan's values instead of
    #: re-tuning.  Disable to force every distinct value set through the
    #: full Figure 7 decision (the pre-two-tier behaviour).
    structure_cache: bool = True
    #: Amortize conversion decisions per structure: a structure's first
    #: sighting serves a provisional CSR plan (zero tuning overhead) and
    #: the full decide+convert runs only once the structure's observed
    #: request rate projects enough reuse over ``amortize_horizon_seconds``
    #: to repay a conversion (Katagiri's when-does-transformation-pay-off
    #: question, answered per structure from live traffic).
    amortize_conversions: bool = False
    #: Reuse projection window for the amortizer, seconds.
    amortize_horizon_seconds: float = 10.0
    #: Projected-uses multiple of the nominal conversion cost required
    #: before upgrading a provisional plan (1.0 = break even).
    amortize_payoff: float = 1.0
    #: Kernel backend applied to cold plan builds
    #: (``repro.kernels.backends``).  ``codegen`` compiles a per-matrix
    #: specialized kernel into the plan when it beats the registry kernel;
    #: any compile failure silently keeps the generic kernel.  A plain
    #: string, so shipping it inside a pickled cluster ``WorkerSpec``
    #: stays descriptor-only — workers regenerate compiled kernels from
    #: structure on their side, and ``operand_bytes_pickled`` stays 0.
    kernel_backend: str = "generic"
    #: Structure-delta migration policy: a delta whose structural edit
    #: count (entries appearing or vanishing) stays within this fraction
    #: of the pre-delta nnz may keep the old plan — patched or rebuilt in
    #: the old format — provided a cascade-bounded re-decision confirms
    #: that format still wins on the mutated structure.  Larger deltas
    #: (or a flipped re-decision) always re-tune from scratch.
    delta_patch_max_ratio: float = 0.25

    def __post_init__(self) -> None:
        from repro.kernels.backends import backend_names

        if self.kernel_backend not in backend_names():
            raise ValueError(
                f"kernel_backend must be one of {backend_names()}, "
                f"got {self.kernel_backend!r}"
            )
        if self.amortize_horizon_seconds <= 0.0:
            raise ValueError(
                f"amortize_horizon_seconds must be > 0, "
                f"got {self.amortize_horizon_seconds}"
            )
        if self.amortize_payoff <= 0.0:
            raise ValueError(
                f"amortize_payoff must be > 0, got {self.amortize_payoff}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_window < 0.0:
            raise ValueError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )
        if self.max_batch_rhs < 1:
            raise ValueError(
                f"max_batch_rhs must be >= 1, got {self.max_batch_rhs}"
            )
        if self.cache_entries < 1:
            raise ValueError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )
        if self.cache_bytes is not None and self.cache_bytes < 1:
            raise ValueError(
                f"cache_bytes must be >= 1 or None, got {self.cache_bytes}"
            )
        if self.submit_timeout is not None and self.submit_timeout < 0.0:
            raise ValueError(
                f"submit_timeout must be >= 0 or None, "
                f"got {self.submit_timeout}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0.0:
            raise ValueError(
                f"default_deadline must be > 0 or None, "
                f"got {self.default_deadline}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0.0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"backoff_cap ({self.backoff_cap}) must be >= "
                f"backoff_base ({self.backoff_base})"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_probe_interval < 1:
            raise ValueError(
                f"breaker_probe_interval must be >= 1, "
                f"got {self.breaker_probe_interval}"
            )
        if self.delta_patch_max_ratio < 0.0:
            raise ValueError(
                f"delta_patch_max_ratio must be >= 0, "
                f"got {self.delta_patch_max_ratio}"
            )


@dataclass
class ServeResult:
    """What the engine hands back for one request."""

    y: np.ndarray
    fingerprint: Fingerprint
    format_name: FormatName
    kernel_name: str
    cache_hit: bool
    used_fallback: bool
    #: Seconds spent waiting in the submission queue.
    queued_seconds: float
    #: Seconds resolving the plan (≈0 on a cache hit).
    plan_seconds: float
    #: Seconds inside the SpMV kernel.
    execute_seconds: float
    #: True when the plan build failed and the CSR reference plan served
    #: this request instead (see ``repro.serve.resilience``).
    degraded: bool = False
    #: Transient execute failures retried before this result.
    retries: int = 0
    #: True when the plan came from the tier-2 structure cache: a resident
    #: plan with the same sparsity structure had its values refreshed in
    #: place of a full re-tune.
    refreshed: bool = False
    #: RHS columns of the SpMM this request rode in (1 = served as a
    #: plain SpMV).  ``execute_seconds`` is the batch's kernel time
    #: divided evenly across its members.
    batch_size: int = 1

    @property
    def total_seconds(self) -> float:
        return self.queued_seconds + self.plan_seconds + self.execute_seconds


@dataclass(frozen=True)
class DeltaOutcome:
    """What :meth:`ServingEngine.apply_structure_delta` hands back.

    ``matrix`` is the post-delta CSR matrix the caller must submit from
    now on (the pre-delta object — and its fingerprint — is dead: its
    plan has been invalidated and can never be hit again).  ``policy``
    records how the plan migrated: ``"patch"`` (operand edited in
    place), ``"refresh"`` (same format, operand rebuilt without
    re-tuning) or ``"retune"`` (full decision).
    """

    matrix: CSRMatrix
    fingerprint: Fingerprint
    old_fingerprint: Fingerprint
    policy: str
    old_format: Optional[FormatName]
    new_format: FormatName
    #: Structural edits (entries appearing/vanishing) over pre-delta nnz.
    delta_ratio: float
    #: Which cascade stage confirmed (or flipped) the format, when a
    #: re-decision ran: ``"delta"`` (maintained-features walk),
    #: ``"cheap"``/``"full"`` (cascade probe), or None (no re-decision).
    redecision_stage: Optional[str]
    seconds: float


# ---------------------------------------------------------------------------
# Safe future resolution.
#
# A future can be cancelled by its caller between any state check and the
# matching set_* call; concurrent.futures then raises InvalidStateError in
# the *worker* thread.  Pre-fix, that either killed the worker (batch error
# path) or blew up stop(drain=False).  These helpers swallow exactly the
# lost-the-race case and report whether the resolution landed.
# ---------------------------------------------------------------------------

def _try_mark_running(future: "Future") -> bool:
    """True if the future transitioned to RUNNING (safe to resolve)."""
    try:
        return future.set_running_or_notify_cancel()
    except InvalidStateError:
        return False


def _try_set_result(future: "Future", result) -> bool:
    try:
        future.set_result(result)
        return True
    except InvalidStateError:
        return False


def _try_set_exception(future: "Future", exc: BaseException) -> bool:
    try:
        future.set_exception(exc)
        return True
    except InvalidStateError:
        return False


class _Request:
    __slots__ = (
        "key",
        "matrix",
        "x",
        "future",
        "deadline",
        "enqueued_at",
        "trace_root",
        "trace_queue",
    )

    def __init__(
        self,
        key: Fingerprint,
        matrix: CSRMatrix,
        x: np.ndarray,
        future: "Future[ServeResult]",
        deadline: Optional[Deadline] = None,
    ) -> None:
        self.key = key
        self.matrix = matrix
        self.x = x
        self.future = future
        self.deadline = deadline
        self.enqueued_at = time.perf_counter()
        # Tracing (None unless a tracer is installed at submit): the
        # request's root span and its queue-wait child.  Started on the
        # client thread, finished on a worker — the explicit-parent
        # stitching repro.obs exists for.
        self.trace_root: Optional[obs.Span] = None
        self.trace_queue: Optional[obs.Span] = None


class _BuildLock:
    """A single-flight lock plus the number of threads holding a reference.

    The refcount is the fix for the pop-while-held race: the old code
    popped the lock from the registry as soon as *one* holder released,
    so a late arriver minted a fresh lock and uncacheable plans built
    concurrently N times.  Now the entry leaves the registry only when
    the last referent releases, so every concurrent resolver for one
    fingerprint serializes on the same lock object.
    """

    __slots__ = ("lock", "refs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.refs = 0


@dataclass
class _Resolution:
    """Outcome of one plan resolution, tuned or degraded."""

    plan: Union[CachedPlan, DegradedPlan]
    cache_hit: bool
    seconds: float
    degraded: bool
    #: Plan came from a tier-2 structure hit (values refreshed, no tune).
    refreshed: bool = False

    @property
    def format_name(self) -> FormatName:
        if self.degraded:
            return DegradedPlan.format_name
        return self.plan.decision.format_name

    @property
    def kernel_name(self) -> str:
        if self.degraded:
            return DegradedPlan.KERNEL_NAME
        return self.plan.decision.serving_kernel.name

    @property
    def used_fallback(self) -> bool:
        if self.degraded:
            return False
        return self.plan.decision.used_fallback


class _SubmissionQueue:
    """Bounded FIFO with same-fingerprint batch extraction.

    ``take_batch`` pops the head and then *removes* (not merely reads)
    every queued request sharing the head's fingerprint, preserving FIFO
    order among the rest — the coalescing that lets one plan lookup serve
    many vectors.
    """

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._items: Deque[_Request] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def put(self, request: _Request, timeout: Optional[float]) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while len(self._items) >= self._capacity and not self._closed:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise BackpressureError(
                            f"submission queue full "
                            f"({self._capacity} requests) for {timeout}s"
                        )
                self._not_full.wait(remaining)
            if self._closed:
                raise ServeError("engine is shutting down")
            self._items.append(request)
            self._not_empty.notify()

    def put_many(
        self, requests: Sequence[_Request], timeout: Optional[float]
    ) -> None:
        """Enqueue ``requests`` atomically (all visible in one dequeue).

        The batched dispatch path needs this: a worker's ``take_batch``
        must see the whole same-fingerprint burst at once, even with a
        zero batch window, so it coalesces into one SpMM instead of
        trickling through as singles.
        """
        n = len(requests)
        if n == 0:
            return
        if n > self._capacity:
            raise BackpressureError(
                f"batch of {n} exceeds queue capacity ({self._capacity})"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while (
                len(self._items) + n > self._capacity and not self._closed
            ):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise BackpressureError(
                            f"submission queue lacks space for {n} "
                            f"requests ({self._capacity} capacity) "
                            f"for {timeout}s"
                        )
                self._not_full.wait(remaining)
            if self._closed:
                raise ServeError("engine is shutting down")
            self._items.extend(requests)
            self._not_empty.notify(n)

    def take_batch(
        self, max_batch: int, window: float = 0.0
    ) -> Optional[List[_Request]]:
        """Next batch of same-fingerprint requests; None when drained+closed.

        With ``window > 0`` the caller lingers after the initial
        extraction, absorbing same-fingerprint arrivals until the window
        elapses, the batch fills, or the queue closes.  While lingering,
        queued *other*-fingerprint requests re-notify the condition so an
        idle sibling worker picks them up instead of waiting behind this
        batch's window.
        """
        with self._not_empty:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items:
                return None  # closed and drained
            head = self._items.popleft()
            batch = [head]
            self._extract_same_key(head.key, batch, max_batch)
            if window > 0.0:
                expires = time.monotonic() + window
                while len(batch) < max_batch and not self._closed:
                    remaining = expires - time.monotonic()
                    if remaining <= 0.0:
                        break
                    if self._items:
                        # Pass the baton: someone else should serve the
                        # other-fingerprint backlog while we linger.
                        self._not_empty.notify()
                    self._not_empty.wait(remaining)
                    self._extract_same_key(head.key, batch, max_batch)
            self._not_full.notify(len(batch))
            return batch

    def _extract_same_key(
        self, key: Fingerprint, batch: List[_Request], max_batch: int
    ) -> None:
        """Move queued requests matching ``key`` into ``batch`` (FIFO-
        preserving for the rest).  Caller holds the lock."""
        if len(batch) >= max_batch or not self._items:
            return
        keep: List[_Request] = []
        taken = False
        for request in self._items:
            if request.key == key and len(batch) < max_batch:
                batch.append(request)
                taken = True
            else:
                keep.append(request)
        if taken:
            self._items = deque(keep)

    def drain(self) -> List[_Request]:
        with self._lock:
            remaining = list(self._items)
            self._items.clear()
            self._not_full.notify_all()
            return remaining

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class ServingEngine:
    """A persistent, thread-safe SpMV service over one tuner.

    >>> with ServingEngine(smat) as engine:
    ...     y = engine.spmv(matrix, x).y            # synchronous
    ...     future = engine.submit(matrix, x, deadline=0.5)
    ...     print(engine.metrics.report())

    ``faults`` accepts a :class:`~repro.serve.faults.FaultPlan` that
    wraps the decide/convert/refresh/execute seams for deterministic
    chaos replay; production engines leave it None.
    """

    def __init__(
        self,
        tuner,
        config: ServeConfig = ServeConfig(),
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if not hasattr(tuner, "decide"):
            raise ServeError(
                f"tuner must expose decide(); got {type(tuner).__name__}"
            )
        self.tuner = tuner
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.metrics.ensure(counters=_RESILIENCE_COUNTERS)
        self.metrics.ensure(
            counters=_REFRESH_COUNTERS,
            histograms=("plan_refresh_seconds",),
        )
        self.metrics.ensure(counters=_SPMM_COUNTERS)
        self.metrics.ensure(counters=_CASCADE_COUNTERS)
        self.metrics.ensure(counters=_CODEGEN_COUNTERS)
        self.metrics.ensure(
            counters=_DELTA_COUNTERS,
            histograms=("delta_apply_seconds",),
        )
        self.cache = PlanCache(
            max_entries=config.cache_entries, max_bytes=config.cache_bytes
        )
        # Deadline threading: an SMAT/OnlineSmat decide() accepts the
        # request deadline (budgeted cascade); arbitrary tuners may not.
        # Probe the signature once instead of try/excepting every build.
        import inspect

        try:
            self._tuner_takes_deadline = (
                "deadline" in inspect.signature(tuner.decide).parameters
            )
        except (TypeError, ValueError):
            self._tuner_takes_deadline = False
        # Conversion amortizer: per-structure request stats feeding the
        # defer-or-tune verdict, and the last tuner model epoch observed
        # (for counting live ruleset hot-swaps).
        self._structure_stats: Dict[Hashable, List[float]] = {}
        self._amortize_guard = threading.Lock()
        self._last_model_epoch: Optional[int] = getattr(
            tuner, "model_epoch", None
        )
        self._epoch_guard = threading.Lock()
        self.faults = faults
        self._sleep = faults.sleep if faults is not None else time.sleep
        self._retry = RetryPolicy(
            max_retries=config.max_retries,
            backoff_base=config.backoff_base,
            backoff_cap=config.backoff_cap,
        )
        self._queue = _SubmissionQueue(config.queue_capacity)
        self._workers: List[threading.Thread] = []
        self._state_lock = threading.Lock()
        self._started = False
        self._stopped = False
        # Single-flight plan builds, keyed by the structure key when the
        # tier-2 cache is on (concurrent first requests for the *same
        # structure* then serialize too: one builds, the rest refresh)
        # and by the exact fingerprint otherwise.
        self._build_locks: Dict[Hashable, _BuildLock] = {}
        self._build_locks_guard = threading.Lock()
        # Per-fingerprint plan-build circuit breakers.
        self._breakers: Dict[Fingerprint, CircuitBreaker] = {}
        self._breakers_guard = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingEngine":
        with self._state_lock:
            if self._stopped:
                raise ServeError("engine cannot be restarted after stop()")
            if self._started:
                raise ServeError("engine already started")
            self._started = True
            for i in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"smat-serve-{i}",
                    daemon=True,
                )
                thread.start()
                self._workers.append(thread)
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` the backlog is served first, without
        it pending requests fail with :class:`ServeError`."""
        with self._state_lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        if not drain:
            for request in self._queue.drain():
                # The caller may have cancelled this future already —
                # _try_set_exception absorbs that instead of raising
                # InvalidStateError out of stop().
                exc = ServeError("engine stopped before request ran")
                self._end_trace(request, error=exc)
                _try_set_exception(request.future, exc)
        self._queue.close()
        for thread in self._workers:
            thread.join()
        self._update_gauges()

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        with self._state_lock:
            return self._started and not self._stopped

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        fingerprint: Optional[Fingerprint] = None,
    ) -> "Future[ServeResult]":
        """Enqueue one SpMV; returns a future resolving to a ServeResult.

        ``timeout`` bounds the wait for queue space (defaults to the
        config's ``submit_timeout``); exhausting it raises
        :class:`BackpressureError`.  ``deadline`` (defaults to the
        config's ``default_deadline``) bounds the request end to end —
        queue wait, plan resolution and execution; an expired request
        fails with :class:`DeadlineExceededError` without burning worker
        time on plan work.  ``fingerprint`` lets a caller that already
        hashed the matrix (the cluster dispatcher computes it once at
        publish time) skip re-hashing; it must be the digest of exactly
        this matrix — a wrong value silently serves the wrong plan.
        """
        if not self.running:
            raise ServeError("engine is not running (call start())")
        x = np.asarray(x)
        if x.ndim != 1 or x.shape[0] != matrix.n_cols:
            # Validated here so a bad vector fails *this* request with a
            # clear error instead of failing a whole coalesced batch
            # inside the kernel.
            self.metrics.counter("requests_invalid").inc()
            raise ValueError(
                f"operand vector has shape {x.shape}; the matrix needs "
                f"a 1-D vector of length {matrix.n_cols}"
            )
        effective_deadline = (
            deadline if deadline is not None else self.config.default_deadline
        )
        key = fingerprint if fingerprint is not None else _fingerprint(matrix)
        future: "Future[ServeResult]" = Future()
        request = _Request(
            key,
            matrix,
            x,
            future,
            Deadline.after(effective_deadline)
            if effective_deadline is not None
            else None,
        )
        tracer = obs.get_tracer()
        if tracer is not None:
            request.trace_root = tracer.begin(
                "serve.request",
                parent=None,
                fingerprint=str(key),
                rows=int(matrix.n_rows),
                cols=int(matrix.n_cols),
                nnz=int(matrix.nnz),
            )
            request.trace_queue = tracer.begin(
                "serve.queue", parent=request.trace_root
            )
        effective = (
            timeout if timeout is not None else self.config.submit_timeout
        )
        try:
            self._queue.put(request, effective)
        except BaseException as exc:
            if isinstance(exc, BackpressureError):
                self.metrics.counter("requests_rejected").inc()
            self._end_trace(request, error=exc)
            raise
        self.metrics.counter("requests_submitted").inc()
        self.metrics.gauge("queue_depth").set(len(self._queue))
        return future

    def submit_batch(
        self,
        matrix: CSRMatrix,
        xs: Sequence[np.ndarray],
        timeout: Optional[float] = None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
        fingerprint: Optional[Fingerprint] = None,
    ) -> List["Future[ServeResult]"]:
        """Enqueue a same-matrix burst atomically; one future per vector.

        The requests land in the submission queue in one step, so a
        worker's ``take_batch`` sees the whole burst at once and (when
        ``max_batch_rhs`` allows) executes it as a single SpMM — even
        with ``batch_window == 0``.  This is the fan-in entry point the
        cluster worker uses for batched shard dispatches.  ``deadlines``
        gives each member its own end-to-end budget (None entries fall
        back to the config default); deadlines, retries and failures stay
        per-request inside the batch.
        """
        if not self.running:
            raise ServeError("engine is not running (call start())")
        if deadlines is not None and len(deadlines) != len(xs):
            raise ValueError(
                f"deadlines has {len(deadlines)} entries for "
                f"{len(xs)} vectors"
            )
        if not xs:
            return []
        key = fingerprint if fingerprint is not None else _fingerprint(matrix)
        requests: List[_Request] = []
        tracer = obs.get_tracer()
        for i, x in enumerate(xs):
            x = np.asarray(x)
            if x.ndim != 1 or x.shape[0] != matrix.n_cols:
                self.metrics.counter("requests_invalid").inc()
                raise ValueError(
                    f"operand vector {i} has shape {x.shape}; the matrix "
                    f"needs a 1-D vector of length {matrix.n_cols}"
                )
            effective_deadline = (
                deadlines[i]
                if deadlines is not None and deadlines[i] is not None
                else self.config.default_deadline
            )
            request = _Request(
                key,
                matrix,
                x,
                Future(),
                Deadline.after(effective_deadline)
                if effective_deadline is not None
                else None,
            )
            if tracer is not None:
                request.trace_root = tracer.begin(
                    "serve.request",
                    parent=None,
                    fingerprint=str(key),
                    rows=int(matrix.n_rows),
                    cols=int(matrix.n_cols),
                    nnz=int(matrix.nnz),
                )
                request.trace_queue = tracer.begin(
                    "serve.queue", parent=request.trace_root
                )
            requests.append(request)
        effective = (
            timeout if timeout is not None else self.config.submit_timeout
        )
        try:
            self._queue.put_many(requests, effective)
        except BaseException as exc:
            if isinstance(exc, BackpressureError):
                self.metrics.counter("requests_rejected").inc(len(requests))
            for request in requests:
                self._end_trace(request, error=exc)
            raise
        self.metrics.counter("requests_submitted").inc(len(requests))
        self.metrics.gauge("queue_depth").set(len(self._queue))
        return [request.future for request in requests]

    def spmv(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        fingerprint: Optional[Fingerprint] = None,
    ) -> ServeResult:
        """Synchronous convenience wrapper over :meth:`submit`."""
        return self.submit(
            matrix, x, timeout=timeout, deadline=deadline,
            fingerprint=fingerprint,
        ).result()

    def spmv_many(
        self,
        requests: Iterable[Tuple[CSRMatrix, np.ndarray]],
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> List[ServeResult]:
        """Submit a sequence of (matrix, x) pairs; wait for all results.

        If a mid-sequence submit fails (backpressure, bad operand), the
        already-submitted futures are cancelled — or awaited, when a
        worker got there first — before the error is re-raised, so no
        orphaned work keeps running behind the caller's back.
        """
        futures: List["Future[ServeResult]"] = []
        try:
            for matrix, x in requests:
                futures.append(
                    self.submit(matrix, x, timeout=timeout, deadline=deadline)
                )
        except BaseException:
            for future in futures:
                future.cancel()
            for future in futures:
                if future.cancelled():
                    continue
                try:
                    future.exception()  # waits for in-flight completion
                except CancelledError:
                    pass
            raise
        return [f.result() for f in futures]

    def invalidate(self, matrix: CSRMatrix) -> bool:
        """Drop the cached plan for ``matrix`` (call after mutating it)."""
        invalidated = self.cache.invalidate(_fingerprint(matrix))
        if invalidated:
            self.metrics.counter("plans_invalidated").inc()
            self._update_gauges()
        return invalidated

    # ------------------------------------------------------------------
    # Structure churn
    # ------------------------------------------------------------------
    def apply_structure_delta(
        self,
        matrix: CSRMatrix,
        delta: StructureDelta,
        features: Optional[DeltaFeatures] = None,
    ) -> DeltaOutcome:
        """Mutate a served structure and migrate its plan.

        The pre-delta fingerprint (value *and* structure key) is retired
        unconditionally — both cache tiers mint fresh keys for the
        post-delta matrix, so a mutated structure can never hit its
        stale plan.  The resident plan then migrates by policy:

        * **patch** — the delta is small (``structural edits / nnz ≤
          config.delta_patch_max_ratio``) and a cascade-bounded
          re-decision (the maintained-feature walk when ``features`` is
          supplied, the cheap interval walk otherwise) proves the old
          format still wins → the converted operand is edited in place
          where the format's geometry is unchanged;
        * **refresh** — same proof, but the geometry moved (ELL width,
          DIA offset set) or the format has no in-place patcher → the
          operand is rebuilt from the new CSR without re-tuning;
        * **retune** — big delta, flipped decision, no resident plan, or
          a failed patch → the full Figure 7 decision runs.

        Returns the post-delta matrix (the caller must submit with it
        from now on) plus what happened.  ``features``, when given, is
        advanced in place so the caller's maintenance stays attached.
        """
        started = time.perf_counter()
        old_key = _fingerprint(matrix)
        with obs.span("serve.delta", fingerprint=str(old_key)):
            new_csr, effect = apply_delta(matrix, delta)
            if features is not None:
                features.apply(effect)
            new_key = _fingerprint(new_csr)
            old_plan = self.cache.get(old_key, record_stats=False)
            if self.cache.invalidate(old_key):
                self.metrics.counter("plans_invalidated").inc()
            self.metrics.counter("deltas_applied").inc()
            ratio = effect.structural_size / max(matrix.nnz, 1)
            old_format = (
                old_plan.decision.format_name if old_plan is not None else None
            )
            plan = None
            policy = "retune"
            stage: Optional[str] = None
            if (
                old_plan is not None
                and not old_plan.provisional
                and ratio <= self.config.delta_patch_max_ratio
            ):
                redecision = self._delta_redecision(new_csr, features)
                if redecision is not None:
                    fmt, stage = redecision
                    if fmt is old_plan.decision.format_name:
                        try:
                            result = patch_operand(
                                old_plan.decision.matrix, new_csr, effect
                            )
                        except Exception:
                            result = None  # patch failed → full retune
                        if result is not None:
                            policy = (
                                "patch"
                                if result.mode == "patched"
                                else "refresh"
                            )
                            plan = CachedPlan(
                                key=new_key,
                                decision=replace(
                                    old_plan.decision, matrix=result.matrix
                                ),
                                matrix_bytes=result.matrix.memory_bytes(),
                            )
            if plan is None:
                policy = "retune"
                plan = self._build_plan(new_key, new_csr)
            self.metrics.counter(
                {
                    "patch": "delta_patches",
                    "refresh": "delta_refreshes",
                    "retune": "delta_retunes",
                }[policy]
            ).inc()
            if self.cache.put(plan):
                self.metrics.counter("plans_cached").inc()
            else:
                self.metrics.counter("plans_uncacheable").inc()
            seconds = time.perf_counter() - started
            self.metrics.histogram("delta_apply_seconds").observe(seconds)
            self._update_gauges()
            return DeltaOutcome(
                matrix=new_csr,
                fingerprint=new_key,
                old_fingerprint=old_key,
                policy=policy,
                old_format=old_format,
                new_format=plan.decision.format_name,
                delta_ratio=float(ratio),
                redecision_stage=stage,
                seconds=seconds,
            )

    def _delta_redecision(
        self, new_csr: CSRMatrix, features: Optional[DeltaFeatures]
    ) -> Optional[Tuple[FormatName, str]]:
        """Cheapest available proof of the post-delta format choice.

        With maintained features the rule walk runs on a fully-seeded
        :class:`LazyFeatures` — zero extraction units.  Without them the
        PR-8 cascade walks cheap interval bounds, escalating only when
        unresolved.  A tuner exposing no rule model cannot prove
        anything → None, which the caller treats as "retune".
        """
        model = getattr(self.tuner, "model", None)
        if model is None:
            model = getattr(
                getattr(self.tuner, "smat", None), "model", None
            )
        if model is None:
            return None
        try:
            if features is not None:
                fmt, _confidence, _rule = _model_walk(
                    model, features.seed_lazy(new_csr)
                )
                return fmt, "delta"
            config = getattr(self.tuner, "config", None)
            if config is None:
                config = getattr(
                    getattr(self.tuner, "smat", None), "config", None
                )
            if config is not None:
                selection = cascade_select(new_csr, model, config)
            else:
                selection = cascade_select(new_csr, model)
            return selection.format_name, selection.stage
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._queue.take_batch(
                self.config.max_batch, self.config.batch_window
            )
            if batch is None:
                return
            self.metrics.gauge("queue_depth").set(len(self._queue))
            if len(batch) > 1:
                self.metrics.counter("requests_batched").inc(len(batch) - 1)
            self.metrics.histogram(
                "batch_size", buckets=(1, 2, 4, 8, 16, 32, 64)
            ).observe(len(batch))
            try:
                self._process_batch(batch)
            except Exception as exc:
                # A worker must never die: whatever slipped through the
                # per-stage handling fails the batch, not the thread.
                self.metrics.counter("worker_errors").inc()
                for request in batch:
                    self._end_trace(request, error=exc)
                    _try_set_exception(request.future, exc)

    def _process_batch(self, batch: Sequence[_Request]) -> None:
        # Deadline check at dequeue: requests that already blew their
        # end-to-end budget are failed fast, before any plan work.
        live: List[_Request] = []
        for request in batch:
            self._end_queue_span(request)
            if request.deadline is not None and request.deadline.expired():
                self.metrics.counter("deadline_exceeded").inc()
                self.metrics.counter("requests_failed").inc()
                exc: Exception = DeadlineExceededError(
                    f"deadline expired while queued ({request.key})"
                )
                self._end_trace(request, error=exc)
                _try_set_exception(request.future, exc)
            else:
                live.append(request)
        if not live:
            return
        head = live[0]
        dequeued_at = time.perf_counter()
        tracer = obs.get_tracer()
        plan_ctx = (
            tracer.span("serve.plan", parent=head.trace_root)
            if tracer is not None and head.trace_root is not None
            else obs.NULL_SPAN
        )
        try:
            # The plan span lives on the head request's tree (followers
            # reuse the resolution without paying for it); while it is
            # the worker's current span, the tune/convert/feature spans
            # the build emits nest under it automatically.
            with plan_ctx as plan_span:
                resolution = self._resolve_plan(
                    head.key, head.matrix, head.deadline
                )
                if plan_span is not None:
                    plan_span.attrs.update(
                        cache_hit=resolution.cache_hit,
                        degraded=resolution.degraded,
                        refreshed=resolution.refreshed,
                        format=resolution.format_name.value,
                    )
        except Exception as exc:  # degraded path failed too: fail the batch
            self.metrics.counter("requests_failed").inc(len(live))
            for request in live:
                self._end_trace(request, error=exc)
                _try_set_exception(request.future, exc)
            return
        # Mark each future RUNNING exactly once — set_running_or_notify_
        # cancel raises on a second call, so the SpMM fallback path below
        # must never re-mark a request.
        ready: List[Tuple[int, _Request]] = []
        for i, request in enumerate(live):
            if not _try_mark_running(request.future):
                self._end_trace(request, cancelled=True)
                continue  # cancelled while queued
            ready.append((i, request))
        max_rhs = self.config.max_batch_rhs
        pos = 0
        while pos < len(ready):
            group = ready[pos : pos + max_rhs]
            pos += len(group)
            if len(group) >= 2:
                self._execute_spmm_group(resolution, group, dequeued_at)
            else:
                index, request = group[0]
                self._serve_one(resolution, index, request, dequeued_at)

    def _serve_one(
        self,
        resolution: _Resolution,
        index: int,
        request: _Request,
        dequeued_at: float,
    ) -> None:
        """Serve one already-RUNNING request as a plain SpMV."""
        if self._fail_if_expired(request):
            return
        queued = dequeued_at - request.enqueued_at
        outcome = self._execute_with_retry(resolution, request)
        if outcome is None:
            return  # failed; already metered, resolved and traced
        y, execute_seconds, retries = outcome
        self._finish_request(
            resolution,
            index,
            request,
            queued,
            y,
            execute_seconds,
            retries,
            batch_size=1,
        )

    def _execute_spmm_group(
        self,
        resolution: _Resolution,
        group: Sequence[Tuple[int, _Request]],
        dequeued_at: float,
    ) -> None:
        """One multi-RHS pass for a same-fingerprint group.

        Members past their deadline are excluded *before* stacking (and
        failed per-request); the survivors' vectors are stacked into one
        dense RHS block and executed under a single ``serve.execute``
        span carrying a ``batch_size`` attribute.  If the batched pass
        fails — injected fault or real — the whole group falls back to
        per-request SpMV so one poisoned request cannot fail its
        batchmates; retries, deadlines and fault injection then apply
        individually, exactly as for unbatched requests.
        """
        live = [
            (index, request)
            for index, request in group
            if not self._fail_if_expired(request)
        ]
        if not live:
            return
        if len(live) == 1:
            self._serve_one(resolution, live[0][0], live[0][1], dequeued_at)
            return
        # The injected-fault hook can sleep (latency faults), so it runs
        # before the deadline sweep below: a member whose budget expires
        # while the hook stalls must resolve DeadlineExceededError, not
        # be served late in the stacked pass.
        if self.faults is not None:
            try:
                self.faults.on_call("spmm")
            except Exception:
                self.metrics.counter("spmm_fallbacks").inc()
                for index, request in live:
                    self._serve_one(resolution, index, request, dequeued_at)
                return
        live = [
            (index, request)
            for index, request in live
            if not self._fail_if_expired(request)
        ]
        if not live:
            return
        if len(live) == 1:
            self._serve_one(resolution, live[0][0], live[0][1], dequeued_at)
            return
        k = len(live)
        head = live[0][1]
        tracer = obs.get_tracer()
        execute_ctx = (
            tracer.span(
                "serve.execute",
                parent=head.trace_root,
                kernel=resolution.kernel_name,
                batch_size=k,
            )
            if tracer is not None and head.trace_root is not None
            else obs.NULL_SPAN
        )
        try:
            with execute_ctx:
                started = time.perf_counter()
                X = np.stack([request.x for _, request in live], axis=1)
                Y = resolution.plan.spmm(X)
                elapsed = time.perf_counter() - started
        except Exception:
            # Per-request isolation: re-run the members individually so a
            # poisoned vector (or an injected spmm fault) fails only its
            # own request.  Futures are already RUNNING — _serve_one does
            # not re-mark them.
            self.metrics.counter("spmm_fallbacks").inc()
            for index, request in live:
                self._serve_one(resolution, index, request, dequeued_at)
            return
        self.metrics.counter("spmm_batches_total").inc()
        self.metrics.counter("spmm_requests_batched").inc(k)
        self.metrics.histogram(
            "spmm_batch_rhs", buckets=(2, 4, 8, 16, 32, 64, 128)
        ).observe(k)
        per_request = elapsed / k
        for offset, (index, request) in enumerate(live):
            queued = dequeued_at - request.enqueued_at
            self._finish_request(
                resolution,
                index,
                request,
                queued,
                np.ascontiguousarray(Y[:, offset]),
                per_request,
                0,
                batch_size=k,
            )

    def _fail_if_expired(self, request: _Request) -> bool:
        """Fail an already-RUNNING request whose deadline has expired."""
        if request.deadline is None or not request.deadline.expired():
            return False
        self.metrics.counter("deadline_exceeded").inc()
        self.metrics.counter("requests_failed").inc()
        exc = DeadlineExceededError(
            f"deadline expired during plan resolution ({request.key})"
        )
        self._end_trace(request, error=exc)
        _try_set_exception(request.future, exc)
        return True

    def _finish_request(
        self,
        resolution: _Resolution,
        index: int,
        request: _Request,
        queued: float,
        y: np.ndarray,
        execute_seconds: float,
        retries: int,
        batch_size: int,
    ) -> None:
        result = ServeResult(
            y=y,
            fingerprint=request.key,
            format_name=resolution.format_name,
            kernel_name=resolution.kernel_name,
            cache_hit=resolution.cache_hit or index > 0,
            used_fallback=resolution.used_fallback,
            queued_seconds=queued,
            plan_seconds=resolution.seconds if index == 0 else 0.0,
            execute_seconds=execute_seconds,
            degraded=resolution.degraded,
            retries=retries,
            refreshed=resolution.refreshed and index == 0,
            batch_size=batch_size,
        )
        self._observe(result)
        self._end_trace(
            request,
            format=result.format_name.value,
            kernel=result.kernel_name,
            cache_hit=result.cache_hit,
            coalesced=index > 0,
            degraded=result.degraded,
            retries=retries,
            batch_size=batch_size,
        )
        _try_set_result(request.future, result)

    def _execute_with_retry(
        self, resolution: _Resolution, request: _Request
    ) -> Optional[Tuple[np.ndarray, float, int]]:
        """(y, execute_seconds, retries), or None after resolving a failure."""
        tracer = obs.get_tracer()
        execute_ctx = (
            tracer.span(
                "serve.execute",
                parent=request.trace_root,
                kernel=resolution.kernel_name,
            )
            if tracer is not None and request.trace_root is not None
            else obs.NULL_SPAN
        )
        outcome: Optional[Tuple[np.ndarray, float, int]] = None
        failure: Optional[Exception] = None
        with execute_ctx as execute_span:
            attempt = 0
            while True:
                try:
                    started = time.perf_counter()
                    with obs.span("serve.attempt", attempt=attempt):
                        if self.faults is not None:
                            self.faults.on_call("execute")
                        y = resolution.plan.execute(request.x)
                    if execute_span is not None and attempt:
                        execute_span.attrs["retries"] = attempt
                    outcome = y, time.perf_counter() - started, attempt
                    break
                except Exception as exc:
                    deadline = request.deadline
                    retryable = (
                        attempt < self._retry.max_retries
                        and self._retry.is_retryable(exc)
                        and not (deadline is not None and deadline.expired())
                    )
                    if not retryable:
                        if execute_span is not None:
                            execute_span.attrs["failed"] = True
                        failure = exc
                        break
                    delay = self._retry.backoff(attempt)
                    if deadline is not None:
                        delay = min(delay, max(0.0, deadline.remaining()))
                    attempt += 1
                    self.metrics.counter("retries").inc()
                    if delay > 0.0:
                        self._sleep(delay)
        # The root span ends only after the execute span above closed, so
        # the tree stays well-nested even on the failure path.
        if failure is not None:
            self.metrics.counter("requests_failed").inc()
            self._end_trace(request, error=failure)
            _try_set_exception(request.future, failure)
            return None
        return outcome

    # ------------------------------------------------------------------
    # Tracing helpers (no-ops when the request carries no spans)
    # ------------------------------------------------------------------
    def _end_queue_span(self, request: _Request) -> None:
        """Close the queue-wait span at dequeue (idempotent)."""
        span, tracer = request.trace_queue, obs.get_tracer()
        if span is not None and tracer is not None:
            tracer.end(span)

    def _end_trace(
        self,
        request: _Request,
        error: Optional[BaseException] = None,
        **attrs,
    ) -> None:
        """Finish the request's root span with its outcome attributes."""
        tracer = obs.get_tracer()
        if tracer is None or request.trace_root is None:
            return
        self._end_queue_span(request)
        tracer.end(request.trace_root, error=error, **attrs)

    def _observe(self, result: ServeResult) -> None:
        self.metrics.counter("requests_served").inc()
        if result.degraded:
            self.metrics.counter("degraded_requests").inc()
        self.metrics.histogram("queue_wait_seconds").observe(
            result.queued_seconds
        )
        self.metrics.histogram("plan_seconds").observe(result.plan_seconds)
        self.metrics.histogram("execute_seconds").observe(
            result.execute_seconds
        )
        self.metrics.histogram("total_seconds").observe(result.total_seconds)

    # ------------------------------------------------------------------
    # Plan resolution
    # ------------------------------------------------------------------
    def _resolve_plan(
        self,
        key: Fingerprint,
        matrix: CSRMatrix,
        deadline: Optional[Deadline] = None,
    ) -> _Resolution:
        started = time.perf_counter()
        # An upgrade is a provisional plan whose structure's traffic now
        # repays tuning: skip the hit/refresh short-circuits and rebuild.
        upgrade = False
        plan = self.cache.get(key)
        if plan is not None:
            # A provisional (amortizer-deferred) plan is a valid hit
            # until the structure's traffic projects a conversion payoff;
            # then it is rebuilt as a tuned plan.
            if plan.provisional and self._should_upgrade(key):
                upgrade = True
            else:
                self.metrics.counter("cache_hits").inc()
                return _Resolution(
                    plan, True, time.perf_counter() - started, False
                )

        breaker = self._breaker_for(key)
        ticket = breaker.acquire()
        if ticket is BuildTicket.DEGRADE:
            # Breaker open: skip re-tuning entirely, serve the reference
            # CSR plan (correct for any input, zero build cost).
            with obs.span("serve.degrade", reason="breaker_open"):
                return _Resolution(
                    DegradedPlan(matrix),
                    False,
                    time.perf_counter() - started,
                    True,
                )
        if ticket is BuildTicket.PROBE:
            self.metrics.counter("breaker_probes").inc()

        structure = (
            key.structure_key if self.config.structure_cache else None
        )
        lock_key: Hashable = structure if structure is not None else key
        build_lock = self._acquire_build_lock(lock_key)
        try:
            with build_lock:
                # Double-check: another worker may have built it while we
                # waited on the single-flight lock.
                plan = self.cache.get(key, record_stats=False)
                if plan is not None and plan.provisional and not upgrade:
                    # Another worker admitted a provisional plan while we
                    # waited: treat it as a provisional hit and re-ask the
                    # amortizer whether this use tips the balance.
                    upgrade = self._should_upgrade(key)
                if plan is not None and not (plan.provisional and upgrade):
                    self.metrics.counter("cache_hits").inc()
                    if breaker.record_success():
                        self.metrics.counter("breaker_recovered").inc()
                    return _Resolution(
                        plan, True, time.perf_counter() - started, False
                    )
                if structure is not None and not upgrade:
                    donor = self.cache.get_by_structure(structure)
                    if donor is not None and donor.provisional:
                        # Value churn over a deferred structure still
                        # counts toward its conversion payoff; once the
                        # rate repays, build tuned instead of refreshing
                        # the CSR placeholder.
                        if self._should_upgrade(key):
                            upgrade = True
                            donor = None
                    if donor is not None:
                        plan = self._refresh_plan(key, matrix, donor)
                        if plan is not None:
                            if breaker.record_success():
                                self.metrics.counter(
                                    "breaker_recovered"
                                ).inc()
                            return _Resolution(
                                plan,
                                False,
                                time.perf_counter() - started,
                                False,
                                refreshed=True,
                            )
                self.metrics.counter("cache_misses").inc()
                if (
                    self.config.amortize_conversions
                    and not upgrade
                    and not self._should_upgrade(key)
                ):
                    plan = self._provisional_plan(key, matrix)
                    if plan is not None:
                        self.metrics.counter("conversions_deferred").inc()
                        if breaker.record_success():
                            self.metrics.counter("breaker_recovered").inc()
                        if self.cache.put(plan):
                            self.metrics.counter("plans_cached").inc()
                        else:
                            self.metrics.counter("plans_uncacheable").inc()
                        return _Resolution(
                            plan,
                            False,
                            time.perf_counter() - started,
                            False,
                        )
                build_started = time.perf_counter()
                try:
                    with obs.span(
                        "serve.build", probe=ticket is BuildTicket.PROBE
                    ):
                        plan = self._build_plan(key, matrix, deadline)
                        if upgrade:
                            self.metrics.counter("plans_upgraded").inc()
                except Exception:
                    # Graceful degradation: the build failure is recorded
                    # against the breaker, but this batch is still served
                    # via the reference CSR plan rather than failed.
                    self.metrics.counter("plan_build_failures").inc()
                    if breaker.record_failure():
                        self.metrics.counter("breaker_opened").inc()
                    with obs.span("serve.degrade", reason="build_failed"):
                        return _Resolution(
                            DegradedPlan(matrix),
                            False,
                            time.perf_counter() - started,
                            True,
                        )
                if breaker.record_success():
                    self.metrics.counter("breaker_recovered").inc()
                # Cold-path latency: decision (feature extraction + model
                # walk or fallback) plus the format conversion.  Only a
                # cache miss pays this, so the histogram isolates exactly
                # the cost the vectorized cold path is meant to shrink.
                self.metrics.histogram("plan_build_seconds").observe(
                    time.perf_counter() - build_started
                )
                if self.cache.put(plan):
                    self.metrics.counter("plans_cached").inc()
                else:
                    self.metrics.counter("plans_uncacheable").inc()
        finally:
            self._release_build_lock(lock_key)
        self._update_gauges()
        return _Resolution(plan, False, time.perf_counter() - started, False)

    def _refresh_plan(
        self, key: Fingerprint, matrix: CSRMatrix, donor: CachedPlan
    ) -> Optional[CachedPlan]:
        """Tier-2 fast path: reuse the donor's decision, rebuild values.

        The donor is a resident plan whose structural digest matches
        ``matrix``; its decision (format, kernel, rule, overhead ledger)
        carries over verbatim and only the converted matrix's value
        arrays are rebuilt — no feature extraction, no rule walk, no
        conversion.  The refreshed plan is promoted into tier 1 under the
        new value fingerprint.  Returns None when the refresh fails for
        any reason: the caller then runs a full build, so a bad donor
        costs time, never correctness.
        """
        refresh_started = time.perf_counter()
        try:
            with obs.span(
                "plan.refresh",
                tier=2,
                fingerprint=str(key),
                format=donor.decision.format_name.value,
            ):
                if self.faults is not None:
                    self.faults.on_call("refresh")
                refreshed = donor.decision.matrix.refresh_values(matrix)
        except Exception:
            self.metrics.counter("plan_refresh_failures").inc()
            return None
        plan = CachedPlan(
            key=key,
            decision=replace(donor.decision, matrix=refreshed),
            matrix_bytes=refreshed.memory_bytes(),
            # A provisional donor stays provisional: the refreshed copy is
            # still the deferred CSR identity, upgradeable later.
            provisional=donor.provisional,
        )
        self.metrics.counter("structure_hits").inc()
        self.metrics.counter("plans_refreshed").inc()
        self.metrics.histogram("plan_refresh_seconds").observe(
            time.perf_counter() - refresh_started
        )
        if self.cache.put(plan):
            self.metrics.counter("plans_cached").inc()
        else:
            self.metrics.counter("plans_uncacheable").inc()
        self._update_gauges()
        return plan

    def _build_plan(
        self,
        key: Fingerprint,
        matrix: CSRMatrix,
        deadline: Optional[Deadline] = None,
    ) -> CachedPlan:
        if self.faults is not None:
            self.faults.on_call("decide")
        self._observe_model_epoch()
        if self._tuner_takes_deadline:
            decision: Decision = self.tuner.decide(matrix, deadline=deadline)
        else:
            decision = self.tuner.decide(matrix)
        if decision.used_fallback:
            self.metrics.counter("fallback_decisions").inc()
        stage_counter = _CASCADE_STAGE_COUNTER.get(decision.cascade_stage)
        if stage_counter is not None:
            self.metrics.counter(stage_counter).inc()
        if decision.matrix is None:
            if self.faults is not None:
                self.faults.on_call("convert")
            decision.matrix, _ = convert(
                matrix, decision.format_name, fill_budget=None
            )
        self._specialize_kernel(decision)
        self.metrics.counter("plans_built").inc()
        return CachedPlan(
            key=key,
            decision=decision,
            matrix_bytes=decision.matrix.memory_bytes(),
        )

    def _specialize_kernel(self, decision: Decision) -> None:
        """Apply ``config.kernel_backend`` to a freshly built decision.

        A tuner configured with the same backend may have specialized
        already (``decision.compiled_kernel`` set); otherwise the engine
        runs the backend here so arbitrary tuners get codegen too.  Any
        failure — including an injected ``codegen.compile`` fault — keeps
        the generic kernel: the build still succeeds, nothing reaches the
        breaker.
        """
        if self.config.kernel_backend == "generic":
            return
        if decision.compiled_kernel is None:
            try:
                if self.faults is not None:
                    self.faults.on_call("codegen.compile")
                backend = get_backend(self.config.kernel_backend)
                specialized = backend.specialize(
                    decision.matrix, decision.kernel
                )
            except Exception:
                self.metrics.counter("codegen_fallbacks").inc()
                return
            if specialized is not decision.kernel:
                decision.compiled_kernel = specialized
        if decision.compiled_kernel is not None:
            self.metrics.counter("codegen_kernels").inc()
        else:
            self.metrics.counter("codegen_kept_generic").inc()

    # ------------------------------------------------------------------
    # Conversion amortizer + hot-swap observation
    # ------------------------------------------------------------------
    def _should_upgrade(self, key: Fingerprint) -> bool:
        """Record one use of ``key``'s structure and answer whether its
        projected reuse over the amortize horizon now repays a
        conversion.  First sighting always defers."""
        if not self.config.amortize_conversions:
            return True  # amortizer off: always tune immediately
        skey: Hashable = (
            key.structure_key if key.structure_key is not None else key
        )
        now = time.monotonic()
        with self._amortize_guard:
            stats = self._structure_stats.get(skey)
            if stats is None:
                self._structure_stats[skey] = [now, 1.0]
                return False
            stats[1] += 1.0
            elapsed = max(now - stats[0], 1e-6)
            projected = (
                stats[1] / elapsed
            ) * self.config.amortize_horizon_seconds
            return projected >= (
                _NOMINAL_CONVERSION_UNITS * self.config.amortize_payoff
            )

    def _provisional_plan(
        self, key: Fingerprint, matrix: CSRMatrix
    ) -> Optional[CachedPlan]:
        """A zero-tuning CSR identity plan for a first-seen structure.

        Needs the tuner's kernel library for the CSR kernel; a tuner
        exposing only ``decide()`` cannot defer (returns None → the
        caller runs a normal build).
        """
        kernels = getattr(self.tuner, "kernels", None)
        if kernels is None:
            return None
        decision = Decision(
            format_name=FormatName.CSR,
            kernel=kernels.kernel_for(FormatName.CSR),
            confidence=0.0,
            matched_rule=None,
            used_fallback=False,
            predicted_format=FormatName.CSR,
            matrix=matrix,
        )
        return CachedPlan(
            key=key,
            decision=decision,
            matrix_bytes=matrix.memory_bytes(),
            provisional=True,
        )

    def _observe_model_epoch(self) -> None:
        """Count tuner model hot-swaps (OnlineSmat retrains or cluster
        model pushes) that happened since the last cold decision."""
        epoch = getattr(self.tuner, "model_epoch", None)
        if epoch is None:
            return
        with self._epoch_guard:
            last = self._last_model_epoch
            if last is not None and epoch > last:
                self.metrics.counter("ruleset_swaps").inc(epoch - last)
            self._last_model_epoch = epoch

    def _acquire_build_lock(self, key: Hashable) -> threading.Lock:
        with self._build_locks_guard:
            entry = self._build_locks.get(key)
            if entry is None:
                entry = _BuildLock()
                self._build_locks[key] = entry
            entry.refs += 1
            return entry.lock

    def _release_build_lock(self, key: Hashable) -> None:
        with self._build_locks_guard:
            entry = self._build_locks.get(key)
            if entry is None:
                return
            entry.refs -= 1
            if entry.refs <= 0:
                del self._build_locks[key]

    def _breaker_for(self, key: Fingerprint) -> CircuitBreaker:
        with self._breakers_guard:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self.config.breaker_threshold,
                    probe_interval=self.config.breaker_probe_interval,
                )
                self._breakers[key] = breaker
            return breaker

    def breaker_states(self) -> Dict[Fingerprint, BreakerState]:
        """Current breaker state per fingerprint seen (diagnostics)."""
        with self._breakers_guard:
            return {
                key: breaker.state
                for key, breaker in self._breakers.items()
            }

    def _update_gauges(self) -> None:
        stats = self.cache.stats()
        self.metrics.gauge("cache_entries").set(stats["entries"])
        self.metrics.gauge("cache_bytes").set(stats["bytes"])

    # ------------------------------------------------------------------
    def scoreboard(self) -> str:
        """Cache + request + resilience scoreboard (the serve-bench output)."""
        stats = self.cache.stats()
        states = list(self.breaker_states().values())
        open_count = sum(1 for s in states if s is BreakerState.OPEN)
        half_open = sum(1 for s in states if s is BreakerState.HALF_OPEN)
        lines = [
            "plan cache:",
            f"  entries {int(stats['entries'])} "
            f"({int(stats['bytes'])} bytes)",
            f"  hit rate {stats['hit_rate']:.1%} "
            f"({int(stats['hits'])} hits / {int(stats['misses'])} misses)",
            f"  structure hits {int(stats['structure_hits'])} "
            f"(tier 2, values refreshed in place)",
            f"  evictions {int(stats['evictions'])}, "
            f"rejected {int(stats['rejected'])}",
            "breakers:",
            f"  {len(states)} tracked, {open_count} open, "
            f"{half_open} half-open",
            self.metrics.report(),
        ]
        if self.faults is not None:
            lines.append(self.faults.describe())
        return "\n".join(lines)
