"""The serving engine: concurrent tuned SpMV behind a bounded queue.

``ServingEngine`` turns the one-shot :meth:`repro.tuner.SMAT.spmv` call
into a persistent service.  The pipeline per request:

1. **fingerprint** the matrix (memory-bandwidth hash, no tuning work),
2. **enqueue** into a bounded submission queue — full queue means
   :class:`repro.errors.BackpressureError`, the engine sheds load rather
   than buffering unboundedly,
3. a **worker** pops the request and drains every queued request with the
   same fingerprint into one batch, so one plan lookup serves many vectors,
4. **plan resolution** — plan-cache hit executes immediately (no feature
   extraction, no conversion: the amortization of Table 3); a miss runs the
   full Figure 7 decision once, converts once, and caches the plan.  Misses
   for the same fingerprint are single-flighted so concurrent first
   requests build the plan only once,
5. **execute** the chosen kernel and resolve the caller's future.

The tuner can be a plain :class:`~repro.tuner.SMAT` or an
:class:`~repro.tuner.OnlineSmat`; with the latter, fallback measurements
recorded while serving retrain the model safely under its internal lock.

Every stage is metered (see :mod:`repro.serve.metrics`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BackpressureError, ServeError
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.serve.fingerprint import Fingerprint, fingerprint
from repro.serve.metrics import MetricsRegistry
from repro.serve.plancache import CachedPlan, PlanCache
from repro.tuner.runtime import Decision
from repro.types import FormatName


@dataclass(frozen=True)
class ServeConfig:
    """Sizing and policy of one serving engine."""

    #: Worker threads executing SpMV requests.
    workers: int = 4
    #: Bounded submission-queue capacity (the backpressure point).
    queue_capacity: int = 256
    #: Max requests coalesced into one batch per plan lookup.
    max_batch: int = 32
    #: Plan-cache entry cap.
    cache_entries: int = 128
    #: Plan-cache byte budget over converted matrices (None = unlimited).
    cache_bytes: Optional[int] = None
    #: Default seconds ``submit`` waits for queue space (None = forever).
    submit_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")


@dataclass
class ServeResult:
    """What the engine hands back for one request."""

    y: np.ndarray
    fingerprint: Fingerprint
    format_name: FormatName
    kernel_name: str
    cache_hit: bool
    used_fallback: bool
    #: Seconds spent waiting in the submission queue.
    queued_seconds: float
    #: Seconds resolving the plan (≈0 on a cache hit).
    plan_seconds: float
    #: Seconds inside the SpMV kernel.
    execute_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.queued_seconds + self.plan_seconds + self.execute_seconds


class _Request:
    __slots__ = ("key", "matrix", "x", "future", "enqueued_at")

    def __init__(
        self,
        key: Fingerprint,
        matrix: CSRMatrix,
        x: np.ndarray,
        future: "Future[ServeResult]",
    ) -> None:
        self.key = key
        self.matrix = matrix
        self.x = x
        self.future = future
        self.enqueued_at = time.perf_counter()


class _SubmissionQueue:
    """Bounded FIFO with same-fingerprint batch extraction.

    ``take_batch`` pops the head and then *removes* (not merely reads)
    every queued request sharing the head's fingerprint, preserving FIFO
    order among the rest — the coalescing that lets one plan lookup serve
    many vectors.
    """

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._items: Deque[_Request] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def put(self, request: _Request, timeout: Optional[float]) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while len(self._items) >= self._capacity and not self._closed:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise BackpressureError(
                            f"submission queue full "
                            f"({self._capacity} requests) for {timeout}s"
                        )
                self._not_full.wait(remaining)
            if self._closed:
                raise ServeError("engine is shutting down")
            self._items.append(request)
            self._not_empty.notify()

    def take_batch(self, max_batch: int) -> Optional[List[_Request]]:
        """Next batch of same-fingerprint requests; None when drained+closed."""
        with self._not_empty:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items:
                return None  # closed and drained
            head = self._items.popleft()
            batch = [head]
            if len(batch) < max_batch:
                keep: List[_Request] = []
                for request in self._items:
                    if (
                        request.key == head.key
                        and len(batch) < max_batch
                    ):
                        batch.append(request)
                    else:
                        keep.append(request)
                if len(batch) > 1:
                    self._items = deque(keep)
            self._not_full.notify(len(batch))
            return batch

    def drain(self) -> List[_Request]:
        with self._lock:
            remaining = list(self._items)
            self._items.clear()
            self._not_full.notify_all()
            return remaining

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class ServingEngine:
    """A persistent, thread-safe SpMV service over one tuner.

    >>> with ServingEngine(smat) as engine:
    ...     y = engine.spmv(matrix, x).y            # synchronous
    ...     future = engine.submit(matrix, x)       # asynchronous
    ...     print(engine.metrics.report())
    """

    def __init__(
        self,
        tuner,
        config: ServeConfig = ServeConfig(),
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not hasattr(tuner, "decide"):
            raise ServeError(
                f"tuner must expose decide(); got {type(tuner).__name__}"
            )
        self.tuner = tuner
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.cache = PlanCache(
            max_entries=config.cache_entries, max_bytes=config.cache_bytes
        )
        self._queue = _SubmissionQueue(config.queue_capacity)
        self._workers: List[threading.Thread] = []
        self._state_lock = threading.Lock()
        self._started = False
        self._stopped = False
        # Single-flight plan builds: fingerprint -> lock.
        self._build_locks: Dict[Fingerprint, threading.Lock] = {}
        self._build_locks_guard = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingEngine":
        with self._state_lock:
            if self._stopped:
                raise ServeError("engine cannot be restarted after stop()")
            if self._started:
                raise ServeError("engine already started")
            self._started = True
            for i in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"smat-serve-{i}",
                    daemon=True,
                )
                thread.start()
                self._workers.append(thread)
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` the backlog is served first, without
        it pending requests fail with :class:`ServeError`."""
        with self._state_lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        if not drain:
            for request in self._queue.drain():
                request.future.set_exception(
                    ServeError("engine stopped before request ran")
                )
        self._queue.close()
        for thread in self._workers:
            thread.join()
        self._update_gauges()

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        with self._state_lock:
            return self._started and not self._stopped

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        timeout: Optional[float] = None,
    ) -> "Future[ServeResult]":
        """Enqueue one SpMV; returns a future resolving to a ServeResult.

        ``timeout`` bounds the wait for queue space (defaults to the
        config's ``submit_timeout``); exhausting it raises
        :class:`BackpressureError`.
        """
        if not self.running:
            raise ServeError("engine is not running (call start())")
        key = fingerprint(matrix)
        future: "Future[ServeResult]" = Future()
        request = _Request(key, matrix, x, future)
        effective = (
            timeout if timeout is not None else self.config.submit_timeout
        )
        try:
            self._queue.put(request, effective)
        except BackpressureError:
            self.metrics.counter("requests_rejected").inc()
            raise
        self.metrics.counter("requests_submitted").inc()
        self.metrics.gauge("queue_depth").set(len(self._queue))
        return future

    def spmv(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        timeout: Optional[float] = None,
    ) -> ServeResult:
        """Synchronous convenience wrapper over :meth:`submit`."""
        return self.submit(matrix, x, timeout=timeout).result()

    def spmv_many(
        self, requests: Iterable[Tuple[CSRMatrix, np.ndarray]]
    ) -> List[ServeResult]:
        """Submit a sequence of (matrix, x) pairs; wait for all results."""
        futures = [self.submit(matrix, x) for matrix, x in requests]
        return [f.result() for f in futures]

    def invalidate(self, matrix: CSRMatrix) -> bool:
        """Drop the cached plan for ``matrix`` (call after mutating it)."""
        invalidated = self.cache.invalidate(fingerprint(matrix))
        if invalidated:
            self.metrics.counter("plans_invalidated").inc()
            self._update_gauges()
        return invalidated

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._queue.take_batch(self.config.max_batch)
            if batch is None:
                return
            self.metrics.gauge("queue_depth").set(len(self._queue))
            if len(batch) > 1:
                self.metrics.counter("requests_batched").inc(len(batch) - 1)
            self.metrics.histogram(
                "batch_size", buckets=(1, 2, 4, 8, 16, 32, 64)
            ).observe(len(batch))
            self._process_batch(batch)

    def _process_batch(self, batch: Sequence[_Request]) -> None:
        head = batch[0]
        dequeued_at = time.perf_counter()
        try:
            plan, cache_hit, plan_seconds = self._resolve_plan(
                head.key, head.matrix
            )
        except Exception as exc:  # tuning/conversion failure fails the batch
            self.metrics.counter("requests_failed").inc(len(batch))
            for request in batch:
                if not request.future.cancelled():
                    request.future.set_exception(exc)
            return
        for i, request in enumerate(batch):
            if not request.future.set_running_or_notify_cancel():
                continue
            queued = dequeued_at - request.enqueued_at
            try:
                started = time.perf_counter()
                y = plan.execute(request.x)
                execute_seconds = time.perf_counter() - started
            except Exception as exc:
                self.metrics.counter("requests_failed").inc()
                request.future.set_exception(exc)
                continue
            result = ServeResult(
                y=y,
                fingerprint=request.key,
                format_name=plan.decision.format_name,
                kernel_name=plan.decision.kernel.name,
                cache_hit=cache_hit or i > 0,
                used_fallback=plan.decision.used_fallback,
                queued_seconds=queued,
                plan_seconds=plan_seconds if i == 0 else 0.0,
                execute_seconds=execute_seconds,
            )
            self._observe(result)
            request.future.set_result(result)

    def _observe(self, result: ServeResult) -> None:
        self.metrics.counter("requests_served").inc()
        self.metrics.histogram("queue_wait_seconds").observe(
            result.queued_seconds
        )
        self.metrics.histogram("plan_seconds").observe(result.plan_seconds)
        self.metrics.histogram("execute_seconds").observe(
            result.execute_seconds
        )
        self.metrics.histogram("total_seconds").observe(result.total_seconds)

    # ------------------------------------------------------------------
    # Plan resolution
    # ------------------------------------------------------------------
    def _resolve_plan(
        self, key: Fingerprint, matrix: CSRMatrix
    ) -> Tuple[CachedPlan, bool, float]:
        """(plan, was_cache_hit, seconds_spent_resolving)."""
        started = time.perf_counter()
        plan = self.cache.get(key)
        if plan is not None:
            self.metrics.counter("cache_hits").inc()
            return plan, True, time.perf_counter() - started

        build_lock = self._build_lock_for(key)
        try:
            with build_lock:
                # Double-check: another worker may have built it while we
                # waited on the single-flight lock.
                plan = self.cache.get(key, record_stats=False)
                if plan is not None:
                    self.metrics.counter("cache_hits").inc()
                    return plan, True, time.perf_counter() - started
                self.metrics.counter("cache_misses").inc()
                build_started = time.perf_counter()
                plan = self._build_plan(key, matrix)
                # Cold-path latency: decision (feature extraction + model
                # walk or fallback) plus the format conversion.  Only a
                # cache miss pays this, so the histogram isolates exactly
                # the cost the vectorized cold path is meant to shrink.
                self.metrics.histogram("plan_build_seconds").observe(
                    time.perf_counter() - build_started
                )
                if self.cache.put(plan):
                    self.metrics.counter("plans_cached").inc()
                else:
                    self.metrics.counter("plans_uncacheable").inc()
        finally:
            self._release_build_lock(key)
        self._update_gauges()
        return plan, False, time.perf_counter() - started

    def _build_plan(self, key: Fingerprint, matrix: CSRMatrix) -> CachedPlan:
        decision: Decision = self.tuner.decide(matrix)
        if decision.used_fallback:
            self.metrics.counter("fallback_decisions").inc()
        if decision.matrix is None:
            decision.matrix, _ = convert(
                matrix, decision.format_name, fill_budget=None
            )
        self.metrics.counter("plans_built").inc()
        return CachedPlan(
            key=key,
            decision=decision,
            matrix_bytes=decision.matrix.memory_bytes(),
        )

    def _build_lock_for(self, key: Fingerprint) -> threading.Lock:
        with self._build_locks_guard:
            return self._build_locks.setdefault(key, threading.Lock())

    def _release_build_lock(self, key: Fingerprint) -> None:
        with self._build_locks_guard:
            self._build_locks.pop(key, None)

    def _update_gauges(self) -> None:
        stats = self.cache.stats()
        self.metrics.gauge("cache_entries").set(stats["entries"])
        self.metrics.gauge("cache_bytes").set(stats["bytes"])

    # ------------------------------------------------------------------
    def scoreboard(self) -> str:
        """Cache + request scoreboard (the serve-bench output)."""
        stats = self.cache.stats()
        lines = [
            "plan cache:",
            f"  entries {int(stats['entries'])} "
            f"({int(stats['bytes'])} bytes)",
            f"  hit rate {stats['hit_rate']:.1%} "
            f"({int(stats['hits'])} hits / {int(stats['misses'])} misses)",
            f"  evictions {int(stats['evictions'])}, "
            f"rejected {int(stats['rejected'])}",
            self.metrics.report(),
        ]
        return "\n".join(lines)
