"""Serving metrics: counters, gauges and latency histograms.

Everything the engine does is counted here so load tests and operators can
see, not guess, what happened: plan-cache hit rate, fallback rate, queue
depth, per-stage latency.  The registry is deliberately dependency-free —
``snapshot()`` returns a plain nested dict (JSON-serializable), and
``report()`` renders a fixed-width text scoreboard in the style of the
repo's other ``describe()`` methods.

All instruments are thread-safe; workers update them concurrently.

Counter families the engine pre-registers (so dashboards and the
scoreboard always show them, fired or not): resilience
(``deadline_exceeded``/``breaker_*``/...), tier-2 refresh
(``structure_hits``/``plans_refreshed``/...), batched execution
(``spmm_*``), and the decision cascade (``cascade_cheap_hits``/
``cascade_full_hits``/``cascade_measure_decisions``/
``cascade_floor_decisions`` for the stage that produced each cold
decision, ``conversions_deferred``/``plans_upgraded`` for the
conversion amortizer, ``ruleset_swaps`` for live model hot-swaps
observed while serving).

Fork-safety and multi-process aggregation
-----------------------------------------
A registry is **process-local**: its locks and values live in one
interpreter, and nothing here shares state across processes.  Two rules
keep multi-process serving (``repro.cluster``) honest:

* Worker processes must be started with the ``spawn`` start method, never
  ``fork``.  A forked child inherits a bit-for-bit copy of the parent's
  registry — counts that the parent already reported — so the child's
  later snapshots would double-count the pre-fork history (and a lock
  held mid-``inc`` at fork time deadlocks the child).  ``spawn`` gives
  every worker a registry that provably starts at zero.
* Workers ship *cumulative* snapshots (never deltas); the aggregator
  keeps the **latest** snapshot per worker incarnation and merges those
  with :func:`merge_snapshots`.  Last-write-wins over cumulative values
  is idempotent — a repeated or replayed heartbeat cannot double-count,
  and a crashed worker's final snapshot keeps contributing after its
  replacement starts from zero under a new incarnation key.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence

#: Default histogram bucket upper bounds, in seconds.  Log-spaced from 10µs
#: to 10s — wide enough for both the simulated backend (sub-ms) and real
#: wall-clock serving.
DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-5, 2))


class Counter:
    """A monotonically increasing count of events."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, cache bytes)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket latency histogram with sum/count/quantile estimates.

    Buckets are cumulative-style upper bounds plus an implicit +inf bucket.
    Quantiles are estimated by linear interpolation within the winning
    bucket — coarse, but plenty for a serving scoreboard.
    """

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs sorted, nonempty buckets")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            seen = 0
            lower = 0.0
            for i, bucket_count in enumerate(self._counts):
                upper = (
                    self.buckets[i] if i < len(self.buckets) else self._max
                )
                if seen + bucket_count >= target and bucket_count > 0:
                    fraction = (target - seen) / bucket_count
                    return lower + fraction * (upper - lower)
                seen += bucket_count
                lower = upper
            return self._max

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            count, total, top = self._count, self._sum, self._max
            counts = list(self._counts)
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "max": top,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            # Raw bucket state so snapshots from different processes can
            # be merged (and quantiles re-estimated) without sharing the
            # live instrument: bounds plus per-bucket counts, the last
            # entry being the +inf overflow bucket.
            "bounds": list(self.buckets),
            "counts": counts,
        }


class MetricsRegistry:
    """A named collection of instruments with one combined snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_BUCKETS
                )
            return self._histograms[name]

    def ensure(
        self,
        counters: Sequence[str] = (),
        gauges: Sequence[str] = (),
        histograms: Sequence[str] = (),
    ) -> "MetricsRegistry":
        """Pre-register instruments so they report at zero.

        Operators alert on counters like ``deadline_exceeded`` and
        ``degraded_requests``; an instrument that only materializes on its
        first increment is indistinguishable from one that was never
        wired.  The engine pre-registers its failure-path instruments so
        every scoreboard shows them, zero or not.
        """
        for name in counters:
            self.counter(name)
        for name in gauges:
            self.gauge(name)
        for name in histograms:
            self.histogram(name)
        return self

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """All instruments as one plain, JSON-serializable dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(histograms.items())
            },
        }

    def report(self) -> str:
        """Fixed-width text scoreboard of every instrument."""
        return format_snapshot(self.snapshot())


def format_snapshot(snap: Dict[str, Dict]) -> str:
    """Render one (possibly merged) snapshot as the text scoreboard."""
    lines: List[str] = []
    if snap.get("counters"):
        lines.append("counters:")
        for name, value in snap["counters"].items():
            lines.append(f"  {name:28s} {int(value):>12d}")
    if snap.get("gauges"):
        lines.append("gauges:")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:28s} {value:>12g}")
    histograms = snap.get("histograms", {})
    latency = {n: h for n, h in histograms.items() if n.endswith("_seconds")}
    plain = {n: h for n, h in histograms.items() if n not in latency}
    if latency:
        lines.append("latency (seconds):")
        for name, h in latency.items():
            lines.append(
                f"  {name:28s} n={h['count']:<8d} "
                f"mean={_fmt(h['mean'])} p50={_fmt(h['p50'])} "
                f"p99={_fmt(h['p99'])} max={_fmt(h['max'])}"
            )
    if plain:
        lines.append("distributions:")
        for name, h in plain.items():
            lines.append(
                f"  {name:28s} n={h['count']:<8d} "
                f"mean={h['mean']:.2f} max={h['max']:g}"
            )
    return "\n".join(lines) if lines else "no metrics recorded"


def _merged_quantile(
    bounds: List[float], counts: List[int], top: float, q: float
) -> float:
    """Re-estimate a quantile from merged bucket counts (same
    interpolation as :meth:`Histogram.quantile`)."""
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    seen = 0
    lower = 0.0
    for i, bucket_count in enumerate(counts):
        upper = bounds[i] if i < len(bounds) else top
        if seen + bucket_count >= target and bucket_count > 0:
            fraction = (target - seen) / bucket_count
            return lower + fraction * (upper - lower)
        seen += bucket_count
        lower = upper
    return top


def _merge_histograms(per_name: List[Dict]) -> Dict[str, object]:
    """Merge same-name histogram snapshots; bucket-exact when bounds agree."""
    count = sum(int(h["count"]) for h in per_name)
    total = sum(float(h["sum"]) for h in per_name)
    top = max(float(h["max"]) for h in per_name)
    merged: Dict[str, object] = {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "max": top,
    }
    bounds_seen = [h.get("bounds") for h in per_name]
    if all(b is not None for b in bounds_seen) and len(
        {tuple(b) for b in bounds_seen}
    ) == 1:
        bounds = list(bounds_seen[0])
        counts = [0] * (len(bounds) + 1)
        for h in per_name:
            for i, c in enumerate(h["counts"]):
                counts[i] += int(c)
        merged["bounds"] = bounds
        merged["counts"] = counts
        merged["p50"] = _merged_quantile(bounds, counts, top, 0.5)
        merged["p99"] = _merged_quantile(bounds, counts, top, 0.99)
    else:
        # Pre-bucket snapshots (or mismatched bucketing): quantiles can't
        # be reconstructed exactly, so report the worst contributor —
        # pessimistic but never misleadingly optimistic.
        merged["p50"] = max(float(h.get("p50", 0.0)) for h in per_name)
        merged["p99"] = max(float(h.get("p99", 0.0)) for h in per_name)
    return merged


def merge_snapshots(snapshots: Iterable[Dict[str, Dict]]) -> Dict[str, Dict]:
    """Combine per-process registry snapshots into one aggregate.

    Counters and gauges sum (the gauges the engine exports — queue depth,
    cache entries, cache bytes — are all fleet-additive); histograms merge
    bucket-by-bucket when their bounds agree, so merged quantiles use the
    same interpolation a single registry would.

    The caller is responsible for the *one snapshot per source* contract:
    feed the latest cumulative snapshot from each worker incarnation,
    never two snapshots of the same incarnation (see the module docstring
    on fork-safety — this is why workers ship cumulative values).
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histogram_parts: Dict[str, List[Dict]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, h in snap.get("histograms", {}).items():
            histogram_parts.setdefault(name, []).append(h)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            name: _merge_histograms(parts)
            for name, parts in sorted(histogram_parts.items())
        },
    }


def _fmt(seconds: float) -> str:
    """Human latency: picks µs/ms/s to keep three significant digits."""
    if seconds <= 0.0 or not math.isfinite(seconds):
        return f"{seconds:g}s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.3g}s"
