"""Failure semantics for the serving engine: deadlines, retries, breakers.

SMAT's runtime already degrades gracefully *inside* one decision: when no
rule is confident it falls back to execute-and-measure (Figure 7), and the
plain CSR kernel is always correct for any input.  This module extends
that principle from "no confident rule" to "any runtime failure":

* :class:`Deadline` — an absolute monotonic expiry covering a request's
  whole life (queue wait + plan build + execute).  Expired requests are
  failed at dequeue with :class:`repro.errors.DeadlineExceededError`
  instead of burning worker time.
* :class:`RetryPolicy` — bounded retry with exponential backoff for
  *transient* execute failures (:class:`repro.errors.TransientError`);
  everything else fails immediately.
* :class:`CircuitBreaker` — per-fingerprint plan-build protection.  After
  ``threshold`` consecutive build failures the breaker opens and the
  engine stops re-tuning that matrix; every ``probe_interval``-th request
  while open becomes a half-open probe whose success restores tuned
  serving.  All transitions are request-count driven — no wall clock — so
  they replay deterministically under fault injection.
* :class:`DegradedPlan` — the universal fallback the breaker degrades to:
  the row-loop CSR reference kernel (``CSRMatrix.spmv(reference=True)``),
  the same oracle every tuned kernel is validated against in
  ``tests/test_formats_reference_equivalence.py``.  It is always correct
  and needs no tuning, no conversion, and no cache entry.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import TransientError
from repro.formats.csr import CSRMatrix
from repro.types import FormatName


class Deadline:
    """An absolute expiry on the monotonic clock.

    Created at submit time, so the budget covers everything that happens
    to the request afterwards — queueing, plan resolution, retries and
    the kernel itself.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        if seconds <= 0.0:
            raise ValueError(f"deadline must be > 0 seconds, got {seconds}")
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with capped exponential backoff.

    ``backoff(attempt)`` is ``min(cap, base * 2**attempt)`` — attempt 0
    is the first retry.  Only :class:`~repro.errors.TransientError`
    failures are retried; deterministic failures (shape mismatches,
    misconfiguration) would fail identically every time.
    """

    max_retries: int = 2
    backoff_base: float = 0.005
    backoff_cap: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0.0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"backoff_cap ({self.backoff_cap}) must be >= "
                f"backoff_base ({self.backoff_base})"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))

    @staticmethod
    def is_retryable(exc: BaseException) -> bool:
        return isinstance(exc, TransientError)


class BreakerState(enum.Enum):
    """The classic three-state circuit breaker."""

    CLOSED = "closed"        # building plans normally
    OPEN = "open"            # builds suppressed, serving degraded
    HALF_OPEN = "half_open"  # one probe build in flight


class BuildTicket(enum.Enum):
    """What the breaker authorizes for one plan-resolution attempt."""

    BUILD = "build"      # normal tuned build (breaker closed)
    PROBE = "probe"      # half-open probe: one build to test recovery
    DEGRADE = "degrade"  # skip the build, serve the CSR reference plan


class CircuitBreaker:
    """Per-fingerprint build breaker, request-count driven.

    ``threshold`` consecutive build failures open the breaker.  While
    open, every ``probe_interval``-th :meth:`acquire` returns
    :attr:`BuildTicket.PROBE` (entering HALF_OPEN so concurrent callers
    keep degrading); the probe's :meth:`record_success` closes the
    breaker, its :meth:`record_failure` re-opens it.  No wall-clock state
    anywhere, so open→half-open→closed sequences replay identically under
    deterministic fault injection.
    """

    def __init__(self, threshold: int = 3, probe_interval: int = 8) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if probe_interval < 1:
            raise ValueError(
                f"probe_interval must be >= 1, got {probe_interval}"
            )
        self.threshold = threshold
        self.probe_interval = probe_interval
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._skipped = 0

    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def acquire(self) -> BuildTicket:
        """Authorize (or refuse) one plan build."""
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return BuildTicket.BUILD
            if self._state is BreakerState.HALF_OPEN:
                return BuildTicket.DEGRADE  # a probe is already in flight
            self._skipped += 1
            if self._skipped >= self.probe_interval:
                self._skipped = 0
                self._state = BreakerState.HALF_OPEN
                return BuildTicket.PROBE
            return BuildTicket.DEGRADE

    def record_success(self) -> bool:
        """A build succeeded; True if this transition *closed* the breaker."""
        with self._lock:
            recovered = self._state is not BreakerState.CLOSED
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._skipped = 0
            return recovered

    def record_failure(self) -> bool:
        """A build failed; True if this transition *opened* the breaker."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.OPEN  # failed probe: re-open
                self._skipped = 0
                return False
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.threshold
            ):
                self._state = BreakerState.OPEN
                self._skipped = 0
                return True
            return False

    def describe(self) -> str:
        with self._lock:
            return (
                f"{self._state.value} "
                f"({self._consecutive_failures} consecutive failures)"
            )


class DegradedPlan:
    """The universal fallback plan: the CSR reference (row-loop) kernel.

    Requests are already submitted as :class:`CSRMatrix`, so no
    conversion and no tuning stand between a build failure and a correct
    answer — ``execute`` is exactly ``matrix.spmv(x, reference=True)``,
    the oracle the whole kernel library is validated against.  Results
    are bitwise equal to a direct ``reference=True`` call.
    """

    KERNEL_NAME = "csr-reference-degraded"
    format_name = FormatName.CSR
    kernel_name = KERNEL_NAME

    __slots__ = ("matrix",)

    def __init__(self, matrix: CSRMatrix) -> None:
        if not isinstance(matrix, CSRMatrix):
            raise TypeError(
                "DegradedPlan serves CSR inputs only, got "
                f"{type(matrix).__name__}"
            )
        self.matrix = matrix

    def execute(self, x):
        return self.matrix.spmv(x, reference=True)

    def spmm(self, X):
        """Column-by-column reference SpMM — correctness over speed.

        Degraded service never takes the batched fast path: each RHS
        column runs the same reference kernel as :meth:`execute`, so
        batched and unbatched degraded results are bitwise identical.
        """
        X = self.matrix.check_operand_block(X)
        Y = np.empty(
            (self.matrix.n_rows, X.shape[1]), dtype=self.matrix.dtype
        )
        for j in range(X.shape[1]):
            Y[:, j] = self.matrix.spmv(X[:, j], reference=True)
        return Y
