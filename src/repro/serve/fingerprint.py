"""Matrix fingerprints: cache keys for tuned SpMV plans.

SMAT's decision is a function of the matrix alone, so a serving layer can
key "decision + converted matrix" by a digest of the matrix.  The
fingerprint has two parts:

* cheap scalars (shape, nnz, dtype) that reject most non-matches without
  hashing anything, and
* a BLAKE2b digest over the CSR arrays — the row pointer (structure), the
  column indices (pattern) and the value bytes.

Values are included deliberately: the cache stores the *converted matrix*,
so two matrices with identical structure but different values must not
collide (they would silently serve each other's products).  Hashing runs at
memory bandwidth, a fraction of one feature-extraction pass — see
DESIGN.md's plan-cache section for the cost accounting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.formats.csr import CSRMatrix

#: Digest size in bytes.  16 bytes (128 bits) makes accidental collisions
#: astronomically unlikely at any realistic cache population.
_DIGEST_SIZE = 16


@dataclass(frozen=True)
class Fingerprint:
    """A compact, hashable identity for one CSR matrix."""

    shape: Tuple[int, int]
    nnz: int
    dtype: str
    digest: str

    def __str__(self) -> str:
        m, n = self.shape
        return f"{m}x{n}/{self.nnz}nnz/{self.dtype}/{self.digest[:10]}"


def fingerprint(matrix: CSRMatrix) -> Fingerprint:
    """Fingerprint a CSR matrix (one streaming pass over its arrays)."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for array in (matrix.ptr, matrix.indices, matrix.data):
        h.update(np.ascontiguousarray(array).tobytes())
    return Fingerprint(
        shape=matrix.shape,
        nnz=matrix.nnz,
        dtype=str(matrix.dtype),
        digest=h.hexdigest(),
    )


def structural_digest(matrix: CSRMatrix) -> str:
    """Digest of the sparsity structure only (ptr + indices, no values).

    Two matrices with the same structural digest get the same tuning
    decision even when their values differ — diagnostics use this to spot
    re-tuning work that a structure-keyed decision cache could share.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(np.ascontiguousarray(matrix.ptr).tobytes())
    h.update(np.ascontiguousarray(matrix.indices).tobytes())
    return h.hexdigest()
