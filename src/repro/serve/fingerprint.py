"""Matrix fingerprints: cache keys for tuned SpMV plans.

SMAT's decision is a function of the matrix alone, so a serving layer can
key "decision + converted matrix" by a digest of the matrix.  The
fingerprint has two parts:

* cheap scalars (shape, nnz, dtype) that reject most non-matches without
  hashing anything, and
* a BLAKE2b digest over the CSR arrays — the row pointer (structure), the
  column indices (pattern) and the value bytes.

Values are included deliberately: the cache stores the *converted matrix*,
so two matrices with identical structure but different values must not
collide (they would silently serve each other's products).  Hashing runs at
memory bandwidth, a fraction of one feature-extraction pass — see
DESIGN.md's plan-cache section for the cost accounting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.formats.csr import CSRMatrix

#: Digest size in bytes.  16 bytes (128 bits) makes accidental collisions
#: astronomically unlikely at any realistic cache population.
_DIGEST_SIZE = 16


@dataclass(frozen=True)
class StructureKey:
    """Tier-2 cache key: the identity of a sparsity *structure*.

    Two matrices share a StructureKey exactly when they have the same
    shape, dtype and ptr/indices arrays — the case where a cached tuning
    decision carries over and only the value arrays need refreshing.
    """

    shape: Tuple[int, int]
    nnz: int
    dtype: str
    digest: str

    def __str__(self) -> str:
        m, n = self.shape
        return f"{m}x{n}/{self.nnz}nnz/{self.dtype}/~{self.digest[:10]}"


@dataclass(frozen=True)
class Fingerprint:
    """A compact, hashable identity for one CSR matrix."""

    shape: Tuple[int, int]
    nnz: int
    dtype: str
    digest: str
    #: Structure-only digest (ptr + indices, no values); empty for
    #: fingerprints minted before the two-tier cache existed.
    structural: str = ""

    @property
    def structure_key(self) -> Optional[StructureKey]:
        """The tier-2 key this fingerprint belongs under, if known."""
        if not self.structural:
            return None
        return StructureKey(self.shape, self.nnz, self.dtype, self.structural)

    def __str__(self) -> str:
        m, n = self.shape
        return f"{m}x{n}/{self.nnz}nnz/{self.dtype}/{self.digest[:10]}"


def fingerprint(matrix: CSRMatrix) -> Fingerprint:
    """Fingerprint a CSR matrix (one streaming pass over its arrays).

    The structural digest comes for free: the hash state after ptr and
    indices is forked before the value bytes are folded in, so one pass
    yields both the value-inclusive tier-1 key and the structure-only
    tier-2 key.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(np.ascontiguousarray(matrix.ptr).tobytes())
    h.update(np.ascontiguousarray(matrix.indices).tobytes())
    structural = h.copy()
    h.update(np.ascontiguousarray(matrix.data).tobytes())
    return Fingerprint(
        shape=matrix.shape,
        nnz=matrix.nnz,
        dtype=str(matrix.dtype),
        digest=h.hexdigest(),
        structural=structural.hexdigest(),
    )


def structural_digest(matrix: CSRMatrix) -> str:
    """Digest of the sparsity structure only (ptr + indices, no values).

    Two matrices with the same structural digest get the same tuning
    decision even when their values differ — the structure-keyed tier of
    the plan cache shares decisions across exactly this equivalence, and
    :func:`fingerprint` computes the identical digest as a by-product
    (``fingerprint(m).structural == structural_digest(m)``).
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(np.ascontiguousarray(matrix.ptr).tobytes())
    h.update(np.ascontiguousarray(matrix.indices).tobytes())
    return h.hexdigest()
