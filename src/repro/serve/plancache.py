"""The plan cache: tuned decisions + converted matrices, keyed by fingerprint.

This is where SMAT's amortization story (Table 3) becomes a serving
guarantee: feature extraction, rule walking and format conversion run once
per distinct matrix; every further request for the same fingerprint reuses
the stored :class:`CachedPlan` and pays only the kernel execution.

Eviction is LRU under two budgets — an entry cap and an optional byte cap
over the converted matrices' storage (``memory_bytes()`` includes padding,
so a cached ELL plan is charged for its zero fill).  A plan larger than the
whole byte budget is simply never admitted; the engine still serves it,
uncacheable.  ``invalidate`` exists for callers that mutate a matrix in
place and know its fingerprint no longer describes it.

Alongside the value-keyed store sits a structure index (tier 2): for every
resident plan, the plan's :class:`~repro.serve.fingerprint.StructureKey`
maps to its fingerprint, latest admission winning.  ``get_by_structure``
answers "is there *any* resident plan with this sparsity structure?" — the
question the engine's value-refresh fast path asks on a tier-1 miss.  The
index holds no matrices of its own, so the byte budget is shared across
both tiers by construction, and entries leave the index exactly when their
plan leaves the store.

All operations are O(1) under one lock; the cache is shared by every
engine worker.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.serve.fingerprint import Fingerprint, StructureKey
from repro.tuner.runtime import Decision


@dataclass
class CachedPlan:
    """One tuned, ready-to-execute SpMV plan.

    ``decision.matrix`` holds the matrix already converted to the chosen
    format; executing the plan is a single kernel call.
    """

    key: Fingerprint
    decision: Decision
    #: Storage footprint of the converted matrix (padding included).
    matrix_bytes: int
    hits: int = field(default=0)
    #: True for an amortizer placeholder: the engine deferred tuning and
    #: cached the CSR identity until the structure's observed request
    #: rate projects enough reuse to repay a conversion (see
    #: ``ServeConfig.amortize_conversions``).  Provisional plans serve
    #: correctly; they are just not (yet) format-optimised.
    provisional: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.decision.matrix is None:
            raise ValueError("a CachedPlan needs the converted matrix")

    @property
    def kernel(self):
        """The callable products run: the decision's compiled codegen
        artifact when one is attached, else its registry kernel.  The
        compiled kernel folds only *structure*, so it stays valid across
        ``refresh_values`` — tier-2 refreshed plans inherit it for free.
        """
        return self.decision.serving_kernel

    def execute(self, x):
        """Run the plan's kernel on one operand vector."""
        return self.kernel(self.decision.matrix, x)

    def spmm(self, X):
        """Run the plan on a column-stacked RHS block ``(n_cols, k)``.

        Formats with a native multi-RHS kernel make one pass over the
        converted operand; everything else (HYB/BCSR/...) degrades
        transparently to column-by-column calls of the plan's own tuned
        kernel — same results, no amortisation.  The fallback reuses the
        compiled codegen kernel when the plan carries one.
        """
        from repro.kernels.spmm import spmm_fallback, spmm_kernel_for

        matrix = self.decision.matrix
        kernel = spmm_kernel_for(matrix.format_name)
        if kernel is not None:
            return kernel(matrix, X)
        plan_kernel = self.kernel
        return spmm_fallback(
            matrix, X, spmv=lambda col: plan_kernel(matrix, col)
        )


class PlanCache:
    """A thread-safe LRU cache of :class:`CachedPlan` objects."""

    def __init__(
        self,
        max_entries: int = 128,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._plans: "OrderedDict[Fingerprint, CachedPlan]" = OrderedDict()
        # Tier-2 index: structure key -> fingerprint of the most recently
        # admitted resident plan with that sparsity structure.
        self._structures: Dict[StructureKey, Fingerprint] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0
        self._structure_hits = 0

    # ------------------------------------------------------------------
    def get(
        self, key: Fingerprint, record_stats: bool = True
    ) -> Optional[CachedPlan]:
        """The cached plan for ``key``, refreshing its recency; else None.

        ``record_stats=False`` still refreshes LRU recency but leaves the
        hit/miss statistics alone — for the engine's single-flight
        double-check, which would otherwise count one miss twice.
        """
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                if record_stats:
                    self._misses += 1
                return None
            self._plans.move_to_end(key)
            if record_stats:
                self._hits += 1
            plan.hits += 1
            return plan

    def get_by_structure(
        self, structure: StructureKey
    ) -> Optional[CachedPlan]:
        """The resident plan sharing this sparsity structure, if any.

        This is the tier-2 lookup: the caller's exact fingerprint missed,
        but a plan for the same structure (different values) may still be
        resident — its decision carries over and only its value arrays
        need refreshing.  A hit refreshes the donor plan's LRU recency so
        a value-churn workload cannot evict its own structure donor.
        """
        with self._lock:
            key = self._structures.get(structure)
            if key is None:
                return None
            plan = self._plans.get(key)
            if plan is None:  # defensive: evictions unlink eagerly
                del self._structures[structure]
                return None
            self._plans.move_to_end(key)
            self._structure_hits += 1
            return plan

    def put(self, plan: CachedPlan) -> bool:
        """Admit ``plan``, evicting LRU entries to fit; False if too large.

        Re-inserting an existing key replaces the stored plan (the
        invalidate-then-retune path).
        """
        with self._lock:
            if (
                self.max_bytes is not None
                and plan.matrix_bytes > self.max_bytes
            ):
                self._rejected += 1
                return False
            old = self._plans.pop(plan.key, None)
            if old is not None:
                self._bytes -= old.matrix_bytes
            self._plans[plan.key] = plan
            self._bytes += plan.matrix_bytes
            skey = plan.key.structure_key
            if skey is not None:
                self._structures[skey] = plan.key
            while len(self._plans) > self.max_entries or (
                self.max_bytes is not None and self._bytes > self.max_bytes
            ):
                _, evicted = self._plans.popitem(last=False)
                self._bytes -= evicted.matrix_bytes
                self._evictions += 1
                self._unlink_structure(evicted.key)
            return True

    def invalidate(self, key: Fingerprint) -> bool:
        """Drop one plan (e.g. its matrix was mutated in place)."""
        with self._lock:
            plan = self._plans.pop(key, None)
            if plan is None:
                return False
            self._bytes -= plan.matrix_bytes
            self._unlink_structure(plan.key)
            return True

    def clear(self) -> int:
        """Drop everything; returns how many plans were dropped."""
        with self._lock:
            dropped = len(self._plans)
            self._plans.clear()
            self._structures.clear()
            self._bytes = 0
            return dropped

    def _unlink_structure(self, key: Fingerprint) -> None:
        """Drop the tier-2 entry iff it still points at ``key``; caller
        holds the lock.  A later plan with the same structure may have
        taken over the index slot — that mapping must survive."""
        skey = key.structure_key
        if skey is not None and self._structures.get(skey) == key:
            del self._structures[skey]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: Fingerprint) -> bool:
        with self._lock:
            return key in self._plans

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "entries": len(self._plans),
                "bytes": self._bytes,
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / total if total else 0.0,
                "evictions": self._evictions,
                "rejected": self._rejected,
                "structure_entries": len(self._structures),
                "structure_hits": self._structure_hits,
            }
