"""``repro.serve`` — a concurrent SpMV serving layer.

SMAT's premise is that the tuning decision is made once per matrix and
amortized over many products (Table 3's overhead column).  This package
turns that premise into a service: a fingerprint-keyed plan cache in front
of the tuner, a bounded request queue with worker threads and
same-fingerprint batching, and a metrics registry that makes the
amortization observable.

Failure semantics extend SMAT's own degradation principle (no confident
rule → execute-and-measure) to runtime: end-to-end request deadlines,
bounded retries for transient execute failures, and a per-fingerprint
circuit breaker that degrades to the always-correct CSR reference plan
when plan builds keep failing (``repro.serve.resilience``).  Every path
is testable through deterministic fault injection
(``repro.serve.faults``).

>>> from repro.serve import ServingEngine
>>> with ServingEngine(smat) as engine:
...     y = engine.spmv(matrix, x, deadline=0.5).y
...     print(engine.scoreboard())
"""

from repro.serve.engine import (
    DeltaOutcome,
    ServeConfig,
    ServeResult,
    ServingEngine,
)
from repro.serve.faults import (
    FaultPlan,
    FaultRule,
    InjectedFatalFault,
    InjectedFault,
)
from repro.serve.fingerprint import (
    Fingerprint,
    StructureKey,
    fingerprint,
    structural_digest,
)
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serve.plancache import CachedPlan, PlanCache
from repro.serve.resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    DegradedPlan,
    RetryPolicy,
)
from repro.serve.workload import (
    ReplayReport,
    StructureChurnReport,
    build_matrix_pool,
    churn_schedule,
    evolving_graph_delta,
    popularity_schedule,
    replay,
    replay_fan_in,
    replay_structure_churn,
    value_churn_pool,
)

__all__ = [
    "BreakerState",
    "CachedPlan",
    "CircuitBreaker",
    "Counter",
    "Deadline",
    "DegradedPlan",
    "DeltaOutcome",
    "FaultPlan",
    "FaultRule",
    "Fingerprint",
    "Gauge",
    "Histogram",
    "InjectedFatalFault",
    "InjectedFault",
    "MetricsRegistry",
    "PlanCache",
    "ReplayReport",
    "RetryPolicy",
    "ServeConfig",
    "ServeResult",
    "ServingEngine",
    "StructureChurnReport",
    "StructureKey",
    "build_matrix_pool",
    "churn_schedule",
    "evolving_graph_delta",
    "fingerprint",
    "popularity_schedule",
    "replay",
    "replay_fan_in",
    "replay_structure_churn",
    "structural_digest",
    "value_churn_pool",
]
