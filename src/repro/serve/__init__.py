"""``repro.serve`` — a concurrent SpMV serving layer.

SMAT's premise is that the tuning decision is made once per matrix and
amortized over many products (Table 3's overhead column).  This package
turns that premise into a service: a fingerprint-keyed plan cache in front
of the tuner, a bounded request queue with worker threads and
same-fingerprint batching, and a metrics registry that makes the
amortization observable.

>>> from repro.serve import ServingEngine
>>> with ServingEngine(smat) as engine:
...     y = engine.spmv(matrix, x).y
...     print(engine.scoreboard())
"""

from repro.serve.engine import (
    ServeConfig,
    ServeResult,
    ServingEngine,
)
from repro.serve.fingerprint import (
    Fingerprint,
    fingerprint,
    structural_digest,
)
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serve.plancache import CachedPlan, PlanCache
from repro.serve.workload import (
    ReplayReport,
    build_matrix_pool,
    popularity_schedule,
    replay,
)

__all__ = [
    "CachedPlan",
    "Counter",
    "Fingerprint",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PlanCache",
    "ReplayReport",
    "ServeConfig",
    "ServeResult",
    "ServingEngine",
    "build_matrix_pool",
    "fingerprint",
    "popularity_schedule",
    "replay",
    "structural_digest",
]
