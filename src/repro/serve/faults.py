"""Deterministic fault injection for the serving engine.

A :class:`FaultPlan` wraps the seams where serving can fail — the tuner
decision (``decide``), the format conversion (``convert``), the tier-2
value refresh (``refresh``), the kernel (``execute``) and the batched
multi-RHS pass (``spmm``) — and injects
exceptions and latency according to a
list of :class:`FaultRule` windows.  Determinism is the point: rules are
indexed by *per-site call counts* and probabilistic rules draw from one
seeded generator, never the wall clock, so a chaos replay (``serve-bench
--faults``) and the resilience test suite see the same faults on every
run.  (With a multi-threaded engine the interleaving of *sites* can vary;
rules with ``rate=1.0`` over a call-index window are exact regardless of
thread schedule, which is what the tests use.)

Injected failures come in two flavours:

* :class:`InjectedFault` — a :class:`~repro.errors.TransientError`, i.e.
  retry-eligible: this is how the retry/backoff path is exercised.
* :class:`InjectedFatalFault` — a plain :class:`~repro.errors.ServeError`
  that the retry policy refuses, exercising the fail-fast path.

``kind="latency"`` rules inject delay without failing, for deadline and
queue-pressure experiments.  The plan also owns the ``sleep`` callable
the engine uses for retry backoff, so tests can virtualize time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServeError, TransientError

#: The engine seams a rule may attach to.  ``codegen.compile`` fires on
#: the engine's kernel-specialization step during a cold plan build; the
#: engine absorbs the failure and serves the generic kernel (the one seam
#: whose faults must never degrade a request or feed the breaker).
SITES = ("decide", "convert", "refresh", "execute", "spmm", "codegen.compile")

#: What an injected fault does at its site.
KINDS = ("transient", "fatal", "latency")


class InjectedFault(TransientError):
    """A deliberately injected *transient* failure (retry-eligible)."""


class InjectedFatalFault(ServeError):
    """A deliberately injected non-retryable failure."""


@dataclass(frozen=True)
class FaultRule:
    """One injection window at one seam.

    The rule is live for per-site call indices ``start <= i < stop``
    (``stop=None`` means forever) and fires with probability ``rate``
    (seeded; ``rate=1.0`` fires deterministically).  ``latency`` seconds
    of delay are injected before the failure (or alone, for
    ``kind="latency"``).
    """

    site: str
    kind: str = "transient"
    rate: float = 1.0
    start: int = 0
    stop: Optional[int] = None
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"site must be one of {SITES}, got {self.site!r}"
            )
        if self.kind not in KINDS:
            raise ValueError(
                f"kind must be one of {KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(
                f"stop ({self.stop}) must be > start ({self.start})"
            )
        if self.latency < 0.0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    def live_at(self, index: int) -> bool:
        return index >= self.start and (
            self.stop is None or index < self.stop
        )

    def describe(self) -> str:
        window = f"[{self.start}, {'∞' if self.stop is None else self.stop})"
        extra = f" +{self.latency * 1e3:g}ms" if self.latency else ""
        return f"{self.site}:{self.kind} rate={self.rate:g} {window}{extra}"


class FaultPlan:
    """A seeded, replayable set of fault rules plus injection accounting.

    Thread-safe: call counting and the RNG draw happen under one lock;
    the (optional) latency sleep and the raise happen outside it.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule],
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.sleep = sleep
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(seed)
        self._calls: Dict[str, int] = {site: 0 for site in SITES}
        self._injected: Dict[str, int] = {site: 0 for site in SITES}

    # ------------------------------------------------------------------
    def on_call(self, site: str) -> None:
        """Account one pass through ``site``; maybe delay, maybe raise."""
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}")
        with self._lock:
            index = self._calls[site]
            self._calls[site] = index + 1
            firing: List[FaultRule] = []
            for rule in self.rules:
                if rule.site != site or not rule.live_at(index):
                    continue
                if rule.rate >= 1.0 or self._rng.random() < rule.rate:
                    firing.append(rule)
            if firing:
                self._injected[site] += 1
        latency = sum(rule.latency for rule in firing)
        if latency > 0.0:
            self.sleep(latency)
        for rule in firing:
            if rule.kind == "transient":
                raise InjectedFault(
                    f"injected transient fault at {site}[{index}]"
                )
            if rule.kind == "fatal":
                raise InjectedFatalFault(
                    f"injected fatal fault at {site}[{index}]"
                )

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"calls": n, "injected": m}`` accounting."""
        with self._lock:
            return {
                site: {
                    "calls": self._calls[site],
                    "injected": self._injected[site],
                }
                for site in SITES
            }

    def describe(self) -> str:
        counts = self.counts()
        lines = ["fault plan:"]
        for rule in self.rules:
            lines.append(f"  {rule.describe()}")
        lines.append(
            "  injected "
            + ", ".join(
                f"{site} {c['injected']}/{c['calls']}"
                for site, c in counts.items()
            )
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @classmethod
    def parse(
        cls, specs: Iterable[str], seed: int = 0
    ) -> "FaultPlan":
        """Build a plan from CLI specs.

        Each spec is a comma-separated list whose first item is the site
        and the rest ``key=value`` pairs, e.g. ``decide,rate=0.5,stop=20``
        or ``execute,kind=latency,latency=0.002``.
        """
        rules = []
        for spec in specs:
            parts = [p.strip() for p in spec.split(",") if p.strip()]
            if not parts:
                raise ValueError(f"empty fault spec {spec!r}")
            kwargs: Dict[str, object] = {"site": parts[0]}
            for part in parts[1:]:
                if "=" not in part:
                    raise ValueError(
                        f"expected key=value in fault spec, got {part!r}"
                    )
                key, value = part.split("=", 1)
                key = key.strip()
                value = value.strip()
                if key in ("rate", "latency"):
                    kwargs[key] = float(value)
                elif key in ("start", "stop"):
                    kwargs[key] = int(value)
                elif key == "kind":
                    kwargs[key] = value
                else:
                    raise ValueError(f"unknown fault-rule key {key!r}")
            rules.append(FaultRule(**kwargs))  # type: ignore[arg-type]
        return cls(rules, seed=seed)
