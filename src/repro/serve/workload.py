"""Synthetic serving workloads and the replay driver behind serve-bench.

A serving workload is characterised by two distributions: *which* matrices
recur (popularity — realistic traffic is heavily skewed, a few operators
take most calls) and *what* requests arrive (a fresh operand vector per
call).  ``build_matrix_pool`` draws structurally diverse matrices from the
repo's synthetic collection generators; ``replay`` pushes a popularity-
skewed request stream through a :class:`~repro.serve.ServingEngine` from
several client threads and verifies every product against the reference
CSR kernel.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collection import banded, graphs, grids, random_sparse
from repro.features.incremental import DeltaFeatures
from repro.formats.csr import CSRMatrix
from repro.formats.delta import StructureDelta
from repro.serve.engine import DeltaOutcome, ServeResult, ServingEngine
from repro.types import INDEX_DTYPE


def build_matrix_pool(
    count: int, seed: int = 2013, size_scale: float = 1.0
) -> List[CSRMatrix]:
    """``count`` structurally diverse matrices (banded / grid / graph / random).

    Cycling through the four structure families makes the pool exercise
    every rule group of the model — DIA- and ELL-friendly operators as well
    as the CSR/COO default paths.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    pool: List[CSRMatrix] = []
    for i in range(count):
        kind = i % 4
        size = int((400 + 150 * (i // 4)) * size_scale)
        item_seed = int(rng.integers(0, 2**31 - 1))
        if kind == 0:
            bands = 3 + 2 * ((i // 4) % 4)
            pool.append(banded.banded_matrix(size, bands, seed=item_seed))
        elif kind == 1:
            side = max(8, int(np.sqrt(size)))
            pool.append(grids.laplacian_5pt(side))
        elif kind == 2:
            pool.append(
                graphs.power_law_graph(size, exponent=2.2, seed=item_seed)
            )
        else:
            pool.append(
                random_sparse.uniform_random(size, size, 6.0, seed=item_seed)
            )
    return pool


def value_churn_pool(
    pool: Sequence[CSRMatrix], updates: int, seed: int = 2013
) -> List[CSRMatrix]:
    """``updates`` value variants of every matrix, structure unchanged.

    Variant 0 is the original matrix; each later variant keeps the
    ``ptr``/``indices`` arrays and redraws the value array.  Serving the
    result exercises the engine's tier-2 fast path: every variant after
    the first misses the value-keyed cache but shares a resident plan's
    :class:`~repro.serve.fingerprint.StructureKey`, so the plan is
    value-refreshed instead of rebuilt.  This models the dominant churn
    in iterative solvers — Jacobians and preconditioners whose sparsity
    pattern is fixed while the entries change every step.
    """
    if updates < 1:
        raise ValueError(f"updates must be >= 1, got {updates}")
    rng = np.random.default_rng(seed)
    out: List[CSRMatrix] = []
    for matrix in pool:
        out.append(matrix)
        for _ in range(updates - 1):
            data = rng.standard_normal(matrix.nnz).astype(matrix.dtype)
            out.append(
                CSRMatrix(matrix.ptr, matrix.indices, data, matrix.shape)
            )
    return out


def churn_schedule(
    n_structures: int, updates: int, seed: int = 7
) -> List[int]:
    """A request order for a :func:`value_churn_pool`: every variant once.

    The base variant of each structure is scheduled before any of its
    value updates (so the full plan build is deterministic — the donor
    exists by the time its refreshes arrive even single-threaded); the
    updates themselves are shuffled across structures.
    """
    if n_structures < 1:
        raise ValueError(f"n_structures must be >= 1, got {n_structures}")
    if updates < 1:
        raise ValueError(f"updates must be >= 1, got {updates}")
    rng = np.random.default_rng(seed)
    bases = [i * updates for i in range(n_structures)]
    rng.shuffle(bases)
    rest = [
        i * updates + j
        for i in range(n_structures)
        for j in range(1, updates)
    ]
    rng.shuffle(rest)
    return [int(i) for i in bases + rest]


def popularity_schedule(
    n_matrices: int, n_requests: int, seed: int = 7, skew: float = 1.1
) -> List[int]:
    """A Zipf-like sequence of matrix indices, every matrix appearing once.

    The first ``n_matrices`` slots cover each matrix once (so cold misses
    are deterministic); the rest are drawn with probability ∝ rank^-skew.
    """
    if n_requests < n_matrices:
        raise ValueError(
            f"need >= {n_matrices} requests to cover every matrix, "
            f"got {n_requests}"
        )
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_matrices + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    tail = rng.choice(n_matrices, size=n_requests - n_matrices, p=weights)
    schedule = list(range(n_matrices)) + [int(i) for i in tail]
    rng.shuffle(schedule)
    return schedule


@dataclass
class ReplayReport:
    """Outcome of one workload replay."""

    results: List[ServeResult]
    mismatches: int
    errors: List[BaseException]
    wall_seconds: float

    @property
    def requests(self) -> int:
        return len(self.results)

    @property
    def throughput_rps(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.requests / self.wall_seconds

    @property
    def cache_hit_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.cache_hit for r in self.results) / len(self.results)


def replay(
    engine: ServingEngine,
    pool: Sequence[CSRMatrix],
    schedule: Sequence[int],
    clients: int = 4,
    seed: int = 99,
    verify: bool = True,
) -> ReplayReport:
    """Drive ``schedule`` through ``engine`` from ``clients`` threads.

    Each client owns a contiguous slice of the schedule and submits it
    synchronously (one outstanding request per client), which is how real
    callers use a shared engine.  With ``verify`` every result is checked
    against the reference CSR kernel.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    operands = _operands_for(pool, seed)
    import time

    slices = _split(schedule, clients)
    results: List[List[ServeResult]] = [[] for _ in slices]
    mismatch_counts = [0] * len(slices)
    errors: List[BaseException] = []
    errors_lock = threading.Lock()

    def client(slot: int, indices: Sequence[int]) -> None:
        for index in indices:
            matrix, x = pool[index], operands[index]
            try:
                result = engine.spmv(matrix, x)
            except BaseException as exc:  # collected, not raised: the
                with errors_lock:        # report decides pass/fail
                    errors.append(exc)
                continue
            results[slot].append(result)
            # allclose, not array_equal: the tuned kernel may sum in a
            # different order than the reference CSR loop.  (Bitwise
            # equality *does* hold against direct SMAT.spmv calls, which
            # run the same kernel — the stress test asserts that.)
            if verify and not np.allclose(
                result.y, matrix.spmv(x), atol=1e-9
            ):
                mismatch_counts[slot] += 1

    threads = [
        threading.Thread(target=client, args=(slot, indices), daemon=True)
        for slot, indices in enumerate(slices)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return ReplayReport(
        results=[r for bucket in results for r in bucket],
        mismatches=sum(mismatch_counts),
        errors=errors,
        wall_seconds=wall,
    )


def replay_fan_in(
    engine: ServingEngine,
    pool: Sequence[CSRMatrix],
    bursts: int,
    fan_in: int,
    seed: int = 99,
    verify: bool = True,
) -> ReplayReport:
    """Drive same-matrix request bursts through ``engine``.

    The fan-in workload: ``bursts`` rounds, each submitting ``fan_in``
    requests against *one* pool matrix (round-robin over the pool) in a
    single :meth:`~repro.serve.engine.ServingEngine.submit_batch` call —
    the shape a cluster worker presents when the dispatcher coalesces a
    same-fingerprint burst.  Whether the engine actually stacks them into
    an SpMM depends on its ``max_batch_rhs``; running the same workload
    against a batched and an unbatched engine isolates exactly the
    batching speedup.  Operand vectors are drawn from a seeded generator,
    so two replays with the same seed see identical requests.
    """
    if bursts < 1:
        raise ValueError(f"bursts must be >= 1, got {bursts}")
    if fan_in < 1:
        raise ValueError(f"fan_in must be >= 1, got {fan_in}")
    rng = np.random.default_rng(seed)
    import time

    results: List[ServeResult] = []
    mismatches = 0
    errors: List[BaseException] = []
    started = time.perf_counter()
    for burst in range(bursts):
        matrix = pool[burst % len(pool)]
        xs = [
            rng.standard_normal(matrix.n_cols).astype(matrix.dtype)
            for _ in range(fan_in)
        ]
        try:
            futures = engine.submit_batch(matrix, xs)
        except BaseException as exc:  # collected, not raised: the
            errors.append(exc)       # report decides pass/fail
            continue
        for x, future in zip(xs, futures):
            try:
                result = future.result()
            except BaseException as exc:
                errors.append(exc)
                continue
            results.append(result)
            # allclose for the same reason as replay(): the batched
            # kernel and the reference loop may sum in different orders.
            if verify and not np.allclose(
                result.y, matrix.spmv(x), atol=1e-9
            ):
                mismatches += 1
    wall = time.perf_counter() - started
    return ReplayReport(
        results=results,
        mismatches=mismatches,
        errors=errors,
        wall_seconds=wall,
    )


@dataclass
class StructureChurnReport(ReplayReport):
    """A :class:`ReplayReport` plus the delta-migration ledger."""

    deltas: List[DeltaOutcome] = field(default_factory=list)

    @property
    def policy_counts(self) -> Dict[str, int]:
        counts = {"patch": 0, "refresh": 0, "retune": 0}
        for outcome in self.deltas:
            counts[outcome.policy] = counts.get(outcome.policy, 0) + 1
        return counts

    @property
    def delta_hits(self) -> int:
        """Deltas that avoided a full retune (patched or refreshed)."""
        counts = self.policy_counts
        return counts["patch"] + counts["refresh"]


def evolving_graph_delta(
    matrix: CSRMatrix,
    rng: np.random.Generator,
    inserts: int,
    deletes: int,
) -> StructureDelta:
    """One edge insert/delete step of an evolving power-law graph.

    Deleted edges are drawn uniformly from the current edge set;
    inserted edges keep the degree skew by drawing target columns with
    probability density ∝ sqrt-inverted rank (``floor(u² · n)`` for
    uniform ``u`` — cheap preferential attachment), filtered against
    edges that already exist.  The delta is always valid against
    ``matrix``: deletions target live entries, insertions target holes.
    """
    m, n = matrix.shape
    degrees = matrix.row_degrees()
    row_of = np.repeat(np.arange(m, dtype=INDEX_DTYPE), degrees)
    keys = row_of * n + matrix.indices

    deletes = min(int(deletes), matrix.nnz)
    if deletes > 0:
        picks = rng.choice(matrix.nnz, size=deletes, replace=False)
        delete_rows = row_of[picks]
        delete_cols = matrix.indices[picks].astype(INDEX_DTYPE, copy=False)
    else:
        delete_rows = np.zeros(0, dtype=INDEX_DTYPE)
        delete_cols = np.zeros(0, dtype=INDEX_DTYPE)

    insert_rows: List[int] = []
    insert_cols: List[int] = []
    seen = set()
    attempts = 0
    while len(insert_rows) < inserts and attempts < inserts * 20:
        attempts += 1
        row = int(rng.integers(0, m))
        col = int(rng.random() ** 2 * n)
        key = row * n + col
        if key in seen:
            continue
        at = int(np.searchsorted(keys, key))
        if at < keys.shape[0] and int(keys[at]) == key:
            continue  # edge already present
        seen.add(key)
        insert_rows.append(row)
        insert_cols.append(col)
    count = len(insert_rows)
    return StructureDelta(
        insert_rows=np.asarray(insert_rows, dtype=INDEX_DTYPE),
        insert_cols=np.asarray(insert_cols, dtype=INDEX_DTYPE),
        insert_vals=rng.standard_normal(count).astype(matrix.dtype),
        delete_rows=delete_rows,
        delete_cols=delete_cols,
    )


def replay_structure_churn(
    engine: ServingEngine,
    nodes: int = 600,
    steps: int = 20,
    serves_per_step: int = 8,
    delta_fraction: float = 0.02,
    seed: int = 2013,
    verify: bool = True,
) -> StructureChurnReport:
    """Stream an evolving power-law graph through ``engine``.

    The scenario the delta path exists for: one long-lived graph serving
    SpMV traffic (PageRank/HITS-style) while its edge set churns.  Each
    of the ``steps`` rounds serves ``serves_per_step`` requests against
    the current structure, then applies one
    :func:`evolving_graph_delta` sized at ``delta_fraction`` of the
    current nnz via :meth:`~repro.serve.ServingEngine
    .apply_structure_delta`, with a :class:`DeltaFeatures` instance
    maintained across the whole run so re-decisions stay O(delta).
    Every served product is verified against the reference CSR kernel
    of the *current* structure — a stale-plan hit after a delta shows up
    as a mismatch, not silence.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if serves_per_step < 1:
        raise ValueError(
            f"serves_per_step must be >= 1, got {serves_per_step}"
        )
    if not 0.0 < delta_fraction <= 1.0:
        raise ValueError(
            f"delta_fraction must be in (0, 1], got {delta_fraction}"
        )
    rng = np.random.default_rng(seed)
    matrix = graphs.power_law_graph(
        nodes, exponent=2.2, seed=int(rng.integers(0, 2**31 - 1))
    )
    features = DeltaFeatures(matrix)
    import time

    results: List[ServeResult] = []
    deltas: List[DeltaOutcome] = []
    mismatches = 0
    errors: List[BaseException] = []
    started = time.perf_counter()
    for step in range(steps):
        for _ in range(serves_per_step):
            x = rng.standard_normal(matrix.n_cols).astype(matrix.dtype)
            try:
                result = engine.spmv(matrix, x)
            except BaseException as exc:  # collected, not raised: the
                errors.append(exc)       # report decides pass/fail
                continue
            results.append(result)
            if verify and not np.allclose(
                result.y, matrix.spmv(x), atol=1e-9
            ):
                mismatches += 1
        if step == steps - 1:
            break  # final round serves only; no trailing unserved delta
        churn = max(2, int(delta_fraction * matrix.nnz))
        delta = evolving_graph_delta(
            matrix, rng, inserts=churn - churn // 2, deletes=churn // 2
        )
        try:
            outcome = engine.apply_structure_delta(
                matrix, delta, features=features
            )
        except BaseException as exc:
            errors.append(exc)
            continue
        deltas.append(outcome)
        matrix = outcome.matrix
    wall = time.perf_counter() - started
    return StructureChurnReport(
        results=results,
        mismatches=mismatches,
        errors=errors,
        wall_seconds=wall,
        deltas=deltas,
    )


def _operands_for(
    pool: Sequence[CSRMatrix], seed: int
) -> List[np.ndarray]:
    """One fixed operand vector per matrix (bitwise-reproducible replays)."""
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(matrix.n_cols).astype(matrix.dtype)
        for matrix in pool
    ]


def _split(schedule: Sequence[int], parts: int) -> List[List[int]]:
    chunk = max(1, -(-len(schedule) // parts))
    slices = [
        list(schedule[i : i + chunk])
        for i in range(0, len(schedule), chunk)
    ]
    return slices or [[]]
