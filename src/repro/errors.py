"""Exception hierarchy for the SMAT reproduction.

All library-raised exceptions derive from :class:`SmatError` so callers can
catch everything coming out of the tuner with a single ``except`` clause while
still being able to distinguish failure classes.
"""

from __future__ import annotations


class SmatError(Exception):
    """Base class for all errors raised by this library."""


class FormatError(SmatError):
    """A sparse-matrix storage format was constructed from inconsistent data.

    Examples: a CSR row pointer that is not monotonically non-decreasing, a
    column index outside ``[0, n_cols)``, or mismatched array lengths.
    """


class ConversionError(SmatError):
    """A format conversion is impossible or would be pathological.

    DIA and ELL conversions raise this when the zero-fill explosion exceeds
    the configured budget (e.g. converting a random matrix with a million
    distinct diagonals to DIA).
    """


class KernelError(SmatError):
    """No kernel implementation matches the requested format/strategy set."""


class CodegenError(KernelError):
    """A specialized kernel could not be generated for a matrix.

    Raised by the ``codegen`` kernel backend when a matrix falls outside a
    template's envelope (too many diagonals to unroll, too many distinct
    row degrees to bucket, an unsupported format) or when the emitted
    source fails to compile.  Callers treat it as "keep the generic
    kernel", never as a serving failure.
    """


class LearningError(SmatError):
    """The learning subsystem received unusable training data.

    Raised for empty datasets, single-class datasets where a tree is
    requested with ``min_leaf`` larger than the dataset, or malformed
    serialized models.
    """


class TuningError(SmatError):
    """The tuner could not produce a decision.

    This indicates a configuration problem (no trained model and fallback
    disabled), never a property of the input matrix: any CSR matrix can at
    minimum run the reference CSR kernel.
    """


class SolverError(SmatError):
    """The AMG solver failed to set up a hierarchy or did not converge."""


class ServeError(SmatError):
    """The serving engine was misused or is in the wrong lifecycle state.

    Examples: submitting to an engine that was never started or already
    shut down, or configuring a non-positive worker count.
    """


class BackpressureError(ServeError):
    """The serving engine's bounded submission queue stayed full.

    Raised by :meth:`repro.serve.ServingEngine.submit` when the queue does
    not drain within the caller's timeout — the engine sheds load instead
    of buffering unboundedly.
    """


class DeadlineExceededError(ServeError):
    """A request's end-to-end deadline expired before it could be served.

    The deadline covers queue wait + plan resolution + kernel execution;
    an expired request is failed at dequeue, before any plan work is
    spent on it.
    """


class TransientError(ServeError):
    """A failure that is expected to clear on retry.

    The serving engine's retry policy re-executes a request only when the
    failure is an instance of this class — everything else (shape errors,
    misconfiguration) fails immediately.  Fault injection raises the
    :class:`repro.serve.faults.InjectedFault` subclass; external backends
    can raise their own subclasses to opt into retries.
    """
