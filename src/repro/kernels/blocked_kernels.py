"""BCSR and HYB SpMV kernels (extension formats)."""

from __future__ import annotations

import numpy as np

from repro.formats.bcsr import BCSRMatrix
from repro.formats.hyb import HYBMatrix
from repro.kernels.base import find_kernel, register_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.types import FormatName


@register_kernel(FormatName.BCSR, strategy_set())
def bcsr_basic(matrix: BCSRMatrix, x: np.ndarray) -> np.ndarray:
    """Reference: one small dense GEMV per stored block."""
    return BCSRMatrix.spmv(matrix, x)


@register_kernel(FormatName.BCSR, strategy_set(Strategy.VECTORIZE))
def bcsr_vectorized(matrix: BCSRMatrix, x: np.ndarray) -> np.ndarray:
    """All block GEMVs batched into one einsum, then scattered by block row.

    The batched multiply is the register-blocking payoff: the ``r x c``
    block becomes the innermost fully-unrolled computation.
    """
    x = matrix.check_operand(x)
    r, c = matrix.block_shape
    if matrix.n_blocks == 0:
        return np.zeros(matrix.n_rows, dtype=matrix.dtype)
    x_padded = np.zeros(-(-matrix.n_cols // c) * c, dtype=matrix.dtype)
    x_padded[: matrix.n_cols] = x
    # Gather each block's x segment: (n_blocks, c).
    x_blocks = x_padded.reshape(-1, c)[matrix.block_cols]
    partial = np.einsum("krc,kc->kr", matrix.blocks, x_blocks)
    block_rows = np.repeat(
        np.arange(matrix.n_block_rows), np.diff(matrix.block_ptr)
    )
    y = np.zeros((matrix.n_block_rows, r), dtype=matrix.dtype)
    np.add.at(y, block_rows, partial)
    return y.reshape(-1)[: matrix.n_rows]


@register_kernel(FormatName.HYB, strategy_set())
def hyb_basic(matrix: HYBMatrix, x: np.ndarray) -> np.ndarray:
    """Reference: ELL pass plus COO overflow pass."""
    return HYBMatrix.spmv(matrix, x)


@register_kernel(FormatName.HYB, strategy_set(Strategy.VECTORIZE))
def hyb_vectorized(matrix: HYBMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorized ELL kernel on the regular part plus vectorized COO
    scatter on the overflow."""
    ell_kernel = find_kernel(FormatName.ELL, strategy_set(Strategy.VECTORIZE))
    coo_kernel = find_kernel(FormatName.COO, strategy_set(Strategy.VECTORIZE))
    return ell_kernel(matrix.ell_part, x) + coo_kernel(matrix.coo_part, x)
