"""Per-format SpMV source emitters for the ``codegen`` kernel backend.

Each emitter inspects one converted matrix and writes the text of a
specialized kernel function::

    def spmv(matrix, x, aux):
        ...
        return y

with every *structural* constant folded into the source as a literal —
diagonal offsets and slice bounds for DIA/BDIA, the packed width for ELL,
the ``r x c`` block shape for BCSR, the ELL/COO split for HYB, and the
distinct row degrees for CSR.  Values (``matrix.data`` and friends) stay
runtime inputs, so a compiled kernel survives ``refresh_values`` — the
refreshed matrix shares the structure the source was folded against.

Structural arrays too large to embed as literals (degree-bucket gather
indices, COO row boundaries) are precomputed here and returned as ``aux``;
the backend binds them into the kernel closure.  Because ``aux`` derives
deterministically from structure, two structurally identical matrices can
share one compiled code object (the compile cache in ``codegen.py`` is
keyed by the source hash alone) while each binds its own ``aux``.

The emitted bodies are chosen to beat the generic vectorized kernels on
their home structure family, not merely to match them:

* DIA drops the masked clip-gather planes for direct slice-AXPYs with
  literal bounds.
* BCSR and HYB replace ``np.add.at`` scatters with contiguous
  segment-sum reductions (stored blocks / COO triplets are already
  sorted by row).
* CSR groups equal-degree rows and reduces each bucket with one
  ``einsum`` instead of the global cumsum segment trick.

Every template is differentially gated bitwise against the CSR reference
in ``tests/test_codegen_differential.py`` before the backend may serve it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import CodegenError
from repro.formats.base import SparseMatrix
from repro.types import FormatName

#: Unroll ceilings.  Beyond these the generated source would grow without
#: bound (one line per diagonal / packed slot / degree bucket) and the
#: compile itself would dominate — the emitter refuses and the backend
#: keeps the generic kernel.
MAX_DIAGS = 64
MAX_ELL_SLOTS = 32
MAX_DEGREE_BUCKETS = 8

#: ``aux`` payload: structural arrays bound into the kernel closure.
Aux = Tuple[object, ...]


@dataclass(frozen=True)
class GeneratedSource:
    """One emitted kernel: source text plus its structural constants."""

    format_name: FormatName
    source: str
    aux: Aux


def _diag_bounds(
    k: int, n_rows: int, n_cols: int
) -> Tuple[int, int, int]:
    """Slice bounds of diagonal ``k`` (mirrors dia_kernels._diag_bounds)."""
    i_start = max(0, -k)
    j_start = max(0, k)
    n = min(n_rows - i_start, n_cols - j_start)
    return i_start, j_start, n


def _emit_dia(matrix: SparseMatrix) -> GeneratedSource:
    """DIA: one slice-AXPY per diagonal, bounds folded to literals."""
    num_diags = int(matrix.num_diags)
    if num_diags > MAX_DIAGS:
        raise CodegenError(
            f"DIA matrix has {num_diags} diagonals; unroll ceiling is "
            f"{MAX_DIAGS}"
        )
    lines = [
        "def spmv(matrix, x, aux):",
        f"    # codegen: DIA, {num_diags} diagonals, "
        f"shape ({matrix.n_rows}, {matrix.n_cols})",
        "    data = matrix.data",
        f"    y = np.zeros({matrix.n_rows}, dtype=data.dtype)",
    ]
    for d in range(num_diags):
        k = int(matrix.offsets[d])
        i0, j0, n = _diag_bounds(k, matrix.n_rows, matrix.n_cols)
        if n <= 0:
            continue
        lines.append(
            f"    y[{i0}:{i0 + n}] += "
            f"data[{d}, {i0}:{i0 + n}] * x[{j0}:{j0 + n}]"
        )
    lines.append("    return y")
    return GeneratedSource(FormatName.DIA, "\n".join(lines) + "\n", ())


def _emit_bdia(matrix: SparseMatrix) -> GeneratedSource:
    """BDIA: band loops fully unrolled, per-diagonal bounds folded."""
    if int(matrix.num_diags) > MAX_DIAGS:
        raise CodegenError(
            f"BDIA matrix has {matrix.num_diags} diagonals; unroll "
            f"ceiling is {MAX_DIAGS}"
        )
    lines = [
        "def spmv(matrix, x, aux):",
        f"    # codegen: BDIA, {matrix.n_bands} bands / "
        f"{matrix.num_diags} diagonals, "
        f"shape ({matrix.n_rows}, {matrix.n_cols})",
        "    bands = matrix.bands",
        f"    y = np.zeros({matrix.n_rows}, dtype=bands[0].dtype)",
    ]
    for b in range(matrix.n_bands):
        base = int(matrix.offsets[b])
        width = int(matrix.bands[b].shape[0])
        lines.append(f"    band_{b} = bands[{b}]")
        for j in range(width):
            k = base + j
            i0, j0, n = _diag_bounds(k, matrix.n_rows, matrix.n_cols)
            if n <= 0:
                continue
            lines.append(
                f"    y[{i0}:{i0 + n}] += "
                f"band_{b}[{j}, {i0}:{i0 + n}] * x[{j0}:{j0 + n}]"
            )
    lines.append("    return y")
    return GeneratedSource(FormatName.BDIA, "\n".join(lines) + "\n", ())


def _emit_ell(matrix: SparseMatrix) -> GeneratedSource:
    """ELL: packed-slot loop unrolled; padding rides along (0 * x[0])."""
    width = int(matrix.max_row_degree)
    if width > MAX_ELL_SLOTS:
        raise CodegenError(
            f"ELL matrix packs {width} slots per row; unroll ceiling is "
            f"{MAX_ELL_SLOTS}"
        )
    lines = [
        "def spmv(matrix, x, aux):",
        f"    # codegen: ELL, width {width}, "
        f"shape ({matrix.n_rows}, {matrix.n_cols})",
        "    data = matrix.data",
        "    indices = matrix.indices",
    ]
    if width == 0:
        lines.append(f"    return np.zeros({matrix.n_rows}, dtype=data.dtype)")
    else:
        lines.append("    y = data[0] * x[indices[0]]")
        for s in range(1, width):
            lines.append(f"    y += data[{s}] * x[indices[{s}]]")
        lines.append("    return y")
    return GeneratedSource(FormatName.ELL, "\n".join(lines) + "\n", ())


def _emit_bcsr(matrix: SparseMatrix) -> GeneratedSource:
    """BCSR: folded block shape + segment-sum instead of ``np.add.at``.

    Stored blocks are sorted by block row, so the per-block-row reduction
    is a contiguous segment sum over the ``(n_blocks, r)`` partials — a
    prefix-sum difference replaces the scatter the generic kernel pays.
    """
    r, c = (int(v) for v in matrix.block_shape)
    n_blocks = int(matrix.n_blocks)
    n_block_rows = int(matrix.n_block_rows)
    pad_cols = -(-matrix.n_cols // c) * c
    lines = [
        "def spmv(matrix, x, aux):",
        f"    # codegen: BCSR, {n_blocks} blocks of {r}x{c}, "
        f"shape ({matrix.n_rows}, {matrix.n_cols})",
    ]
    if n_blocks == 0:
        lines.append(
            f"    return np.zeros({matrix.n_rows}, dtype=matrix.dtype)"
        )
        return GeneratedSource(FormatName.BCSR, "\n".join(lines) + "\n", ())
    if pad_cols == matrix.n_cols:
        lines.append(f"    x_blocks = x.reshape({pad_cols // c}, {c})")
    else:
        lines += [
            f"    x_padded = np.zeros({pad_cols}, dtype=x.dtype)",
            f"    x_padded[:{matrix.n_cols}] = x",
            f"    x_blocks = x_padded.reshape({pad_cols // c}, {c})",
        ]
    lines += [
        "    partial = np.einsum(",
        "        'krc,kc->kr', matrix.blocks, x_blocks[matrix.block_cols]",
        "    )",
        f"    csum = np.empty(({n_blocks + 1}, {r}), dtype=partial.dtype)",
        "    csum[0] = 0.0",
        "    np.cumsum(partial, axis=0, out=csum[1:])",
        "    ptr = matrix.block_ptr",
        "    y_blocks = csum[ptr[1:]] - csum[ptr[:-1]]",
        f"    return y_blocks.reshape({n_block_rows * r})[:{matrix.n_rows}]",
    ]
    return GeneratedSource(FormatName.BCSR, "\n".join(lines) + "\n", ())


def _emit_hyb(matrix: SparseMatrix) -> GeneratedSource:
    """HYB: slot-unrolled ELL part + one scattered COO tail.

    The generic kernel dispatches two sub-kernels through the registry,
    allocates two partial results, and reduces the ELL slab with a
    2-D ``einsum`` whose dispatch cost dominates at the narrow widths the
    HYB split actually produces (power-law matrices land at width 1-3).
    Here the width is a structural constant, so each slot becomes one
    explicit AXPY (``y += ell.data[s] * x[ell.indices[s]]``) and the COO
    overflow folds into the same accumulator with a single ``np.add.at``
    scatter.  Segment tricks (``reduceat`` over precomputed overflow
    rows, ``bincount``) were measured and lose: the overflow tail of a
    power-law matrix touches thousands of distinct rows, so the gather
    index arithmetic costs more than the scatter it replaces.
    """
    ell = matrix.ell_part
    coo = matrix.coo_part
    width = int(ell.max_row_degree)
    if width > MAX_ELL_SLOTS:
        raise CodegenError(
            f"HYB ELL part packs {width} slots per row; unroll ceiling "
            f"is {MAX_ELL_SLOTS}"
        )
    coo_nnz = int(coo.nnz)
    lines = [
        "def spmv(matrix, x, aux):",
        f"    # codegen: HYB, ELL width {width} + {coo_nnz} COO overflow "
        f"entries, shape ({matrix.n_rows}, {matrix.n_cols})",
        "    ell = matrix.ell_part",
    ]
    if width == 0:
        lines.append(
            f"    y = np.zeros({matrix.n_rows}, dtype=ell.data.dtype)"
        )
    else:
        lines.append("    y = ell.data[0] * x[ell.indices[0]]")
        for slot in range(1, width):
            lines.append(
                f"    y += ell.data[{slot}] * x[ell.indices[{slot}]]"
            )
    if coo_nnz:
        lines += [
            "    coo = matrix.coo_part",
            "    np.add.at(y, coo.rows, coo.data * x[coo.cols])",
        ]
    lines.append("    return y")
    return GeneratedSource(FormatName.HYB, "\n".join(lines) + "\n", ())


def _emit_csr(matrix: SparseMatrix) -> GeneratedSource:
    """CSR: degree-bucketed body — one dense ``einsum`` per distinct degree.

    Rows sharing a degree gather into a rectangular ``(rows, degree)``
    tile reduced in one shot, skipping the global cumsum segment trick.
    Matrices with many distinct degrees (power-law tails) overflow
    ``MAX_DEGREE_BUCKETS`` and keep the generic kernel.
    """
    degrees = np.diff(matrix.ptr)
    distinct = np.unique(degrees)
    distinct = distinct[distinct > 0]
    if distinct.shape[0] > MAX_DEGREE_BUCKETS:
        raise CodegenError(
            f"CSR matrix has {distinct.shape[0]} distinct row degrees; "
            f"bucket ceiling is {MAX_DEGREE_BUCKETS}"
        )
    aux_items: List[object] = []
    lines = [
        "def spmv(matrix, x, aux):",
        f"    # codegen: CSR, {distinct.shape[0]} degree buckets "
        f"{[int(d) for d in distinct]}, "
        f"shape ({matrix.n_rows}, {matrix.n_cols})",
        "    data = matrix.data",
        "    indices = matrix.indices",
        f"    y = np.zeros({matrix.n_rows}, dtype=data.dtype)",
    ]
    for b, d in enumerate(int(v) for v in distinct):
        rows = np.nonzero(degrees == d)[0].astype(np.int64)
        positions = (
            matrix.ptr[rows].astype(np.int64)[:, None]
            + np.arange(d, dtype=np.int64)[None, :]
        )
        aux_items.append((rows, positions))
        lines += [
            f"    rows_{b}, pos_{b} = aux[{b}]  # degree {d}, "
            f"{rows.shape[0]} rows",
            f"    y[rows_{b}] = np.einsum(",
            f"        'rd,rd->r', data[pos_{b}], x[indices[pos_{b}]]",
            "    )",
        ]
    lines.append("    return y")
    return GeneratedSource(
        FormatName.CSR, "\n".join(lines) + "\n", tuple(aux_items)
    )


_EMITTERS: Dict[FormatName, Callable[[SparseMatrix], GeneratedSource]] = {
    FormatName.CSR: _emit_csr,
    FormatName.DIA: _emit_dia,
    FormatName.BDIA: _emit_bdia,
    FormatName.ELL: _emit_ell,
    FormatName.BCSR: _emit_bcsr,
    FormatName.HYB: _emit_hyb,
}

#: Formats the codegen backend can specialize.
CODEGEN_FORMATS: Tuple[FormatName, ...] = tuple(_EMITTERS)


def emit(matrix: SparseMatrix) -> GeneratedSource:
    """Emit specialized SpMV source for ``matrix``.

    Raises :class:`CodegenError` for formats without a template or
    matrices outside a template's unroll envelope.
    """
    emitter = _EMITTERS.get(matrix.format_name)
    if emitter is None:
        raise CodegenError(
            f"no codegen template for format {matrix.format_name.value!r} "
            f"(templates cover "
            f"{[f.value for f in CODEGEN_FORMATS]})"
        )
    return emitter(matrix)
