"""Chunked thread-parallel SpMV execution.

The PARALLEL-strategy kernels partition rows into chunks but run the chunks
sequentially — the simulated machine model supplies the thread-scaling
factor.  This module is the *real* thing: rows are split into nnz-balanced
chunks (a prefix-sum partition over the CSR row pointer) and each chunk's
vectorized segment reduction runs on a shared ``ThreadPoolExecutor``.
NumPy's ufunc inner loops release the GIL on large non-object buffers, so
the chunks genuinely overlap on multi-core hosts.

Registered under ``Strategy.THREAD`` so the scoreboard search and the cost
model's thread-scaling term finally correspond to a kernel that actually
runs concurrently (``WallClockBackend`` measures the overlap for real;
``SimulatedBackend`` scales THREAD like PARALLEL).

The executor is a process-wide singleton: SpMV requests arrive far more
often than pools should be created, and a shared pool keeps the serving
engine's worker threads from multiplying thread counts.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.formats.csr import CSRMatrix
from repro.kernels.base import register_kernel
from repro.kernels.csr_kernels import _segment_sums, csr_vectorized
from repro.kernels.strategies import Strategy, strategy_set
from repro.types import FormatName

#: Upper bound on the shared pool size; beyond this SpMV is bandwidth-bound
#: and more threads only add scheduling noise.
MAX_WORKERS = 16

#: Below this many non-zeros the chunk fan-out costs more than it saves and
#: the THREAD kernel degrades to the plain vectorized one.
MIN_PARALLEL_NNZ = 100_000

#: SpMM fan-out threshold on ``nnz * batch_width``: the per-element work
#: grows with the batch, so the parallel cliff sits lower than SpMV's.
MIN_PARALLEL_SPMM_ELEMS = 400_000

_executor: Optional[ThreadPoolExecutor] = None
_executor_lock = threading.Lock()


def default_workers() -> int:
    """Worker count for this host: one per core, capped at MAX_WORKERS."""
    return max(1, min(os.cpu_count() or 1, MAX_WORKERS))


def shared_executor() -> ThreadPoolExecutor:
    """The process-wide SpMV thread pool (created lazily, never shut down)."""
    global _executor
    with _executor_lock:
        if _executor is None:
            _executor = ThreadPoolExecutor(
                max_workers=default_workers(),
                thread_name_prefix="repro-spmv",
            )
        return _executor


def nnz_balanced_chunks(ptr: np.ndarray, n_chunks: int) -> np.ndarray:
    """Row boundaries splitting ``ptr``'s rows into nnz-balanced chunks.

    Returns an increasing array ``bounds`` of length ``n_chunks + 1`` with
    ``bounds[0] == 0`` and ``bounds[-1] == n_rows``; chunk ``c`` covers rows
    ``bounds[c]:bounds[c + 1]`` and holds as close to ``nnz / n_chunks``
    non-zeros as row granularity allows.  Because ``ptr`` is itself the
    prefix sum of row degrees, the split is one ``searchsorted`` over the
    pointer — no per-row scan.
    """
    ptr = np.asarray(ptr)
    n_rows = int(ptr.shape[0]) - 1
    n_chunks = max(1, int(n_chunks))
    nnz = int(ptr[-1]) if n_rows >= 0 else 0
    if n_rows <= 0:
        return np.zeros(n_chunks + 1, dtype=np.int64)
    if nnz == 0:
        # Degenerate: balance rows instead of (absent) non-zeros.
        return np.linspace(0, n_rows, n_chunks + 1).astype(np.int64)
    targets = (np.arange(1, n_chunks, dtype=np.int64) * nnz) // n_chunks
    interior = np.searchsorted(ptr, targets, side="left").astype(np.int64)
    bounds = np.concatenate(([0], interior, [n_rows]))
    # Row granularity can make boundaries collide (one huge row); keep the
    # sequence monotone so every chunk is a valid (possibly empty) range.
    np.maximum.accumulate(bounds, out=bounds)
    bounds[-1] = n_rows
    return bounds


def chunk_ranges(ptr: np.ndarray, n_chunks: int) -> List[Tuple[int, int]]:
    """Non-empty ``(row_lo, row_hi)`` pairs of an nnz-balanced partition."""
    bounds = nnz_balanced_chunks(ptr, n_chunks)
    return [
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


def csr_spmv_thread(
    matrix: CSRMatrix,
    x: np.ndarray,
    workers: Optional[int] = None,
) -> np.ndarray:
    """CSR SpMV over nnz-balanced row chunks on the shared thread pool.

    Each chunk runs the same gather + segment-reduction as
    :func:`~repro.kernels.csr_kernels.csr_vectorized` and writes its own
    disjoint slice of ``y``, so no synchronisation is needed beyond the
    final join.
    """
    x = matrix.check_operand(x)
    n_workers = workers if workers is not None else default_workers()
    if n_workers <= 1 or matrix.nnz < MIN_PARALLEL_NNZ:
        return csr_vectorized(matrix, x)
    ranges = chunk_ranges(matrix.ptr, n_workers)
    if len(ranges) <= 1:
        return csr_vectorized(matrix, x)

    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    ptr, indices, data = matrix.ptr, matrix.indices, matrix.data

    # Chunk spans carry an *explicit* parent: they run on pool threads,
    # where the submitting thread's current span is invisible.  In a
    # Chrome trace they land on their own tid lanes, making the actual
    # chunk overlap visible.
    tracer = obs.get_tracer()
    fan_out = (
        tracer.begin(
            "kernel.thread_fanout", chunks=len(ranges), workers=n_workers
        )
        if tracer is not None
        else None
    )

    def run_chunk(row_lo: int, row_hi: int) -> None:
        lo, hi = int(ptr[row_lo]), int(ptr[row_hi])
        if hi == lo:
            return
        chunk_span = (
            tracer.begin(
                "kernel.chunk",
                parent=fan_out,
                rows=row_hi - row_lo,
                nnz=hi - lo,
            )
            if tracer is not None
            else None
        )
        try:
            products = data[lo:hi] * x[indices[lo:hi]]
            y[row_lo:row_hi] = _segment_sums(
                products, ptr[row_lo : row_hi + 1] - lo
            )
        finally:
            if chunk_span is not None:
                tracer.end(chunk_span)

    pool = shared_executor()
    futures = [pool.submit(run_chunk, lo, hi) for lo, hi in ranges]
    wait(futures)
    if fan_out is not None and tracer is not None:
        tracer.end(fan_out)
    for future in futures:
        future.result()  # re-raise the first chunk failure, if any
    return y


@register_kernel(
    FormatName.CSR, strategy_set(Strategy.VECTORIZE, Strategy.THREAD)
)
def csr_vectorized_thread(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Concurrent nnz-balanced chunked segment reduction (Strategy.THREAD)."""
    return csr_spmv_thread(matrix, x)


def csr_spmm_thread(
    matrix: CSRMatrix,
    X: np.ndarray,
    workers: Optional[int] = None,
) -> np.ndarray:
    """CSR SpMM over nnz-balanced row chunks on the shared thread pool.

    The multi-RHS analogue of :func:`csr_spmv_thread`: each chunk runs the
    row-blocked SpMM of :func:`repro.kernels.spmm.csr_spmm` over its own
    disjoint Y slice.  Chunk spans carry the same explicit
    ``kernel.thread_fanout`` parent so the overlap is visible in traces.
    """
    # Local import: spmm imports this module's chunking helpers at top
    # level, so the reverse edge must stay function-local.
    from repro.kernels.spmm import _csr_spmm_rows, csr_spmm

    X = matrix.check_operand_block(X)
    n_workers = workers if workers is not None else default_workers()
    if (
        n_workers <= 1
        or matrix.nnz * X.shape[1] < MIN_PARALLEL_SPMM_ELEMS
    ):
        return csr_spmm(matrix, X)
    ranges = chunk_ranges(matrix.ptr, n_workers)
    if len(ranges) <= 1:
        return csr_spmm(matrix, X)

    Y = np.zeros((matrix.n_rows, X.shape[1]), dtype=matrix.dtype)
    ptr = matrix.ptr

    tracer = obs.get_tracer()
    fan_out = (
        tracer.begin(
            "kernel.thread_fanout",
            chunks=len(ranges),
            workers=n_workers,
            batch=X.shape[1],
        )
        if tracer is not None
        else None
    )

    def run_chunk(row_lo: int, row_hi: int) -> None:
        lo, hi = int(ptr[row_lo]), int(ptr[row_hi])
        if hi == lo:
            return
        chunk_span = (
            tracer.begin(
                "kernel.chunk",
                parent=fan_out,
                rows=row_hi - row_lo,
                nnz=hi - lo,
            )
            if tracer is not None
            else None
        )
        try:
            _csr_spmm_rows(matrix, X, Y, row_lo, row_hi)
        finally:
            if chunk_span is not None:
                tracer.end(chunk_span)

    pool = shared_executor()
    futures = [pool.submit(run_chunk, lo, hi) for lo, hi in ranges]
    wait(futures)
    if fan_out is not None and tracer is not None:
        tracer.end(fan_out)
    for future in futures:
        future.result()  # re-raise the first chunk failure, if any
    return Y
