"""COO SpMV kernel implementations."""

from __future__ import annotations

import numpy as np

from repro.formats.coo import COOMatrix
from repro.kernels.base import register_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.types import FormatName

PARALLEL_CHUNKS = 12


@register_kernel(FormatName.COO, strategy_set())
def coo_basic(matrix: COOMatrix, x: np.ndarray) -> np.ndarray:
    """Reference element loop (Figure 2b)."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    for i in range(matrix.nnz):
        y[matrix.rows[i]] += matrix.data[i] * x[matrix.cols[i]]
    return y


@register_kernel(FormatName.COO, strategy_set(Strategy.VECTORIZE))
def coo_vectorized(matrix: COOMatrix, x: np.ndarray) -> np.ndarray:
    """Bulk gather-multiply then an unordered scatter-add.

    Works for arbitrary (even duplicate, unsorted) coordinates, the fully
    general contract of the format.
    """
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    if matrix.nnz:
        np.add.at(y, matrix.rows, matrix.data * x[matrix.cols])
    return y


@register_kernel(
    FormatName.COO, strategy_set(Strategy.VECTORIZE, Strategy.ROW_BLOCK)
)
def coo_segmented(matrix: COOMatrix, x: np.ndarray) -> np.ndarray:
    """Segmented reduction exploiting the row-major sort order.

    The constructor guarantees ``rows`` is sorted, so each row's entries are
    contiguous; a cumulative sum plus boundary differences replaces the
    scatter-add — the same trick GPU COO kernels use.
    """
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    if matrix.nnz == 0:
        return y
    products = matrix.data * x[matrix.cols]
    csum = np.concatenate(
        [np.zeros(1, dtype=products.dtype), np.cumsum(products)]
    )
    boundaries = np.searchsorted(
        matrix.rows, np.arange(matrix.n_rows + 1, dtype=matrix.rows.dtype)
    )
    y[:] = csum[boundaries[1:]] - csum[boundaries[:-1]]
    return y


@register_kernel(
    FormatName.COO, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
)
def coo_vectorized_parallel(matrix: COOMatrix, x: np.ndarray) -> np.ndarray:
    """Scatter-add over ``PARALLEL_CHUNKS`` element partitions.

    Partitioning by *elements* (not rows) is what makes COO robust to
    power-law row-degree skew: every chunk does identical work no matter how
    unbalanced the rows are.
    """
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    if matrix.nnz == 0:
        return y
    bounds = np.linspace(0, matrix.nnz, PARALLEL_CHUNKS + 1, dtype=np.int64)
    for c in range(PARALLEL_CHUNKS):
        lo, hi = int(bounds[c]), int(bounds[c + 1])
        if hi == lo:
            continue
        np.add.at(
            y,
            matrix.rows[lo:hi],
            matrix.data[lo:hi] * x[matrix.cols[lo:hi]],
        )
    return y
