"""Pluggable kernel backends.

A *backend* decides which callable actually executes a plan's SpMV.  The
tuner's rule walk still picks the storage format and a registered
:class:`~repro.kernels.base.Kernel`; the backend then gets one chance to
*specialize* that choice for the concrete matrix:

* ``generic`` — the existing registry kernels, unchanged.  Specialization
  is the identity and costs nothing.
* ``codegen`` (:mod:`repro.kernels.codegen`) — emits per-matrix source
  with the structural constants folded in, compiles it once, and returns
  the compiled kernel only if it both matches the generic kernel's output
  and beats it on the actual matrix.

Backends are registered by name; :func:`get_backend` is how the tuner
runtime (``SmatConfig.kernel_backend``) and the serving engine
(``ServeConfig.kernel_backend``) resolve the configured name.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import KernelError
from repro.formats.base import SparseMatrix
from repro.kernels.base import Kernel

#: Name of the backend every config defaults to.
DEFAULT_BACKEND = "generic"


class KernelBackend:
    """Interface every kernel backend implements."""

    #: Registry key; also the value accepted by ``--kernel-backend``.
    name: str = "?"

    def specialize(self, matrix: SparseMatrix, base: Kernel) -> Kernel:
        """Return the kernel that should execute ``matrix``.

        ``base`` is the registry kernel the tuner picked.  Implementations
        must return ``base`` itself whenever they cannot produce something
        strictly better — callers rely on ``result is base`` to detect
        "kept the generic kernel".  Unrecoverable generation problems may
        raise :class:`~repro.errors.CodegenError`; callers treat that the
        same as keeping ``base``.
        """
        raise NotImplementedError

    def overhead_units(self, matrix: SparseMatrix) -> float:
        """Projected specialization cost in CSR-SpMV units.

        The tuner's budgeted cascade charges this against the per-request
        budget before invoking :meth:`specialize`.
        """
        return 0.0


class GenericBackend(KernelBackend):
    """The registry kernels as-is — specialization is the identity."""

    name = "generic"

    def specialize(self, matrix: SparseMatrix, base: Kernel) -> Kernel:
        return base


_BACKENDS: Dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register ``backend`` under ``backend.name`` (duplicates rejected)."""
    if backend.name in _BACKENDS:
        raise KernelError(
            f"duplicate kernel backend registration: {backend.name!r}"
        )
    _BACKENDS[backend.name] = backend
    return backend


def _ensure_builtin_backends() -> None:
    # The codegen backend registers itself on import; importing it here
    # keeps `get_backend("codegen")` working even when the caller only
    # imported this module (engine config validation, CLI choices).
    if "codegen" not in _BACKENDS:
        from repro.kernels import codegen  # noqa: F401  (self-registers)


def get_backend(name: str) -> KernelBackend:
    """The backend registered as ``name``.

    Raises :class:`~repro.errors.KernelError` for unknown names.
    """
    _ensure_builtin_backends()
    backend = _BACKENDS.get(name)
    if backend is None:
        raise KernelError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{', '.join(sorted(_BACKENDS))}"
        )
    return backend


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, sorted (``generic`` guaranteed)."""
    _ensure_builtin_backends()
    return tuple(sorted(_BACKENDS))


register_backend(GenericBackend())
