"""Kernel dataclass and the per-format kernel registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro import obs
from repro.errors import KernelError
from repro.formats.base import SparseMatrix
from repro.kernels.strategies import StrategySet, describe, span_attrs
from repro.types import FormatName

KernelFn = Callable[[SparseMatrix, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class Kernel:
    """One SpMV implementation for one storage format.

    ``strategies`` is the set of optimization techniques the implementation
    uses — the scoreboard algorithm indexes the performance table by it.
    """

    format_name: FormatName
    strategies: StrategySet
    fn: KernelFn = field(compare=False, repr=False)

    @property
    def name(self) -> str:
        return f"{self.format_name.value}/{describe(self.strategies)}"

    def __call__(self, matrix: SparseMatrix, x: np.ndarray) -> np.ndarray:
        if matrix.format_name is not self.format_name:
            raise KernelError(
                f"kernel {self.name} applied to a "
                f"{matrix.format_name.value} matrix"
            )
        # Hot loop: guard on the tracer *before* touching span attributes
        # so disabled tracing costs one global read and allocates nothing.
        tracer = obs.get_tracer()
        if tracer is None:
            return self.fn(matrix, x)
        with tracer.span(
            "kernel.execute",
            nnz=int(matrix.nnz),
            **span_attrs(self.format_name, self.strategies),
        ):
            return self.fn(matrix, x)


_KERNELS: Dict[FormatName, List[Kernel]] = {}


def register_kernel(format_name: FormatName, strategies: StrategySet):
    """Decorator registering an SpMV implementation in the kernel library."""

    def wrap(fn: KernelFn) -> KernelFn:
        kernel = Kernel(format_name, frozenset(strategies), fn)
        bucket = _KERNELS.setdefault(format_name, [])
        if any(k.strategies == kernel.strategies for k in bucket):
            raise KernelError(f"duplicate kernel registration: {kernel.name}")
        bucket.append(kernel)
        return fn

    return wrap


def kernels_for(format_name: FormatName) -> List[Kernel]:
    """All registered implementations of ``format_name``, baseline first."""
    bucket = _KERNELS.get(format_name, [])
    if not bucket:
        raise KernelError(f"no kernels registered for {format_name}")
    return sorted(bucket, key=lambda k: (len(k.strategies), k.name))


def find_kernel(format_name: FormatName, strategies: StrategySet) -> Kernel:
    """The implementation of ``format_name`` using exactly ``strategies``."""
    for kernel in _KERNELS.get(format_name, []):
        if kernel.strategies == frozenset(strategies):
            return kernel
    raise KernelError(
        f"no {format_name.value} kernel with strategies "
        f"{describe(strategies)}"
    )


def total_kernel_count() -> int:
    """Size of the kernel library (the paper's 'up to 24 implementations')."""
    return sum(len(bucket) for bucket in _KERNELS.values())
