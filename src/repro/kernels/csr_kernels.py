"""CSR SpMV kernel implementations.

Six variants spanning the strategy space.  ``basic`` is the textbook row loop
of Figure 2a; ``vectorize`` replaces the loop with a cumulative-sum segment
reduction (our stand-in for SIMDization); blocking and threading variants
layer on top.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.kernels.base import register_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.types import FormatName

#: Rows per block for cache-blocked variants: sized so one block of the
#: y-vector plus its ptr slice stays resident in a typical L2.
ROW_BLOCK_SIZE = 4096

#: Chunks used by the PARALLEL variants (the paper runs 12 threads).
PARALLEL_CHUNKS = 12


def _segment_sums(products: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    """Row sums of ``products`` delimited by ``ptr`` via one cumulative sum."""
    csum = np.concatenate(
        [np.zeros(1, dtype=products.dtype), np.cumsum(products)]
    )
    return (csum[ptr[1:]] - csum[ptr[:-1]]).astype(products.dtype, copy=False)


@register_kernel(FormatName.CSR, strategy_set())
def csr_basic(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Reference row loop (Figure 2a)."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    for i in range(matrix.n_rows):
        start, end = int(matrix.ptr[i]), int(matrix.ptr[i + 1])
        acc = matrix.dtype.type(0)
        for jj in range(start, end):
            acc += x[matrix.indices[jj]] * matrix.data[jj]
        y[i] = acc
    return y


@register_kernel(FormatName.CSR, strategy_set(Strategy.VECTORIZE))
def csr_vectorized(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Gather-multiply then a segment reduction over the row pointer."""
    x = matrix.check_operand(x)
    if matrix.nnz == 0:
        return np.zeros(matrix.n_rows, dtype=matrix.dtype)
    products = matrix.data * x[matrix.indices]
    return _segment_sums(products, matrix.ptr)


@register_kernel(FormatName.CSR, strategy_set(Strategy.ROW_BLOCK))
def csr_row_blocked(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Row loop processed in cache-sized row blocks."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    for block_start in range(0, matrix.n_rows, ROW_BLOCK_SIZE):
        block_end = min(block_start + ROW_BLOCK_SIZE, matrix.n_rows)
        for i in range(block_start, block_end):
            start, end = int(matrix.ptr[i]), int(matrix.ptr[i + 1])
            if end > start:
                y[i] = np.dot(
                    matrix.data[start:end], x[matrix.indices[start:end]]
                )
    return y


@register_kernel(
    FormatName.CSR, strategy_set(Strategy.VECTORIZE, Strategy.ROW_BLOCK)
)
def csr_vectorized_blocked(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Segment reduction executed block-by-block so the product buffer
    stays cache resident."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    for block_start in range(0, matrix.n_rows, ROW_BLOCK_SIZE):
        block_end = min(block_start + ROW_BLOCK_SIZE, matrix.n_rows)
        lo = int(matrix.ptr[block_start])
        hi = int(matrix.ptr[block_end])
        if hi == lo:
            continue
        products = matrix.data[lo:hi] * x[matrix.indices[lo:hi]]
        ptr_slice = matrix.ptr[block_start : block_end + 1] - lo
        y[block_start:block_end] = _segment_sums(products, ptr_slice)
    return y


@register_kernel(
    FormatName.CSR, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
)
def csr_vectorized_parallel(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorized reduction over ``PARALLEL_CHUNKS`` row partitions.

    The chunking mirrors a static 12-thread row partition; in CPython the
    chunks execute sequentially (the simulated machine model applies the
    thread-scaling factor instead).
    """
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    bounds = np.linspace(0, matrix.n_rows, PARALLEL_CHUNKS + 1, dtype=np.int64)
    for c in range(PARALLEL_CHUNKS):
        row_lo, row_hi = int(bounds[c]), int(bounds[c + 1])
        if row_hi == row_lo:
            continue
        lo = int(matrix.ptr[row_lo])
        hi = int(matrix.ptr[row_hi])
        if hi == lo:
            continue
        products = matrix.data[lo:hi] * x[matrix.indices[lo:hi]]
        ptr_slice = matrix.ptr[row_lo : row_hi + 1] - lo
        y[row_lo:row_hi] = _segment_sums(products, ptr_slice)
    return y


@register_kernel(
    FormatName.CSR,
    strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL, Strategy.ROW_BLOCK),
)
def csr_vectorized_parallel_blocked(
    matrix: CSRMatrix, x: np.ndarray
) -> np.ndarray:
    """Row partition whose chunks are further processed in cache-sized row
    blocks, keeping each chunk's product buffer resident."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    bounds = np.linspace(0, matrix.n_rows, PARALLEL_CHUNKS + 1, dtype=np.int64)
    for c in range(PARALLEL_CHUNKS):
        row_lo, row_hi = int(bounds[c]), int(bounds[c + 1])
        for block_start in range(row_lo, row_hi, ROW_BLOCK_SIZE):
            block_end = min(block_start + ROW_BLOCK_SIZE, row_hi)
            lo = int(matrix.ptr[block_start])
            hi = int(matrix.ptr[block_end])
            if hi == lo:
                continue
            products = matrix.data[lo:hi] * x[matrix.indices[lo:hi]]
            ptr_slice = matrix.ptr[block_start : block_end + 1] - lo
            y[block_start:block_end] = _segment_sums(products, ptr_slice)
    return y


@register_kernel(
    FormatName.CSR, strategy_set(Strategy.VECTORIZE, Strategy.PREFETCH)
)
def csr_vectorized_prefetch(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorized kernel with "software prefetch".

    Prefetch cannot be expressed in NumPy, so this is intentionally identical
    to :func:`csr_vectorized`; the scoreboard search observes the < 0.01
    performance gap and neglects the PREFETCH strategy, exercising the
    paper's strategy-elimination rule.
    """
    return csr_vectorized(matrix, x)
