"""The SpMV kernel library (Figure 4).

Importing this package registers every implementation.  The tuner's kernel
search (:mod:`repro.tuner.search`) measures them all once per architecture
and scores the strategies with the scoreboard algorithm.
"""

# Importing the kernel modules runs their @register_kernel decorators.
from repro.kernels import bdia_kernels  # noqa: F401
from repro.kernels import blocked_kernels  # noqa: F401
from repro.kernels import csc_sky_kernels  # noqa: F401
from repro.kernels import coo_kernels  # noqa: F401
from repro.kernels import csr_kernels  # noqa: F401
from repro.kernels import dia_kernels  # noqa: F401
from repro.kernels import ell_kernels  # noqa: F401
from repro.kernels import parallel  # noqa: F401
from repro.kernels import spmm  # noqa: F401
from repro.kernels.base import (
    Kernel,
    find_kernel,
    kernels_for,
    register_kernel,
    total_kernel_count,
)
from repro.kernels.spmm import (
    register_spmm,
    spmm_fallback,
    spmm_formats,
    spmm_kernel_for,
    supports_spmm,
)
from repro.kernels.strategies import (
    BASELINE,
    Strategy,
    StrategySet,
    describe,
    strategy_set,
)

__all__ = [
    "BASELINE",
    "Kernel",
    "Strategy",
    "StrategySet",
    "describe",
    "find_kernel",
    "kernels_for",
    "register_kernel",
    "register_spmm",
    "spmm_fallback",
    "spmm_formats",
    "spmm_kernel_for",
    "strategy_set",
    "supports_spmm",
    "total_kernel_count",
]
