"""The SpMV kernel library (Figure 4).

Importing this package registers every implementation.  The tuner's kernel
search (:mod:`repro.tuner.search`) measures them all once per architecture
and scores the strategies with the scoreboard algorithm.
"""

# Importing the kernel modules runs their @register_kernel decorators.
from repro.kernels import bdia_kernels  # noqa: F401
from repro.kernels import blocked_kernels  # noqa: F401
from repro.kernels import csc_sky_kernels  # noqa: F401
from repro.kernels import coo_kernels  # noqa: F401
from repro.kernels import csr_kernels  # noqa: F401
from repro.kernels import dia_kernels  # noqa: F401
from repro.kernels import ell_kernels  # noqa: F401
from repro.kernels import parallel  # noqa: F401
from repro.kernels import spmm  # noqa: F401
from repro.kernels.backends import (
    DEFAULT_BACKEND,
    GenericBackend,
    KernelBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.kernels.base import (
    Kernel,
    find_kernel,
    kernels_for,
    register_kernel,
    total_kernel_count,
)
from repro.kernels.codegen import (
    CodegenBackend,
    GeneratedKernel,
    codegen_stats,
    generate_kernel,
    reset_codegen_stats,
)
from repro.kernels.spmm import (
    register_spmm,
    spmm_fallback,
    spmm_formats,
    spmm_kernel_for,
    supports_spmm,
)
from repro.kernels.strategies import (
    BASELINE,
    Strategy,
    StrategySet,
    describe,
    strategy_set,
)

__all__ = [
    "BASELINE",
    "CodegenBackend",
    "DEFAULT_BACKEND",
    "GeneratedKernel",
    "GenericBackend",
    "Kernel",
    "KernelBackend",
    "Strategy",
    "StrategySet",
    "backend_names",
    "codegen_stats",
    "describe",
    "find_kernel",
    "generate_kernel",
    "get_backend",
    "kernels_for",
    "register_backend",
    "register_kernel",
    "reset_codegen_stats",
    "register_spmm",
    "spmm_fallback",
    "spmm_formats",
    "spmm_kernel_for",
    "strategy_set",
    "supports_spmm",
    "total_kernel_count",
]
