"""DIA SpMV kernel implementations."""

from __future__ import annotations

import numpy as np

from repro.formats.dia import DIAMatrix
from repro.kernels.base import register_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.types import FormatName

ROW_BLOCK_SIZE = 8192
PARALLEL_CHUNKS = 12


def _diag_bounds(matrix: DIAMatrix, k: int) -> tuple:
    """(i_start, j_start, n) for diagonal offset ``k`` (Figure 2c)."""
    i_start = max(0, -k)
    j_start = max(0, k)
    n = min(matrix.n_rows - i_start, matrix.n_cols - j_start)
    return i_start, j_start, n


@register_kernel(FormatName.DIA, strategy_set())
def dia_basic(matrix: DIAMatrix, x: np.ndarray) -> np.ndarray:
    """Reference diagonal loop with a scalar inner loop (Figure 2c)."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    for i in range(matrix.num_diags):
        k = int(matrix.offsets[i])
        i_start, j_start, n = _diag_bounds(matrix, k)
        for offset in range(max(n, 0)):
            y[i_start + offset] += (
                matrix.data[i, i_start + offset] * x[j_start + offset]
            )
    return y


@register_kernel(FormatName.DIA, strategy_set(Strategy.VECTORIZE))
def dia_vectorized(matrix: DIAMatrix, x: np.ndarray) -> np.ndarray:
    """Loop-free diagonal gather via offset broadcasting.

    ``offsets[:, None] + arange(n_rows)`` gives every stored slot's column
    in one broadcast; a single masked gather-multiply-reduce over the
    ``(num_diags, n_rows)`` plane then produces Y with no per-diagonal
    Python iteration — the flat-index analogue of a fully SIMDized DIA
    sweep.
    """
    x = matrix.check_operand(x)
    if matrix.num_diags == 0 or matrix.n_rows == 0:
        return np.zeros(matrix.n_rows, dtype=matrix.dtype)
    cols = (
        matrix.offsets.astype(np.int64)[:, None]
        + np.arange(matrix.n_rows, dtype=np.int64)[None, :]
    )
    valid = (cols >= 0) & (cols < matrix.n_cols)
    gathered = np.where(valid, x[np.clip(cols, 0, matrix.n_cols - 1)], 0)
    return np.einsum("di,di->i", matrix.data, gathered)


@register_kernel(
    FormatName.DIA, strategy_set(Strategy.VECTORIZE, Strategy.UNROLL)
)
def dia_vectorized_unrolled(matrix: DIAMatrix, x: np.ndarray) -> np.ndarray:
    """Diagonal loop unrolled by two: amortises loop overhead when the
    matrix has many short diagonals."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    i = 0
    while i + 1 < matrix.num_diags:
        for d in (i, i + 1):
            k = int(matrix.offsets[d])
            i_start, j_start, n = _diag_bounds(matrix, k)
            if n > 0:
                y[i_start : i_start + n] += (
                    matrix.data[d, i_start : i_start + n]
                    * x[j_start : j_start + n]
                )
        i += 2
    if i < matrix.num_diags:
        k = int(matrix.offsets[i])
        i_start, j_start, n = _diag_bounds(matrix, k)
        if n > 0:
            y[i_start : i_start + n] += (
                matrix.data[i, i_start : i_start + n]
                * x[j_start : j_start + n]
            )
    return y


@register_kernel(
    FormatName.DIA, strategy_set(Strategy.VECTORIZE, Strategy.ROW_BLOCK)
)
def dia_vectorized_blocked(matrix: DIAMatrix, x: np.ndarray) -> np.ndarray:
    """Row-blocked traversal: all diagonals of one row block are applied
    before moving on, so Y is written once per block instead of once per
    diagonal — the paper's fix for "frequent cache evict and memory write
    back" on large matrices."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    for block_start in range(0, matrix.n_rows, ROW_BLOCK_SIZE):
        block_end = min(block_start + ROW_BLOCK_SIZE, matrix.n_rows)
        for i in range(matrix.num_diags):
            k = int(matrix.offsets[i])
            i_start, j_start, n = _diag_bounds(matrix, k)
            lo = max(i_start, block_start)
            hi = min(i_start + n, block_end)
            if hi <= lo:
                continue
            shift = j_start - i_start
            y[lo:hi] += matrix.data[i, lo:hi] * x[lo + shift : hi + shift]
    return y


@register_kernel(
    FormatName.DIA,
    strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL, Strategy.ROW_BLOCK),
)
def dia_vectorized_parallel_blocked(
    matrix: DIAMatrix, x: np.ndarray
) -> np.ndarray:
    """Row-partitioned + cache-blocked: every chunk applies all diagonals
    to one row window before moving on, writing Y once per window."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    for block_start in range(0, matrix.n_rows, ROW_BLOCK_SIZE):
        block_end = min(block_start + ROW_BLOCK_SIZE, matrix.n_rows)
        for i in range(matrix.num_diags):
            k = int(matrix.offsets[i])
            i_start, j_start, n = _diag_bounds(matrix, k)
            lo = max(i_start, block_start)
            hi = min(i_start + n, block_end)
            if hi <= lo:
                continue
            shift = j_start - i_start
            y[lo:hi] += matrix.data[i, lo:hi] * x[lo + shift : hi + shift]
    return y


@register_kernel(
    FormatName.DIA, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
)
def dia_vectorized_parallel(matrix: DIAMatrix, x: np.ndarray) -> np.ndarray:
    """Row-partitioned diagonal traversal (static 12-way split)."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    bounds = np.linspace(0, matrix.n_rows, PARALLEL_CHUNKS + 1, dtype=np.int64)
    for c in range(PARALLEL_CHUNKS):
        block_start, block_end = int(bounds[c]), int(bounds[c + 1])
        for i in range(matrix.num_diags):
            k = int(matrix.offsets[i])
            i_start, j_start, n = _diag_bounds(matrix, k)
            lo = max(i_start, block_start)
            hi = min(i_start + n, block_end)
            if hi <= lo:
                continue
            shift = j_start - i_start
            y[lo:hi] += matrix.data[i, lo:hi] * x[lo + shift : hi + shift]
    return y
