"""ELL SpMV kernel implementations."""

from __future__ import annotations

import numpy as np

from repro.formats.ell import ELLMatrix
from repro.kernels.base import register_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.types import FormatName

ROW_BLOCK_SIZE = 8192
PARALLEL_CHUNKS = 12


@register_kernel(FormatName.ELL, strategy_set())
def ell_basic(matrix: ELLMatrix, x: np.ndarray) -> np.ndarray:
    """Reference packed-column loop (Figure 2d), one slot at a time."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    for n in range(matrix.max_row_degree):
        for i in range(matrix.n_rows):
            y[i] += matrix.data[n, i] * x[matrix.indices[n, i]]
    return y


@register_kernel(FormatName.ELL, strategy_set(Strategy.VECTORIZE))
def ell_vectorized(matrix: ELLMatrix, x: np.ndarray) -> np.ndarray:
    """One fused gather-multiply-reduce over the whole packed matrix.

    ``einsum`` reduces across packed slots in a single pass — the closest
    NumPy analogue of the fully SIMDized row-parallel ELL kernel.
    """
    x = matrix.check_operand(x)
    if matrix.max_row_degree == 0:
        return np.zeros(matrix.n_rows, dtype=matrix.dtype)
    return np.einsum("si,si->i", matrix.data, x[matrix.indices])


@register_kernel(
    FormatName.ELL, strategy_set(Strategy.VECTORIZE, Strategy.ROW_BLOCK)
)
def ell_vectorized_blocked(matrix: ELLMatrix, x: np.ndarray) -> np.ndarray:
    """Gather-reduce over row blocks so the gathered X slice stays hot."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    if matrix.max_row_degree == 0:
        return y
    for block_start in range(0, matrix.n_rows, ROW_BLOCK_SIZE):
        block_end = min(block_start + ROW_BLOCK_SIZE, matrix.n_rows)
        data = matrix.data[:, block_start:block_end]
        idx = matrix.indices[:, block_start:block_end]
        y[block_start:block_end] = np.einsum("si,si->i", data, x[idx])
    return y


@register_kernel(
    FormatName.ELL,
    strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL, Strategy.ROW_BLOCK),
)
def ell_vectorized_parallel_blocked(
    matrix: ELLMatrix, x: np.ndarray
) -> np.ndarray:
    """Row partition whose per-chunk sweep is further tiled to cache-sized
    row blocks, so each chunk writes its Y slice exactly once."""
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    if matrix.max_row_degree == 0:
        return y
    for block_start in range(0, matrix.n_rows, ROW_BLOCK_SIZE):
        block_end = min(block_start + ROW_BLOCK_SIZE, matrix.n_rows)
        data = matrix.data[:, block_start:block_end]
        idx = matrix.indices[:, block_start:block_end]
        y[block_start:block_end] = np.einsum("si,si->i", data, x[idx])
    return y


@register_kernel(
    FormatName.ELL, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
)
def ell_vectorized_parallel(matrix: ELLMatrix, x: np.ndarray) -> np.ndarray:
    """Row-partitioned gather-reduce (static 12-way split).

    ELL's uniform per-row work makes this the easiest format to balance —
    the "regular and easy-to-predict behavior" Section 6 cites when placing
    ELL second in the rule-group order.
    """
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    if matrix.max_row_degree == 0:
        return y
    bounds = np.linspace(0, matrix.n_rows, PARALLEL_CHUNKS + 1, dtype=np.int64)
    for c in range(PARALLEL_CHUNKS):
        lo, hi = int(bounds[c]), int(bounds[c + 1])
        if hi == lo:
            continue
        data = matrix.data[:, lo:hi]
        idx = matrix.indices[:, lo:hi]
        y[lo:hi] = np.einsum("si,si->i", data, x[idx])
    return y
