"""BDIA SpMV kernels."""

from __future__ import annotations

import numpy as np

from repro.formats.bdia import BDIAMatrix
from repro.kernels.base import register_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.types import FormatName


@register_kernel(FormatName.BDIA, strategy_set())
def bdia_basic(matrix: BDIAMatrix, x: np.ndarray) -> np.ndarray:
    """Reference band loop (one diagonal at a time within each band)."""
    return BDIAMatrix.spmv(matrix, x)


@register_kernel(FormatName.BDIA, strategy_set(Strategy.VECTORIZE))
def bdia_vectorized(matrix: BDIAMatrix, x: np.ndarray) -> np.ndarray:
    """Whole-band slab arithmetic.

    Each band's interior rows touch a single contiguous X window shifted by
    the diagonal position, so the band's diagonals are applied as full-array
    operations with the per-band bounds computed once — the amortisation
    that distinguishes BDIA from plain DIA.
    """
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    for start, band in zip(matrix.offsets, matrix.bands):
        base = int(start)
        for j in range(band.shape[0]):
            k = base + j
            i_start = max(0, -k)
            j_start = max(0, k)
            n = min(matrix.n_rows - i_start, matrix.n_cols - j_start)
            if n <= 0:
                continue
            y[i_start : i_start + n] += (
                band[j, i_start : i_start + n] * x[j_start : j_start + n]
            )
    return y
