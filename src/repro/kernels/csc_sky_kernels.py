"""CSC and SKY SpMV kernels (the remaining Figure 5 formats)."""

from __future__ import annotations

import numpy as np

from repro.formats.csc import CSCMatrix
from repro.formats.sky import SKYMatrix
from repro.kernels.base import register_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.types import FormatName


@register_kernel(FormatName.CSC, strategy_set())
def csc_basic(matrix: CSCMatrix, x: np.ndarray) -> np.ndarray:
    """Reference column-loop AXPY scatter."""
    return CSCMatrix.spmv(matrix, x)


@register_kernel(FormatName.CSC, strategy_set(Strategy.VECTORIZE))
def csc_vectorized(matrix: CSCMatrix, x: np.ndarray) -> np.ndarray:
    """One bulk multiply then an unordered scatter-add over row indices.

    The scatter is the fundamental CSC handicap for SpMV — every element
    is a read-modify-write on Y — mirrored by the format's low regularity
    in the cost model.
    """
    x = matrix.check_operand(x)
    y = np.zeros(matrix.n_rows, dtype=matrix.dtype)
    if matrix.nnz:
        cols = np.repeat(
            np.arange(matrix.n_cols, dtype=np.int64),
            matrix.column_degrees(),
        )
        np.add.at(y, matrix.indices, matrix.data * x[cols])
    return y


@register_kernel(FormatName.SKY, strategy_set())
def sky_basic(matrix: SKYMatrix, x: np.ndarray) -> np.ndarray:
    """Reference profile-row loop."""
    return SKYMatrix.spmv(matrix, x)


@register_kernel(FormatName.SKY, strategy_set(Strategy.VECTORIZE))
def sky_vectorized(matrix: SKYMatrix, x: np.ndarray) -> np.ndarray:
    """Segment-reduced profile sweep: gather each row's dense x window.

    The profile's x accesses are contiguous (like DIA), so the whole lower
    part reduces with one cumulative sum over ``profile * x[window]``.
    """
    x = matrix.check_operand(x)
    n = matrix.n_rows
    if matrix.profile_size == 0:
        y = np.zeros(n, dtype=matrix.dtype)
    else:
        first = matrix.first_columns()
        widths = np.diff(matrix.pointers)
        # Column index of every profile slot.
        offsets = np.arange(matrix.profile_size, dtype=np.int64) - np.repeat(
            matrix.pointers[:-1], widths
        )
        cols = np.repeat(first, widths) + offsets
        products = matrix.profile * x[cols]
        csum = np.concatenate(
            [np.zeros(1, dtype=products.dtype), np.cumsum(products)]
        )
        y = (csum[matrix.pointers[1:]] - csum[matrix.pointers[:-1]]).astype(
            matrix.dtype, copy=False
        )
    if matrix.upper is not None:
        from repro.kernels.base import find_kernel

        upper_kernel = find_kernel(
            FormatName.CSR, strategy_set(Strategy.VECTORIZE)
        )
        y = y + upper_kernel(matrix.upper, x)
    return y
