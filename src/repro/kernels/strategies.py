"""Kernel optimization strategies (Section 5.2).

The paper's kernel library arranges "up to 24" implementations, each indexed
by the set of optimization strategies it uses (SIMDization, blocking,
prefetch, threading, ...).  The scoreboard algorithm then scores individual
strategies by comparing implementations that differ in exactly one of them.

In this Python reproduction the strategies map onto real implementation
techniques available to NumPy code:

* ``VECTORIZE`` — bulk array operations instead of Python-level loops
  (the stand-in for SIMDization; by far the largest effect, as in the paper).
* ``ROW_BLOCK`` — process the matrix in row blocks sized to the last-level
  cache (cache blocking).
* ``UNROLL`` — manual unrolling of the short inner dimension (diagonals /
  packed columns), trading loop overhead for code size.
* ``PARALLEL`` — split rows across worker chunks (threading policy); the
  chunks execute sequentially in CPython and the simulated machine model
  applies the thread-scaling factor.
* ``THREAD`` — actually run the row chunks concurrently on a shared
  ``ThreadPoolExecutor`` (see :mod:`repro.kernels.parallel`); NumPy's ufunc
  inner loops release the GIL, so large matrices genuinely overlap.
* ``PREFETCH`` — software prefetch; a no-op in Python, included so the
  scoreboard demonstrably *discards* a strategy that shows no effect
  (the paper's "performance gap < 0.01 => neglect it" rule).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable


class Strategy(enum.Enum):
    """One kernel optimization technique."""

    VECTORIZE = "vectorize"
    ROW_BLOCK = "row_block"
    UNROLL = "unroll"
    PARALLEL = "parallel"
    THREAD = "thread"
    PREFETCH = "prefetch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


StrategySet = FrozenSet[Strategy]

#: The empty strategy set: the basic reference implementation.
BASELINE: StrategySet = frozenset()


def strategy_set(*strategies: Strategy) -> StrategySet:
    """Convenience constructor for a strategy set."""
    return frozenset(strategies)


def describe(strategies: Iterable[Strategy]) -> str:
    """Stable human-readable name for a strategy set, e.g. ``basic`` or
    ``parallel+vectorize``."""
    names = sorted(s.value for s in strategies)
    return "+".join(names) if names else "basic"


def span_attrs(format_name, strategies: Iterable[Strategy]) -> dict:
    """Span attributes identifying one kernel dispatch.

    Keeps the tracing vocabulary for kernels in one place: every
    ``kernel.execute`` span carries the format and the exact strategy
    set, so per-strategy latency can be sliced out of a trace the same
    way the scoreboard slices the offline performance table.
    """
    return {
        "format": format_name.value,
        "strategies": describe(strategies),
    }
