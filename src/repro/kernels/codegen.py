"""The ``codegen`` kernel backend: per-matrix specialized SpMV kernels.

:mod:`repro.kernels.templates` emits the source of one kernel function per
plan with the matrix's structural constants folded in; this module owns
everything after the emit:

* **Compile cache.**  Sources are keyed by their SHA-256 digest; two
  structurally identical matrices emit byte-identical source and share
  one compiled code object (the per-matrix ``aux`` arrays are bound into
  each kernel's closure instead).  The cache is lock-guarded — concurrent
  cold builds of the same structure compile exactly once — and metered
  (:func:`codegen_stats`) so tests can prove a hit skipped recompilation.
* **Synthetic filenames.**  Compiled code objects carry
  ``<repro-codegen:HASH>`` filenames, registered with :mod:`linecache`
  so tracebacks show the generated lines.  ``scripts/measure_coverage.py``
  recognizes the prefix and reports exec-compiled frames explicitly
  instead of silently dropping them.
* **Beat-or-keep-generic policy.**  :meth:`CodegenBackend.specialize`
  audits the generated kernel against the tuner's generic choice on the
  actual matrix (``np.allclose``) and times both; the generated kernel is
  returned only when it agrees *and* wins.  Every other outcome — no
  template, unroll ceiling exceeded, audit mismatch, slower — silently
  keeps the generic kernel.  There is no regression path.

When :mod:`numba` is importable the compiled function is additionally
offered to ``numba.njit``; the jitted variant is probed once and kept only
if it actually executes (the object-mode ``matrix`` argument makes most
templates fall back to the plain compiled function).
"""

from __future__ import annotations

import hashlib
import linecache
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import CodegenError
from repro.formats.base import SparseMatrix
from repro.kernels import templates
from repro.kernels.backends import KernelBackend, register_backend
from repro.kernels.base import Kernel
from repro.kernels.strategies import Strategy

try:  # pragma: no cover - numba is optional and absent in CI
    import numba  # type: ignore
except Exception:  # pragma: no cover
    numba = None

#: Filename prefix of every exec-compiled kernel (coverage attribution key).
GENERATED_FILE_PREFIX = "<repro-codegen:"

#: Timed probe repetitions per kernel in the beat-or-keep audit.
PROBE_REPEATS = 2


def overhead_units() -> float:
    """Projected beat-or-keep specialization cost in CSR-SpMV units.

    Delegates to :func:`repro.machine.costmodel.codegen_overhead_units`
    so the budgeted cascade charges specialization with the same unit
    model it uses for conversions and measurements.
    """
    from repro.machine.costmodel import codegen_overhead_units

    return codegen_overhead_units(PROBE_REPEATS)


@dataclass
class _Compiled:
    """One cached compile: the shared code object's ``spmv`` function."""

    source: str
    fn: Callable[..., np.ndarray]
    jitted: Optional[Callable[..., np.ndarray]] = None
    #: None = never probed, True/False = probe outcome (sticky).
    jit_ok: Optional[bool] = None


_CACHE: Dict[str, _Compiled] = {}
_LOCK = threading.Lock()
_STATS = {"compiles": 0, "cache_hits": 0}


def codegen_stats() -> Dict[str, int]:
    """Compile-cache meters (``compiles``, ``cache_hits``, sources held)."""
    with _LOCK:
        stats = dict(_STATS)
        stats["cached_sources"] = len(_CACHE)
    return stats


def reset_codegen_stats(clear_cache: bool = False) -> None:
    """Zero the meters (tests); optionally drop the compiled sources too."""
    with _LOCK:
        _STATS["compiles"] = 0
        _STATS["cache_hits"] = 0
        if clear_cache:
            _CACHE.clear()


def _compile(source: str) -> tuple:
    """Compile ``source`` once per digest; returns ``(digest, entry)``."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    with _LOCK:
        entry = _CACHE.get(digest)
        if entry is not None:
            _STATS["cache_hits"] += 1
            return digest, entry
        filename = f"{GENERATED_FILE_PREFIX}{digest[:12]}>"
        try:
            code = compile(source, filename, "exec")
        except SyntaxError as exc:  # defensive: emitters own the source
            raise CodegenError(
                f"generated source failed to compile: {exc}\n{source}"
            ) from exc
        namespace: Dict[str, object] = {"np": np}
        exec(code, namespace)
        fn = namespace["spmv"]
        jitted = None
        if numba is not None:  # pragma: no cover - optional dependency
            try:
                jitted = numba.njit(cache=False)(fn)
            except Exception:
                jitted = None
        linecache.cache[filename] = (
            len(source),
            None,
            source.splitlines(True),
            filename,
        )
        entry = _Compiled(source=source, fn=fn, jitted=jitted)
        _CACHE[digest] = entry
        _STATS["compiles"] += 1
        return digest, entry


@dataclass(frozen=True)
class GeneratedKernel(Kernel):
    """A compiled per-matrix kernel; carries its source for diagnostics."""

    source: str = field(default="", compare=False, repr=False)
    source_hash: str = ""

    @property
    def name(self) -> str:
        return f"{self.format_name.value}/codegen[{self.source_hash[:8]}]"


#: Strategy fingerprint of generated kernels: they vectorize across the
#: structure and unroll the per-structure loops into the source.
GENERATED_STRATEGIES = frozenset({Strategy.VECTORIZE, Strategy.UNROLL})


def _resolve_callable(
    entry: _Compiled, matrix: SparseMatrix, aux: templates.Aux
) -> Callable[..., np.ndarray]:
    """Pick the jitted variant if it demonstrably runs, else the plain fn."""
    if entry.jitted is None or entry.jit_ok is False:
        return entry.fn
    if entry.jit_ok is None:  # pragma: no cover - optional dependency
        probe = np.zeros(matrix.n_cols, dtype=matrix.dtype)
        try:
            entry.jitted(matrix, probe, aux)
            entry.jit_ok = True
        except Exception:
            entry.jit_ok = False
            return entry.fn
    return entry.jitted  # pragma: no cover - optional dependency


def generate_kernel(matrix: SparseMatrix) -> GeneratedKernel:
    """Emit, compile, and bind a specialized kernel for ``matrix``.

    This is the raw generation API — no correctness audit, no timing
    policy.  The differential test sweep calls it directly so that every
    template is gated bitwise before the serving policy ever sees it.
    Raises :class:`CodegenError` when no template covers the matrix.
    """
    generated = templates.emit(matrix)
    digest, entry = _compile(generated.source)
    fn = _resolve_callable(entry, matrix, generated.aux)
    aux = generated.aux

    def bound(m: SparseMatrix, x: np.ndarray) -> np.ndarray:
        return fn(m, x, aux)

    return GeneratedKernel(
        format_name=matrix.format_name,
        strategies=GENERATED_STRATEGIES,
        fn=bound,
        source=generated.source,
        source_hash=digest,
    )


def _probe_operand(matrix: SparseMatrix) -> np.ndarray:
    """Deterministic dyadic ramp — exact under reordering, no RNG state."""
    ramp = (np.arange(matrix.n_cols, dtype=np.int64) % 13) - 6
    return (ramp / 8.0).astype(matrix.dtype)


def _best_time(kernel: Kernel, matrix: SparseMatrix, x: np.ndarray) -> float:
    best = float("inf")
    for _ in range(PROBE_REPEATS):
        start = time.perf_counter()
        kernel(matrix, x)
        best = min(best, time.perf_counter() - start)
    return best


class CodegenBackend(KernelBackend):
    """Beat-or-keep-generic wrapper around :func:`generate_kernel`."""

    name = "codegen"

    def specialize(self, matrix: SparseMatrix, base: Kernel) -> Kernel:
        try:
            generated = generate_kernel(matrix)
        except CodegenError:
            return base
        x = _probe_operand(matrix)
        try:
            y_generated = generated(matrix, x)
            y_base = base(matrix, x)
        except Exception:
            return base
        if y_generated.shape != y_base.shape or not np.allclose(
            y_generated, y_base, rtol=1e-9, atol=1e-12
        ):
            # Templates are differentially gated, so a mismatch here means
            # an assumption broke in the field: keep the audited kernel.
            return base
        if _best_time(generated, matrix, x) < _best_time(base, matrix, x):
            return generated
        return base

    def overhead_units(self, matrix: SparseMatrix) -> float:
        return overhead_units()


register_backend(CodegenBackend())
