"""Multi-RHS SpMM kernels: ``Y = A @ X`` for a dense RHS block.

At high fan-in many queued requests share one operand matrix; executing
them as k sequential SpMVs re-streams the sparse operand through memory
k times.  These kernels make **one** pass: the RHS vectors are stacked
column-wise into a dense ``(n_cols, k)`` block and every gathered operand
element multiplies a k-wide row of X.

The kernels are *blocked* where it matters: a naive CSR SpMM would
materialise an ``(nnz, k)`` product buffer — DRAM-bound for exactly the
matrices worth batching.  The CSR kernel instead groups rows by exact
degree (a jagged-diagonal-style reordering computed per call, no format
conversion) and reduces each group with one ``einsum`` over a
``(rows, d, k)`` gather, blocked to stay cache resident; rows heavier
than :data:`HEAVY_ROW_DEGREE` take a segment-sum path so skewed
matrices never degrade the grouped loop.

Registration is a plain per-format table, separate from the SpMV strategy
scoreboard: SpMM is a serving-layer fast path keyed only on format, not a
tuner search dimension.  Formats without a native kernel degrade
transparently through :func:`spmm_fallback` (column-by-column SpMV).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.kernels.dia_kernels import _diag_bounds
from repro.types import FormatName

#: Target element count for one row block's gathered product buffer
#: (``block_nnz * k`` values).  512k float64 elements is ~4 MiB — small
#: enough to stay cache resident, large enough to amortise the per-block
#: Python overhead.
BLOCK_ELEMS = 512_000

#: Rows with more stored elements than this skip the degree-grouped
#: einsum (which would spend one group per distinct degree) and reduce
#: through the blocked segment-sum path instead.  Also bounds the group
#: loop at 64 iterations regardless of the degree distribution.
HEAVY_ROW_DEGREE = 64

SpmmKernel = Callable[[SparseMatrix, np.ndarray], np.ndarray]

_SPMM_REGISTRY: Dict[FormatName, SpmmKernel] = {}


def register_spmm(name: FormatName):
    """Decorator registering ``fn`` as the native SpMM kernel for ``name``."""

    def wrap(fn: SpmmKernel) -> SpmmKernel:
        _SPMM_REGISTRY[name] = fn
        return fn

    return wrap


def spmm_kernel_for(name: FormatName) -> Optional[SpmmKernel]:
    """The native SpMM kernel registered for ``name``, or ``None``."""
    return _SPMM_REGISTRY.get(name)


def supports_spmm(name: FormatName) -> bool:
    """True when ``name`` has a native multi-RHS kernel."""
    return name in _SPMM_REGISTRY


def spmm_formats() -> tuple:
    """Formats with a native SpMM kernel (registration order)."""
    return tuple(_SPMM_REGISTRY)


def spmm_fallback(
    matrix: SparseMatrix,
    X: np.ndarray,
    spmv: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Column-by-column SpMM through an SpMV callable.

    The transparent degradation path for formats without a native kernel
    (HYB/BCSR/...): correctness is unconditional, the memory-traffic
    amortisation simply doesn't apply.  ``spmv`` defaults to the matrix's
    reference kernel; plans pass their tuned kernel instead.
    """
    X = matrix.check_operand_block(X)
    run = spmv if spmv is not None else matrix.spmv
    Y = np.empty((matrix.n_rows, X.shape[1]), dtype=matrix.dtype)
    for j in range(X.shape[1]):
        Y[:, j] = run(X[:, j])
    return Y


def _segment_sums_2d(products: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    """Row-block sums of an ``(nnz_slice, k)`` product buffer.

    The 2-D analogue of ``csr_kernels._segment_sums``: one cumulative sum
    down the nnz axis, then segment differences at the row pointer.  Each
    column accumulates in the same element order as the 1-D kernel, so
    under exact (dyadic) arithmetic the result is bitwise identical to k
    sequential SpMVs.
    """
    csum = np.concatenate(
        [
            np.zeros((1, products.shape[1]), dtype=products.dtype),
            np.cumsum(products, axis=0),
        ]
    )
    return csum[ptr[1:]] - csum[ptr[:-1]]


def _csr_spmm_rows(
    matrix: CSRMatrix,
    X: np.ndarray,
    Y: np.ndarray,
    row_lo: int,
    row_hi: int,
) -> None:
    """Degree-grouped CSR SpMM over rows ``[row_lo, row_hi)`` into ``Y``.

    Rows are bucketed by exact degree; each bucket is a rectangular
    ``(rows, d)`` slab reduced with one ``einsum("rd,rdk->rk")`` — the
    ELL kernel's shape without paying for an ELL conversion or any fill.
    No ``(nnz, k)`` product buffer ever exists: the reduction happens
    inside the einsum, and row blocks cap the gathered X slab at
    ~``BLOCK_ELEMS`` values.  Rows heavier than ``HEAVY_ROW_DEGREE``
    fall through to a blocked segment-sum sweep so one hub row cannot
    force thousands of single-degree groups.
    """
    ptr, indices, data = matrix.ptr, matrix.indices, matrix.data
    deg = np.diff(ptr[row_lo : row_hi + 1])
    k = X.shape[1]
    if deg.size == 0:
        return
    Y[row_lo:row_hi] = 0.0
    order = np.argsort(deg, kind="stable")
    deg_sorted = deg[order]
    heavy_start = int(
        np.searchsorted(deg_sorted, HEAVY_ROW_DEGREE + 1, side="left")
    )
    a = int(np.searchsorted(deg_sorted, 1, side="left"))
    while a < heavy_start:
        d = int(deg_sorted[a])
        b = int(np.searchsorted(deg_sorted, d + 1, side="left"))
        rows = order[a:b]
        starts = ptr[row_lo + rows]
        block = max(1, BLOCK_ELEMS // (d * k))
        for blk_lo in range(0, rows.size, block):
            blk_hi = min(rows.size, blk_lo + block)
            idx = starts[blk_lo:blk_hi, None] + np.arange(d)
            Y[row_lo + rows[blk_lo:blk_hi]] = np.einsum(
                "rd,rdk->rk", data[idx], X[indices[idx], :]
            )
        a = b
    if heavy_start < deg.size:
        heavy = order[heavy_start:]
        h_deg = deg[heavy]
        h_ptr = np.concatenate([[0], np.cumsum(h_deg)])
        total = int(h_ptr[-1])
        # Ragged arange: position p of heavy row r maps to nnz slot
        # ptr[row] + p, flattened across all heavy rows at once.
        flat = (
            np.repeat(ptr[row_lo + heavy], h_deg)
            + np.arange(total)
            - np.repeat(h_ptr[:-1], h_deg)
        )
        n_blocks = max(1, -(-(total * k) // BLOCK_ELEMS))
        bounds = np.searchsorted(
            h_ptr, np.linspace(0, total, n_blocks + 1)
        )
        bounds[0], bounds[-1] = 0, heavy.size
        for bi in range(len(bounds) - 1):
            ra, rb = int(bounds[bi]), int(bounds[bi + 1])
            if ra >= rb:
                continue
            sel = flat[int(h_ptr[ra]) : int(h_ptr[rb])]
            products = data[sel][:, None] * X[indices[sel], :]
            Y[row_lo + heavy[ra:rb]] = _segment_sums_2d(
                products, h_ptr[ra : rb + 1] - h_ptr[ra]
            )


@register_spmm(FormatName.CSR)
def csr_spmm(matrix: CSRMatrix, X: np.ndarray) -> np.ndarray:
    """Degree-grouped gather + einsum reduction (see ``_csr_spmm_rows``).

    One pass over ``data``/``indices`` serves all k columns; the gathered
    X rows are k-wide, so the operand-traffic amortisation is exactly the
    batch width.
    """
    X = matrix.check_operand_block(X)
    if matrix.nnz == 0:
        return np.zeros((matrix.n_rows, X.shape[1]), dtype=matrix.dtype)
    Y = np.empty((matrix.n_rows, X.shape[1]), dtype=matrix.dtype)
    _csr_spmm_rows(matrix, X, Y, 0, matrix.n_rows)
    return Y


@register_spmm(FormatName.ELL)
def ell_spmm(matrix: ELLMatrix, X: np.ndarray) -> np.ndarray:
    """Column-blocked packed-slot reduction.

    The SpMV kernel's ``einsum("si,si->i")`` grows a k axis; row blocks
    are sized so the gathered ``(slots, block, k)`` X slice stays cache
    resident.
    """
    X = matrix.check_operand_block(X)
    k = X.shape[1]
    Y = np.zeros((matrix.n_rows, k), dtype=matrix.dtype)
    if matrix.max_row_degree == 0:
        return Y
    block = max(1, BLOCK_ELEMS // (matrix.max_row_degree * k))
    for block_start in range(0, matrix.n_rows, block):
        block_end = min(block_start + block, matrix.n_rows)
        data = matrix.data[:, block_start:block_end]
        idx = matrix.indices[:, block_start:block_end]
        Y[block_start:block_end] = np.einsum("si,sik->ik", data, X[idx])
    return Y


@register_spmm(FormatName.DIA)
def dia_spmm(matrix: DIAMatrix, X: np.ndarray) -> np.ndarray:
    """Row-blocked per-diagonal sweep with a broadcast k axis.

    Pure strided slices — no gathers at all; every diagonal element
    multiplies a k-wide X row slice, and Y is written once per row block.
    """
    X = matrix.check_operand_block(X)
    k = X.shape[1]
    Y = np.zeros((matrix.n_rows, k), dtype=matrix.dtype)
    if matrix.num_diags == 0 or matrix.n_rows == 0:
        return Y
    block = max(1, BLOCK_ELEMS // k)
    for block_start in range(0, matrix.n_rows, block):
        block_end = min(block_start + block, matrix.n_rows)
        for i in range(matrix.num_diags):
            off = int(matrix.offsets[i])
            i_start, j_start, n = _diag_bounds(matrix, off)
            lo = max(i_start, block_start)
            hi = min(i_start + n, block_end)
            if hi <= lo:
                continue
            shift = j_start - i_start
            Y[lo:hi] += (
                matrix.data[i, lo:hi][:, None]
                * X[lo + shift : hi + shift, :]
            )
    return Y
